"""Exactly-one encodings: semantics checked by exhaustive model search."""

import itertools

import pytest

from repro.sat import (
    CdclSolver,
    CnfFormula,
    ExactlyOneEncoding,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_one,
    implies_exactly_one,
)


def all_models(formula, over_vars):
    """Every assignment to ``over_vars`` extendable to a model."""
    models = []
    for bits in itertools.product([False, True], repeat=len(over_vars)):
        assumptions = [
            v if bit else -v for v, bit in zip(over_vars, bits)
        ]
        solver = CdclSolver(formula.copy())
        if solver.solve(assumptions):
            models.append(bits)
    return models


@pytest.mark.parametrize(
    "encoding", [ExactlyOneEncoding.PAIRWISE, ExactlyOneEncoding.SEQUENTIAL]
)
@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
def test_exactly_one_semantics(encoding, n):
    f = CnfFormula()
    xs = [f.new_var() for _ in range(n)]
    exactly_one(f, xs, encoding)
    models = all_models(f, xs)
    assert sorted(models) == sorted(
        tuple(i == j for j in range(n)) for i in range(n)
    )


@pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
def test_at_most_one_variants_agree(n):
    f1 = CnfFormula()
    xs1 = [f1.new_var() for _ in range(n)]
    at_most_one_pairwise(f1, xs1)

    f2 = CnfFormula()
    xs2 = [f2.new_var() for _ in range(n)]
    at_most_one_sequential(f2, xs2)

    assert sorted(all_models(f1, xs1)) == sorted(all_models(f2, xs2))


@pytest.mark.parametrize(
    "encoding", [ExactlyOneEncoding.PAIRWISE, ExactlyOneEncoding.SEQUENTIAL]
)
@pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
def test_implies_exactly_one_guarded(encoding, n):
    """Under the antecedent, exactly one target; without it, anything."""
    f = CnfFormula()
    guard = f.new_var()
    xs = [f.new_var() for _ in range(n)]
    implies_exactly_one(f, guard, xs, encoding)

    # guard true -> exactly-one models only.
    true_models = [
        bits
        for bits in all_models_with_guard(f, guard, xs, guard_value=True)
    ]
    assert sorted(true_models) == sorted(
        tuple(i == j for j in range(n)) for i in range(n)
    )

    # guard false -> all 2^n combinations allowed.
    false_models = all_models_with_guard(f, guard, xs, guard_value=False)
    assert len(false_models) == 2 ** n


def all_models_with_guard(formula, guard, xs, guard_value):
    models = []
    for bits in itertools.product([False, True], repeat=len(xs)):
        assumptions = [guard if guard_value else -guard]
        assumptions += [v if bit else -v for v, bit in zip(xs, bits)]
        solver = CdclSolver(formula.copy())
        if solver.solve(assumptions):
            models.append(bits)
    return models


def test_sequential_uses_fewer_clauses_at_scale():
    n = 40
    f1 = CnfFormula()
    xs1 = [f1.new_var() for _ in range(n)]
    exactly_one(f1, xs1, ExactlyOneEncoding.PAIRWISE)

    f2 = CnfFormula()
    xs2 = [f2.new_var() for _ in range(n)]
    exactly_one(f2, xs2, ExactlyOneEncoding.SEQUENTIAL)

    assert f1.num_clauses > f2.num_clauses
    assert f2.num_vars > n  # auxiliary register variables


def test_singleton_exactly_one_is_a_fact():
    f = CnfFormula()
    x = f.new_var()
    exactly_one(f, [x])
    solver = CdclSolver(f)
    assert solver.solve()
    assert solver.model()[x] is True
