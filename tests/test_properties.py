"""Property-based tests over the core invariants (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    InstallSpec,
    PartialInstallSpec,
    PartialInstance,
    ResourceTypeRegistry,
    STRING,
    as_key,
    check_registry,
    define,
)
from repro.config import (
    ConfigurationEngine,
    generate_constraints,
    generate_graph,
    selected_nodes,
)
from repro.sat import CdclSolver


# ---------------------------------------------------------------------------
# Random layered resource libraries.
#
# A library is a machine type plus N layered service types; each service
# may depend (env or peer) on services in strictly lower layers, which
# guarantees well-formedness condition 4 by construction.  Dependencies
# are single-target: the paper's exactly-one semantics makes arbitrary
# *disjunctions* legitimately unsatisfiable when a disjunct is both
# forced elsewhere and transitively requires its sibling -- disjunction
# behaviour is covered separately by the frontier property below.
# ---------------------------------------------------------------------------

layer_specs = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["env", "peer"]),
            st.integers(min_value=0, max_value=20),
        ),
        max_size=3,
    ),
    min_size=1,
    max_size=12,
)


def build_library(spec):
    """Build (registry, service names) from a random layer spec."""
    registry = ResourceTypeRegistry()
    registry.register(define("M", "1", driver="machine").build())
    names: list[str] = []
    for index, deps in enumerate(spec):
        builder = define(f"S{index}", "1").inside("M 1")
        seen_targets: set[str] = set()
        for kind, candidate in deps:
            if index == 0:
                continue  # no lower layer to depend on
            target = f"S{candidate % index} 1"
            if target in seen_targets:
                continue
            seen_targets.add(target)
            if kind == "env":
                builder.env(target)
            else:
                builder.peer(target)
        registry.register(builder.build())
        names.append(f"S{index}")
    return registry, names


@settings(max_examples=50, deadline=None)
@given(layer_specs)
def test_random_layered_library_configures(spec):
    """Any layered library is well-formed, and configuring its top
    service always succeeds and yields a typed, acyclic full spec."""
    registry, names = build_library(spec)
    assert check_registry(registry) == []
    partial = PartialInstallSpec(
        [
            PartialInstance("m", as_key("M 1"), config={}),
            PartialInstance("top", as_key(f"{names[-1]} 1"), inside_id="m"),
        ]
    )
    engine = ConfigurationEngine(registry, verify_registry=False)
    result = engine.configure(partial)
    order = result.spec.topological_order()
    assert order[0].id == "m"
    assert "top" in result.spec


@settings(max_examples=50, deadline=None)
@given(layer_specs)
def test_model_satisfies_exactly_one_per_edge(spec):
    """For every deployed node and hyperedge, exactly one target is
    deployed -- the Theorem 1 invariant, checked on the decoded model."""
    registry, names = build_library(spec)
    partial = PartialInstallSpec(
        [
            PartialInstance("m", as_key("M 1")),
            PartialInstance("top", as_key(f"{names[-1]} 1"), inside_id="m"),
        ]
    )
    graph = generate_graph(registry, partial)
    formula, _ = generate_constraints(graph)
    solver = CdclSolver(formula)
    assert solver.solve()
    model = {
        str(name): value
        for name, value in formula.decode_model(solver.model()).items()
    }
    deployed, choices = selected_nodes(graph, model)
    for node_id in deployed:
        for index, edge in enumerate(graph.edges_from(node_id)):
            chosen = choices[(node_id, index)]
            assert chosen in edge.targets
            assert chosen in deployed


@settings(max_examples=30, deadline=None)
@given(layer_specs, st.integers(min_value=0, max_value=11))
def test_partial_instances_always_deployed(spec, pick):
    """Lemma 1 / Theorem 1 corollary: every instance the user named ends
    up in the full installation specification."""
    registry, names = build_library(spec)
    picked = names[pick % len(names)]
    partial = PartialInstallSpec(
        [
            PartialInstance("m", as_key("M 1")),
            PartialInstance("a", as_key(f"{picked} 1"), inside_id="m"),
            PartialInstance("b", as_key(f"{names[-1]} 1"), inside_id="m"),
        ]
    )
    engine = ConfigurationEngine(registry, verify_registry=False)
    spec_out = engine.configure(partial).spec
    assert "a" in spec_out
    assert "b" in spec_out
    assert "m" in spec_out


@settings(max_examples=40, deadline=None)
@given(layer_specs)
def test_topological_order_respects_links(spec):
    registry, names = build_library(spec)
    partial = PartialInstallSpec(
        [
            PartialInstance("m", as_key("M 1")),
            PartialInstance("top", as_key(f"{names[-1]} 1"), inside_id="m"),
        ]
    )
    engine = ConfigurationEngine(registry, verify_registry=False)
    full = engine.configure(partial).spec
    position = {
        instance.id: index
        for index, instance in enumerate(full.topological_order())
    }
    for instance in full:
        for upstream in instance.upstream_ids():
            assert position[upstream] < position[instance.id]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1,
                                                          max_value=4))
def test_abstract_frontier_disjunction_picks_exactly_one(variants, users):
    """A library with one abstract type and N concrete variants: any
    number of dependents must agree on a single deployed variant (the
    JDK/JRE pattern at arbitrary width)."""
    registry = ResourceTypeRegistry()
    registry.register(define("M", "1", driver="machine").build())
    registry.register(
        define("Variant", abstract=True).inside("M 1").build()
    )
    for index in range(variants):
        registry.register(
            define(f"V{index}", "1", extends="Variant").build()
        )
    for index in range(users):
        registry.register(
            define(f"U{index}", "1").inside("M 1").env("Variant").build()
        )
    partial = PartialInstallSpec(
        [PartialInstance("m", as_key("M 1"))]
        + [
            PartialInstance(f"u{index}", as_key(f"U{index} 1"),
                            inside_id="m")
            for index in range(users)
        ]
    )
    engine = ConfigurationEngine(registry, verify_registry=False)
    full = engine.configure(partial).spec
    deployed_variants = [
        instance for instance in full if instance.key.name.startswith("V")
    ]
    assert len(deployed_variants) == 1


@settings(max_examples=25, deadline=None)
@given(layer_specs)
def test_json_roundtrip_of_generated_specs(spec):
    from repro.dsl import full_from_json, full_to_json

    registry, names = build_library(spec)
    partial = PartialInstallSpec(
        [
            PartialInstance("m", as_key("M 1")),
            PartialInstance("top", as_key(f"{names[-1]} 1"), inside_id="m"),
        ]
    )
    engine = ConfigurationEngine(registry, verify_registry=False)
    full = engine.configure(partial).spec
    again = full_from_json(full_to_json(full))
    assert again.ids() == full.ids()
    for iid in full.ids():
        assert again[iid] == full[iid]
