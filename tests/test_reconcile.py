"""Self-healing reconciliation: drift detection, minimal repair plans,
the autonomic loop, and its determinism under chaos churn."""

from __future__ import annotations

import json

import pytest

from repro.config import ConfigurationEngine, ConfigurationSession
from repro.core.errors import (
    ConfigurationError,
    DeploymentError,
    DriverError,
    RuntimeEngageError,
)
from repro.drivers.library import ServiceDriver
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.library.fleet import FleetTopology, fleet_partial
from repro.runtime import (
    DeploymentEngine,
    DeploymentJournal,
    DriftKind,
    ProcessMonitor,
    ReconcileController,
    RepairOp,
    RetryPolicy,
    detect_drift,
    execute_plan,
    plan_repair,
)
from repro.runtime.journal import JournalEntry
from repro.sim import FaultInjector, FaultKind, FaultPlan, MachineChurn

TOPOLOGY = FleetTopology(replicas=6, machines=3)


def deploy_fleet(topology=TOPOLOGY, *, session=False):
    """A deployed fleet plus everything reconcile needs around it."""
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    partial = fleet_partial(topology)
    if session:
        config = ConfigurationSession(
            registry, partition=True, verify_registry=False
        )
    else:
        config = ConfigurationEngine(
            registry, partition=True, verify_registry=False
        )
    spec = config.configure(partial).spec
    engine = DeploymentEngine(registry, infrastructure, standard_drivers())
    journal = DeploymentJournal(spec)
    system = engine.deploy(spec, journal=journal)
    assert system.is_deployed()
    return engine, system, journal, config, partial


def first_service(system):
    for instance_id in sorted(system.drivers):
        driver = system.drivers[instance_id]
        if isinstance(driver, ServiceDriver) and driver.process is not None:
            return instance_id, driver
    raise AssertionError("no running service in fleet")


class TestDriftDetection:
    def test_healthy_fleet_has_no_drift(self):
        _, system, _, _, _ = deploy_fleet()
        drift = detect_drift(system)
        assert drift.is_converged
        assert drift.items == []
        assert drift.by_kind() == {}

    def test_crashed_service_detected(self):
        _, system, _, _, _ = deploy_fleet()
        instance_id, driver = first_service(system)
        driver.process.fail()
        drift = detect_drift(system)
        assert drift.crashed_services == [instance_id]
        assert drift.by_kind() == {"crashed-service": 1}

    def test_lost_machine_expands_to_its_instances(self):
        _, system, _, _, _ = deploy_fleet()
        FaultInjector(system, seed=1).crash_machines(1)
        drift = detect_drift(system)
        machines = drift.lost_machines
        assert len(machines) == 1
        expected = {
            instance.id
            for instance in system.spec.instances_on_machine(machines[0])
        }
        assert set(drift.lost_instances) == expected
        # The machine instance itself rides along.
        assert machines[0] in drift.lost_instances

    def test_goal_must_be_subset_of_spec(self):
        _, system, _, _, _ = deploy_fleet()
        registry = standard_registry()
        other = (
            ConfigurationEngine(registry, verify_registry=False)
            .configure(fleet_partial(FleetTopology(replicas=8, machines=4)))
            .spec
        )
        with pytest.raises(RuntimeEngageError, match="upgrade"):
            detect_drift(system, goal=other)

    def test_payload_shape(self):
        _, system, _, _, _ = deploy_fleet()
        instance_id, driver = first_service(system)
        driver.process.fail()
        payload = detect_drift(system).to_payload()
        assert payload["converged"] is False
        assert payload["items"][0] == {
            "kind": "crashed-service",
            "instance_id": instance_id,
            "detail": "active",
        }


class TestPlanning:
    def test_no_drift_means_noop_plan(self):
        _, system, _, _, _ = deploy_fleet()
        plan = plan_repair(system, detect_drift(system))
        assert plan.is_noop
        assert len(plan) == 0
        assert plan.by_op() == {}

    def test_crashed_service_plans_one_restart(self):
        _, system, _, _, _ = deploy_fleet()
        instance_id, driver = first_service(system)
        driver.process.fail()
        plan = plan_repair(system, detect_drift(system))
        assert plan.by_op() == {"restart": 1}
        assert plan.instances(RepairOp.RESTART) == [instance_id]

    def test_machine_loss_plan_is_minimal(self):
        _, system, _, _, _ = deploy_fleet()
        FaultInjector(system, seed=1).crash_machines(1)
        drift = detect_drift(system)
        plan = plan_repair(system, drift)
        # One reprovision plus redeploys for exactly the lost subtree --
        # far smaller than the fleet.
        assert plan.by_op()["reprovision"] == 1
        assert set(plan.instances(RepairOp.REDEPLOY)) == set(
            drift.lost_instances
        )
        assert len(plan) < len(system.spec) / 2

    def test_redeploys_follow_dependency_order(self):
        _, system, _, _, _ = deploy_fleet()
        FaultInjector(system, seed=1).crash_machines(1)
        plan = plan_repair(system, detect_drift(system))
        order = {
            instance.id: index
            for index, instance in enumerate(
                system.spec.topological_order()
            )
        }
        positions = [
            order[iid] for iid in plan.instances(RepairOp.REDEPLOY)
        ]
        assert positions == sorted(positions)


class TestRepair:
    def test_restart_repairs_crashed_service(self):
        engine, system, journal, _, _ = deploy_fleet()
        instance_id, driver = first_service(system)
        driver.process.fail()
        plan = plan_repair(system, detect_drift(system))
        execute_plan(engine, system, plan, journal=journal)
        assert driver.process.is_running()
        assert detect_drift(system).is_converged
        # The restart was journalled and the chain stays valid.
        assert journal.entries[-1].action == "restart"
        DeploymentJournal.from_payload(system.spec, journal.to_payload())

    def test_machine_loss_repairs_to_convergence(self):
        engine, system, journal, _, _ = deploy_fleet()
        records = FaultInjector(system, seed=1).crash_machines(1)
        lost_hosts = {record.hostname for record in records}
        untouched_before = {
            iid: system.state_of(iid)
            for iid in system.spec.ids()
            if system.machine_for(iid).hostname not in lost_hosts
        }
        plan = plan_repair(system, detect_drift(system))
        execute_plan(engine, system, plan, journal=journal)
        assert detect_drift(system).is_converged
        assert system.is_deployed()
        # Instances elsewhere were never acted on.
        for iid, state in untouched_before.items():
            assert system.state_of(iid) == state
        DeploymentJournal.from_payload(system.spec, journal.to_payload())

    def test_repaired_machine_matches_fresh_deploy(self):
        """Reconciled world ≡ fresh deploy: states, journal frontier,
        and the replacement machine's process table, bit for bit."""
        engine, system, journal, _, _ = deploy_fleet()
        fresh_engine, fresh_system, fresh_journal, _, _ = deploy_fleet()

        records = FaultInjector(system, seed=2).crash_machines(1)
        hostname = records[0].hostname
        plan = plan_repair(system, detect_drift(system))
        execute_plan(engine, system, plan, journal=journal)

        assert system.states() == fresh_system.states()
        assert journal.states() == fresh_journal.states()
        repaired = system.infrastructure.network.machine(hostname)
        fresh = fresh_system.infrastructure.network.machine(hostname)
        table = lambda machine: sorted(  # noqa: E731
            (p.pid, p.name, tuple(p.listen_ports))
            for p in machine.running_processes()
        )
        assert table(repaired) == table(fresh)

    def test_extras_uninstalled_when_goal_shrinks(self):
        engine, system, journal, _, _ = deploy_fleet()
        # Goal: everything except one whole machine's worth of instances.
        machine_id = system.spec.machines()[-1].id
        dropped = {
            instance.id
            for instance in system.spec.instances_on_machine(machine_id)
        }
        from repro.core.instances import InstallSpec

        goal = InstallSpec(
            instance
            for instance in system.spec.topological_order()
            if instance.id not in dropped
        )
        drift = detect_drift(system, goal=goal)
        assert set(drift.extra_instances) == dropped
        plan = plan_repair(system, drift, goal=goal)
        assert set(plan.instances(RepairOp.UNINSTALL)) == dropped
        execute_plan(engine, system, plan, journal=journal)
        for iid in dropped:
            assert system.state_of(iid) == "uninstalled"
        assert detect_drift(system, goal=goal).is_converged


class TestController:
    def test_noop_round_converges_without_acting(self):
        engine, system, journal, _, _ = deploy_fleet()
        controller = ReconcileController(engine, system)
        round_ = controller.poll()
        assert round_.converged
        assert round_.plan_size == 0
        assert round_.time_to_repair == 0.0
        assert round_.started_at == round_.finished_at

    def test_poll_is_idempotent_across_rounds(self):
        engine, system, journal, _, _ = deploy_fleet()
        FaultInjector(system, seed=3).crash_machines(1)
        first = ReconcileController(engine, system).poll()
        assert first.repaired and first.converged
        second = ReconcileController(engine, system).poll()
        assert second.drift_items == 0
        assert second.plan_size == 0

    def test_monitor_poll_skips_lost_machines(self):
        _, system, _, _, _ = deploy_fleet()
        FaultInjector(system, seed=3).crash_machines(1)
        monitor = ProcessMonitor(system)
        # The dead machine's services are machine-level drift, not
        # restartable processes: the watchdog must not touch them.
        assert monitor.crashed_services() == []
        assert monitor.poll() == []

    def test_goal_revalidation_through_session(self):
        engine, system, journal, session, partial = deploy_fleet(
            session=True
        )
        FaultInjector(system, seed=4).crash_machines(1)
        controller = ReconcileController(
            engine, system, session=session, goal_partial=partial
        )
        round_ = controller.poll()
        assert round_.converged
        assert round_.reconfigured > 0
        # Warm path: the components re-solved on the cached solvers.
        assert session.stats.solver_reuses > 0

    def test_goal_drift_refuses_repair(self):
        engine, system, journal, session, partial = deploy_fleet(
            session=True
        )
        FaultInjector(system, seed=4).crash_machines(1)
        # Corrupt the goal behind the controller's back.
        import dataclasses

        victim = detect_drift(system).lost_instances[0]
        corrupted = dataclasses.replace(
            system.spec[victim],
            config={**system.spec[victim].config, "rogue": True},
        )
        system.spec.replace_instance(corrupted)
        controller = ReconcileController(
            engine, system, session=session, goal_partial=partial
        )
        with pytest.raises(RuntimeEngageError, match="goal drift"):
            controller.poll()

    def test_session_without_partial_rejected(self):
        engine, system, _, session, _ = deploy_fleet(session=True)
        with pytest.raises(RuntimeEngageError, match="revalidation"):
            ReconcileController(engine, system, session=session)

    def test_execution_failure_is_captured_not_raised(self):
        engine, system, journal, _, _ = deploy_fleet()
        FaultInjector(system, seed=5).crash_machines(1)
        # Every repair action fails permanently.
        plan = FaultPlan().on("driver:*", kind=FaultKind.CRASH)
        system.infrastructure.set_fault_plan(plan)
        controller = ReconcileController(engine, system)
        round_ = controller.poll()
        assert round_.error is not None
        assert not round_.converged
        # The loop survives: lifting the faults, the next round heals.
        system.infrastructure.set_fault_plan(None)
        journal.reset_frontier()
        assert controller.poll().converged


class TestChurnSoak:
    @pytest.mark.parametrize("seed,rate", [(7, 0.2), (11, 0.4)])
    def test_converges_every_round_under_churn(self, seed, rate):
        engine, system, journal, _, _ = deploy_fleet()
        controller = ReconcileController(engine, system, interval=30.0)
        churn = MachineChurn(system, seed=seed, rate=rate)
        result = controller.run(rounds=5, churn=churn)
        assert all(r.converged for r in result.rounds)
        assert result.converged
        assert system.is_deployed()
        if result.rounds_with_drift:
            assert result.median_time_to_repair > 0.0

    def test_same_seed_runs_are_bit_identical(self):
        def soak():
            engine, system, journal, _, _ = deploy_fleet()
            controller = ReconcileController(engine, system, interval=30.0)
            churn = MachineChurn(system, seed=9, rate=0.3)
            result = controller.run(rounds=4, churn=churn)
            return (
                json.dumps(result.to_payload(), sort_keys=True),
                tuple(sorted(journal.states().items())),
                tuple(sorted(system.states().items())),
                tuple(
                    (r.hostname, r.kind) for r in churn.records
                ),
            )

        assert soak() == soak()

    def test_plan_sizes_stay_proportional_to_damage(self):
        engine, system, journal, _, _ = deploy_fleet()
        controller = ReconcileController(engine, system, interval=30.0)
        churn = MachineChurn(
            system, seed=13, rate=0.5, max_losses_per_round=1
        )
        result = controller.run(rounds=4, churn=churn)
        per_machine = len(system.spec) / len(system.spec.machines())
        for round_ in result.rounds:
            if round_.drift_items:
                # One lost machine repairs about one machine's slice.
                assert round_.plan_size <= per_machine + 2


class TestCrashFaultKind:
    def test_crash_site_fails_every_attempt(self):
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        spec = (
            ConfigurationEngine(registry, verify_registry=False)
            .configure(fleet_partial(FleetTopology(replicas=2, machines=1)))
            .spec
        )
        service = next(
            iid for iid in spec.ids() if iid.startswith("tomcat")
        )
        plan = FaultPlan().on(
            f"driver:{service}:start", kind=FaultKind.CRASH
        )
        infrastructure.set_fault_plan(plan)
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        policy = RetryPolicy(max_attempts=3, backoff_base=0.1)
        with pytest.raises(DeploymentError):
            engine.deploy(spec, policy=policy)
        # Non-retryable: one attempt only, and the site never exhausts.
        assert len(plan.records) == 1
        assert plan.records[0].kind is FaultKind.CRASH

    def test_crash_machine_is_permanent_and_traced(self):
        _, system, _, _, _ = deploy_fleet()
        injector = FaultInjector(system, seed=1)
        records = injector.crash_machines(1)
        network = system.infrastructure.network
        assert not network.has_machine(records[0].hostname)
        crash_records = [
            r for r in injector.records if r.kind == FaultKind.CRASH.value
        ]
        assert crash_records == records

    def test_churn_is_deterministic_and_respects_protect(self):
        _, system_a, _, _, _ = deploy_fleet()
        _, system_b, _, _, _ = deploy_fleet()
        churn_a = MachineChurn(system_a, seed=21, rate=0.6)
        churn_b = MachineChurn(system_b, seed=21, rate=0.6)
        lost_a = [r.hostname for r in churn_a.round(0)]
        lost_b = [r.hostname for r in churn_b.round(0)]
        assert lost_a == lost_b and lost_a
        _, system_c, _, _, _ = deploy_fleet()
        protected = MachineChurn(
            system_c, seed=21, rate=0.6, protect=lost_a
        )
        survivors = [r.hostname for r in protected.round(0)]
        assert not set(survivors) & set(lost_a)

    def test_churn_rejects_bad_rate(self):
        _, system, _, _, _ = deploy_fleet()
        with pytest.raises(ValueError):
            MachineChurn(system, rate=1.5)


class TestJournalDiffAndValidation:
    def test_diff_of_complete_journal_is_empty(self):
        _, system, journal, _, _ = deploy_fleet()
        diff = journal.diff(system.spec)
        assert diff.empty
        assert diff.to_payload() == {
            "missing": [], "extra": [], "failed": [], "skipped": [],
        }

    def test_diff_reports_missing_in_goal_order(self):
        _, system, journal, _, _ = deploy_fleet()
        order = [i.id for i in system.spec.topological_order()]
        journal.completed.discard(order[0])
        journal.completed.discard(order[3])
        diff = journal.diff(system.spec)
        assert diff.missing == [order[0], order[3]]

    def test_diff_reports_extras_against_smaller_goal(self):
        _, system, journal, _, _ = deploy_fleet()
        from repro.core.instances import InstallSpec

        keep = [i for i in system.spec.topological_order()][:-1]
        goal = InstallSpec(keep)
        dropped = set(system.spec.ids()) - {i.id for i in keep}
        assert set(journal.diff(goal).extra) == dropped

    def test_from_payload_rejects_partition_overlap(self):
        _, system, journal, _, _ = deploy_fleet()
        payload = journal.to_payload()
        payload["failed"] = {payload["completed"][0]: "boom"}
        with pytest.raises(RuntimeEngageError, match="more than one"):
            DeploymentJournal.from_payload(system.spec, payload)

    def test_from_payload_rejects_broken_chain(self):
        _, system, journal, _, _ = deploy_fleet()
        payload = journal.to_payload()
        victim = payload["entries"][0]["instance_id"]
        payload["entries"].append(
            JournalEntry(
                victim, "start", "uninstalled", "active", 999.0
            ).to_payload()
        )
        with pytest.raises(RuntimeEngageError, match="do not chain"):
            DeploymentJournal.from_payload(system.spec, payload)

    def test_mark_lost_keeps_chain_valid(self):
        _, system, journal, _, _ = deploy_fleet()
        instance_id, _ = first_service(system)
        journal.mark_lost(instance_id, "active", 1000.0)
        assert instance_id not in journal.completed
        assert instance_id in journal.remaining()
        restored = DeploymentJournal.from_payload(
            system.spec, journal.to_payload()
        )
        assert restored.states()[instance_id] == "uninstalled"


class TestReconfigureComponents:
    def test_slice_matches_full_spec(self):
        registry = standard_registry()
        session = ConfigurationSession(
            registry, partition=True, verify_registry=False
        )
        partial = fleet_partial(TOPOLOGY)
        full = session.configure(partial).spec
        some = [i.id for i in full][:3]
        slice_spec = session.reconfigure_components(partial, some)
        for instance in slice_spec:
            assert instance == full[instance.id]
        assert set(some) <= set(slice_spec.ids())

    def test_cold_call_configures_first(self):
        registry = standard_registry()
        session = ConfigurationSession(
            registry, partition=True, verify_registry=False
        )
        partial = fleet_partial(TOPOLOGY)
        full = (
            ConfigurationSession(
                registry, partition=True, verify_registry=False
            )
            .configure(partial)
            .spec
        )
        slice_spec = session.reconfigure_components(
            partial, [full.ids()[0]]
        )
        assert all(i == full[i.id] for i in slice_spec)

    def test_unknown_instance_rejected(self):
        registry = standard_registry()
        session = ConfigurationSession(
            registry, partition=True, verify_registry=False
        )
        partial = fleet_partial(TOPOLOGY)
        session.configure(partial)
        with pytest.raises(ConfigurationError, match="not in the"):
            session.reconfigure_components(partial, ["nonexistent"])

    def test_empty_ids_rejected(self):
        registry = standard_registry()
        session = ConfigurationSession(
            registry, partition=True, verify_registry=False
        )
        with pytest.raises(ConfigurationError, match="at least one"):
            session.reconfigure_components(
                fleet_partial(TOPOLOGY), []
            )


class TestCli:
    @pytest.fixture
    def bundle(self, tmp_path):
        from repro.cli import main
        from repro.dsl import partial_to_json

        partial = fleet_partial(FleetTopology(replicas=4, machines=2))
        partial_path = tmp_path / "fleet.json"
        partial_path.write_text(partial_to_json(partial))
        bundle_path = tmp_path / "bundle.json"
        import io

        out = io.StringIO()
        assert main(
            ["deploy", str(partial_path), "--save", str(bundle_path)], out
        ) == 0
        return bundle_path

    def run_cli(self, *argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out)
        return code, out.getvalue()

    def test_status_json_converged(self, bundle):
        code, text = self.run_cli("status", str(bundle), "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["converged"] is True
        assert payload["drift"]["items"] == []
        assert payload["journal"]["diff"] == {
            "missing": [], "extra": [], "failed": [], "skipped": [],
        }
        assert set(payload["instances"].values()) == {"active"}

    def test_status_json_reports_drift(self, bundle):
        instance = next(
            iid
            for iid in json.loads(
                self.run_cli("status", str(bundle), "--json")[1]
            )["instances"]
            if iid.startswith("broker")
        )
        assert self.run_cli("inject-fault", str(bundle), instance)[0] == 0
        code, text = self.run_cli("status", str(bundle), "--json")
        assert code == 1
        payload = json.loads(text)
        assert payload["drift"]["by_kind"] == {"crashed-service": 1}

    def test_reconcile_repairs_and_updates_bundle(self, bundle):
        instance = next(
            iid
            for iid in json.loads(
                self.run_cli("status", str(bundle), "--json")[1]
            )["instances"]
            if iid.startswith("broker")
        )
        self.run_cli("inject-fault", str(bundle), instance)
        code, text = self.run_cli("reconcile", str(bundle), "--json")
        assert code == 0
        assert "converged; bundle updated." in text
        result = json.loads(text[text.index("{"):text.rindex("}") + 1])
        assert result["converged"] is True
        assert result["rounds"][0]["plan_by_op"] == {"restart": 1}
        assert self.run_cli("status", str(bundle), "--json")[0] == 0

    def test_reconcile_churn_soak_round_trips(self, bundle, tmp_path):
        trace = tmp_path / "reconcile.trace.json"
        code, text = self.run_cli(
            "reconcile", str(bundle),
            "--churn-rate", "0.3", "--churn-seed", "5",
            "--max-rounds", "4", "--trace", str(trace),
        )
        assert code == 0
        assert "converged; bundle updated." in text
        assert trace.exists()
        assert self.run_cli(
            "trace", "--validate", str(trace)
        )[0] == 0
        # The healed bundle is fully reloadable and converged.
        assert self.run_cli("status", str(bundle), "--json")[0] == 0
