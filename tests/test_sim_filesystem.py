"""The virtual filesystem."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.sim import VirtualFilesystem


@pytest.fixture
def fs():
    return VirtualFilesystem()


class TestPaths:
    def test_relative_rejected(self, fs):
        with pytest.raises(SimulationError):
            fs.write_file("relative.txt", "x")

    def test_normalisation(self, fs):
        fs.write_file("/a//b/../c.txt", "x")
        assert fs.is_file("/a/c.txt")


class TestDirectories:
    def test_mkdir_parents(self, fs):
        fs.mkdir("/a/b/c")
        assert fs.is_dir("/a")
        assert fs.is_dir("/a/b")
        assert fs.is_dir("/a/b/c")

    def test_mkdir_no_parents(self, fs):
        with pytest.raises(SimulationError):
            fs.mkdir("/a/b", parents=False)

    def test_mkdir_over_file(self, fs):
        fs.write_file("/a", "x")
        with pytest.raises(SimulationError):
            fs.mkdir("/a")

    def test_root_exists(self, fs):
        assert fs.is_dir("/")


class TestFiles:
    def test_write_read(self, fs):
        fs.write_file("/etc/conf", "hello")
        assert fs.read_file("/etc/conf") == "hello"

    def test_write_creates_parents(self, fs):
        fs.write_file("/deep/path/file", "x")
        assert fs.is_dir("/deep/path")

    def test_overwrite(self, fs):
        fs.write_file("/f", "1")
        fs.write_file("/f", "2")
        assert fs.read_file("/f") == "2"

    def test_append(self, fs):
        fs.append_file("/log", "a")
        fs.append_file("/log", "b")
        assert fs.read_file("/log") == "ab"

    def test_read_missing(self, fs):
        with pytest.raises(SimulationError):
            fs.read_file("/ghost")

    def test_write_over_directory(self, fs):
        fs.mkdir("/d")
        with pytest.raises(SimulationError):
            fs.write_file("/d", "x")

    def test_exists(self, fs):
        fs.write_file("/f", "x")
        fs.mkdir("/d")
        assert fs.exists("/f")
        assert fs.exists("/d")
        assert not fs.exists("/ghost")


class TestRemoveAndList:
    def test_remove_file(self, fs):
        fs.write_file("/f", "x")
        fs.remove("/f")
        assert not fs.exists("/f")

    def test_remove_tree(self, fs):
        fs.write_file("/d/sub/file", "x")
        fs.mkdir("/d/empty")
        fs.remove("/d")
        assert not fs.exists("/d")
        assert not fs.exists("/d/sub/file")

    def test_remove_missing(self, fs):
        with pytest.raises(SimulationError):
            fs.remove("/ghost")

    def test_remove_root_refused(self, fs):
        with pytest.raises(SimulationError):
            fs.remove("/")

    def test_remove_does_not_touch_siblings_with_prefix(self, fs):
        fs.write_file("/app/file", "x")
        fs.write_file("/app2/file", "y")
        fs.remove("/app")
        assert fs.read_file("/app2/file") == "y"

    def test_listdir(self, fs):
        fs.write_file("/d/a", "1")
        fs.write_file("/d/b/c", "2")
        fs.mkdir("/d/z")
        assert fs.listdir("/d") == ["a", "b", "z"]

    def test_listdir_root(self, fs):
        fs.write_file("/top", "x")
        assert "top" in fs.listdir("/")

    def test_listdir_missing(self, fs):
        with pytest.raises(SimulationError):
            fs.listdir("/ghost")

    def test_walk_files(self, fs):
        fs.write_file("/a/1", "")
        fs.write_file("/a/b/2", "")
        fs.write_file("/c", "")
        assert list(fs.walk_files("/a")) == ["/a/1", "/a/b/2"]
        assert fs.file_count() == 3


class TestSnapshots:
    def test_restore_reverts_changes(self, fs):
        fs.write_file("/keep", "original")
        snap = fs.snapshot()
        fs.write_file("/keep", "changed")
        fs.write_file("/new", "x")
        fs.remove("/keep")
        fs.restore(snap)
        assert fs.read_file("/keep") == "original"
        assert not fs.exists("/new")

    def test_snapshot_isolated_from_later_writes(self, fs):
        snap = fs.snapshot()
        fs.write_file("/x", "1")
        assert "/x" not in snap["files"]


@given(
    st.lists(
        st.text(alphabet="abc", min_size=1, max_size=3),
        min_size=1,
        max_size=4,
    )
)
def test_write_then_read_roundtrip(segments):
    fs = VirtualFilesystem()
    path = "/" + "/".join(segments)
    fs.write_file(path, "payload")
    assert fs.read_file(path) == "payload"
