"""Chaos equivalence for the bus control plane.

The one theorem this file is about: **a deployment driven over the
message bus ends indistinguishable from an unfaulted one** -- same
world (packages, processes, files), same driver states, same journal
chains -- no matter what the chaos schedule did: network partitions
between master and slaves, a slave crash mid-deploy with later rejoin,
or a master failover that re-adopts the control log.  "Indistinguish-
able" is :func:`repro.runtime.coordinator.deployment_fingerprint`:
bit-identical modulo pids and timestamps.

Tier-1 runs a smoke slice of every scenario; the full seed corpus
(100 failover seeds plus partition/crash sweeps, crossed with ``jobs``)
carries the ``fuzz`` mark and runs in the CI ``bus-chaos`` job.
"""

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.runtime import (
    BusChaos,
    BusCoordinator,
    DeploymentJournal,
    MasterCoordinator,
    deployment_fingerprint,
    provision_partial_spec,
)
from repro.sim.faults import LinkFaultPlan

FAILOVER_SEEDS = range(100)
PARTITION_SEEDS = range(50)
CRASH_SEEDS = range(50)

SMOKE_FAILOVER = range(6)
SMOKE_PARTITION = range(4)
SMOKE_CRASH = range(4)


@pytest.fixture(scope="module")
def chaos_registry():
    return standard_registry()


@pytest.fixture(scope="module")
def two_node(chaos_registry):
    """A two-wave spec (db wave, then app wave), configured once; each
    run deploys it into a fresh infrastructure."""
    infrastructure = standard_infrastructure()
    partial = PartialInstallSpec(
        [
            PartialInstance("appnode", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "app1"}),
            PartialInstance("dbnode", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "db1"}),
            PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                            inside_id="appnode"),
            PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                            inside_id="tomcat"),
            PartialInstance("db", as_key("MySQL 5.1"), inside_id="dbnode"),
        ]
    )
    partial = provision_partial_spec(
        chaos_registry, partial, infrastructure
    )
    return ConfigurationEngine(chaos_registry).configure(partial).spec


def bus_deploy(registry, spec, *, chaos=None, faults=None, jobs=None):
    infrastructure = standard_infrastructure()
    coordinator = BusCoordinator(
        registry, infrastructure, standard_drivers(), link_faults=faults
    )
    deployment = coordinator.deploy(spec, chaos=chaos, jobs=jobs)
    return infrastructure, deployment


@pytest.fixture(scope="module")
def baseline(chaos_registry, two_node):
    """Fingerprint of the unfaulted bus deployment -- what every chaos
    run must converge to."""
    infrastructure, deployment = bus_deploy(chaos_registry, two_node)
    assert deployment.is_deployed()
    return deployment_fingerprint(infrastructure, deployment)


def jobs_for(seed):
    """Cross the corpus with intra-machine parallelism."""
    return None if seed % 2 == 0 else 2


def partition_chaos(seed):
    return BusChaos(
        partition_at=1.0 + (seed % 7) * 9.0,
        partition_for=20.0 + (seed % 5) * 35.0,
        partition_slaves=None if seed % 3 else ["dbnode"],
    )


def crash_chaos(seed):
    return BusChaos(
        crash_machine="dbnode" if seed % 2 == 0 else "appnode",
        crash_after_actions=1 + seed % 5,
        crash_down_for=10.0 + (seed % 4) * 20.0,
    )


def failover_chaos(seed):
    return BusChaos(failover_at=2.0 + (seed % 20) * 12.0)


def link_faults(seed):
    """Every third seed also runs under link chaos, so the scenarios
    compose with drops/duplicates/reorders."""
    if seed % 3 != 0:
        return None
    return LinkFaultPlan(seed, drop=0.1, duplicate=0.1, jitter=1.0)


def assert_converged(registry, spec, baseline_fp, *, chaos, seed):
    infrastructure, deployment = bus_deploy(
        registry, spec, chaos=chaos,
        faults=link_faults(seed), jobs=jobs_for(seed),
    )
    assert deployment.is_deployed(), f"seed {seed}"
    assert (
        deployment_fingerprint(infrastructure, deployment) == baseline_fp
    ), f"seed {seed} diverged from the unfaulted run"
    # The merged journal must survive the strict round-trip validation
    # (chained per-instance entries, disjoint partitions): double
    # applies would break the chains.
    merged = deployment.merged_journal()
    DeploymentJournal.from_payload(deployment.spec, merged.to_payload())
    assert merged.is_complete()
    return deployment


class TestBusMatchesDirect:
    """The bus control plane is a refactor, not a rewrite: its effect
    equals the direct in-process coordinator's."""

    def test_same_fingerprint_as_direct(
        self, chaos_registry, two_node, baseline
    ):
        infrastructure = standard_infrastructure()
        coordinator = MasterCoordinator(
            chaos_registry, infrastructure, standard_drivers()
        )
        deployment = coordinator.deploy(two_node)
        assert deployment.is_deployed()
        assert (
            deployment_fingerprint(infrastructure, deployment) == baseline
        )

    def test_jobs_invariant(self, chaos_registry, two_node, baseline):
        infrastructure, deployment = bus_deploy(
            chaos_registry, two_node, jobs=2
        )
        assert (
            deployment_fingerprint(infrastructure, deployment) == baseline
        )

    def test_exactly_one_execution_per_machine(
        self, chaos_registry, two_node
    ):
        _, deployment = bus_deploy(chaos_registry, two_node)
        report = deployment.report
        assert report.work_executions == len(deployment.slaves)
        assert report.work_resumes == 0
        assert report.retransmits == 0
        assert report.masters == ["master"]


class TestPartitionSmoke:
    @pytest.mark.parametrize("seed", SMOKE_PARTITION)
    def test_partition_converges(
        self, chaos_registry, two_node, baseline, seed
    ):
        deployment = assert_converged(
            chaos_registry, two_node, baseline,
            chaos=partition_chaos(seed), seed=seed,
        )
        assert deployment.report.partition is not None

    def test_partition_stalls_then_resumes_without_double_apply(
        self, chaos_registry, two_node, baseline
    ):
        """A long full partition: work for the second wave cannot cross
        until heal, the master retransmits into the void, and on heal
        the dedup keys make every late duplicate a cache hit."""
        chaos = BusChaos(partition_at=1.0, partition_for=300.0)
        infrastructure, deployment = bus_deploy(
            chaos_registry, two_node, chaos=chaos
        )
        report = deployment.report
        assert report.bus_stats["partition_losses"] > 0
        assert report.retransmits > 0
        # Exactly-once effect: each machine's deploy ran once, no matter
        # how many work copies eventually arrived.
        assert report.work_executions == len(deployment.slaves)
        assert report.work_resumes == 0
        assert (
            deployment_fingerprint(infrastructure, deployment) == baseline
        )
        # Recovery costs wall-clock: the makespan covers the partition.
        assert report.parallel_makespan_seconds >= 300.0

    def test_partitioned_slave_suspected(self, chaos_registry, two_node):
        chaos = BusChaos(partition_at=1.0, partition_for=120.0)
        _, deployment = bus_deploy(chaos_registry, two_node, chaos=chaos)
        suspected = {s["machine"] for s in deployment.report.suspects}
        assert "dbnode" in suspected


class TestSlaveCrashSmoke:
    @pytest.mark.parametrize("seed", SMOKE_CRASH)
    def test_crash_rejoin_converges(
        self, chaos_registry, two_node, baseline, seed
    ):
        deployment = assert_converged(
            chaos_registry, two_node, baseline,
            chaos=crash_chaos(seed), seed=seed,
        )
        report = deployment.report
        assert report.crashes == 1
        assert report.work_resumes >= 1
        assert report.rejoins

    def test_master_redrives_only_unacked_frontier(
        self, chaos_registry, two_node, baseline
    ):
        """The crashed slave resumes from its write-ahead journal: the
        resumed pass re-drives only what the journal's frontier lacks,
        and the other slave's completed work is never re-sent as new
        executions."""
        chaos = BusChaos(
            crash_machine="dbnode", crash_after_actions=2,
            crash_down_for=30.0,
        )
        infrastructure, deployment = bus_deploy(
            chaos_registry, two_node, chaos=chaos
        )
        report = deployment.report
        # dbnode: one aborted execution + one resume; appnode: one.
        assert report.work_executions == 2
        assert report.work_resumes == 1
        journal = deployment.slaves["dbnode"].journal
        # The resumed journal kept the pre-crash entries: entry chains
        # validate and nothing was journalled twice.
        DeploymentJournal.from_payload(journal.spec, journal.to_payload())
        assert (
            deployment_fingerprint(infrastructure, deployment) == baseline
        )


class TestMasterFailoverSmoke:
    @pytest.mark.parametrize("seed", SMOKE_FAILOVER)
    def test_failover_converges(
        self, chaos_registry, two_node, baseline, seed
    ):
        deployment = assert_converged(
            chaos_registry, two_node, baseline,
            chaos=failover_chaos(seed), seed=seed,
        )
        assert deployment.report.masters[-1] == "master-2"

    def test_standby_adopts_frontier_without_rerunning(
        self, chaos_registry, two_node, baseline
    ):
        """Failover lands mid-deploy: the standby clones the control
        log, re-sends only unacked work, and completed actions never
        run again -- each machine's deploy executed exactly once."""
        chaos = BusChaos(failover_at=30.0)
        infrastructure, deployment = bus_deploy(
            chaos_registry, two_node, chaos=chaos
        )
        report = deployment.report
        assert report.masters == ["master", "master-2"]
        assert report.work_executions == len(deployment.slaves)
        assert report.work_resumes == 0
        assert report.crashes == 0
        assert (
            deployment_fingerprint(infrastructure, deployment) == baseline
        )

    def test_replay_is_byte_identical(self, chaos_registry, two_node):
        """Same seed, same chaos: the delivery logs match byte for
        byte (the determinism the corpus rests on)."""
        def run():
            return bus_deploy(
                chaos_registry, two_node,
                chaos=failover_chaos(3),
                faults=LinkFaultPlan(3, drop=0.1, duplicate=0.1,
                                     jitter=1.0),
            )[1]

        assert run().bus.delivery_log() == run().bus.delivery_log()


@pytest.mark.fuzz
class TestChaosCorpus:
    """The full seed x jobs corpus (CI ``bus-chaos`` job)."""

    @pytest.mark.parametrize("seed", FAILOVER_SEEDS)
    def test_failover(self, chaos_registry, two_node, baseline, seed):
        assert_converged(
            chaos_registry, two_node, baseline,
            chaos=failover_chaos(seed), seed=seed,
        )

    @pytest.mark.parametrize("seed", PARTITION_SEEDS)
    def test_partition(self, chaos_registry, two_node, baseline, seed):
        assert_converged(
            chaos_registry, two_node, baseline,
            chaos=partition_chaos(seed), seed=seed,
        )

    @pytest.mark.parametrize("seed", CRASH_SEEDS)
    def test_crash(self, chaos_registry, two_node, baseline, seed):
        assert_converged(
            chaos_registry, two_node, baseline,
            chaos=crash_chaos(seed), seed=seed,
        )

    @pytest.mark.parametrize("seed", range(0, 40, 5))
    def test_compound_crash_during_partition(
        self, chaos_registry, two_node, baseline, seed
    ):
        """Crash and partition in the same run still converge."""
        chaos = crash_chaos(seed)
        chaos.partition_at = 2.0 + (seed % 5) * 10.0
        chaos.partition_for = 40.0
        assert_converged(
            chaos_registry, two_node, baseline, chaos=chaos, seed=seed,
        )
