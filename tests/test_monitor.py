"""Monitoring: spec injection, config generation, watchdog restarts."""

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.config import ConfigurationEngine
from repro.runtime import (
    DeploymentEngine,
    MONIT_KEY,
    ProcessMonitor,
    add_monitoring,
    provision_partial_spec,
)


@pytest.fixture
def monitored_system(registry, infrastructure, drivers, openmrs_partial):
    partial = provision_partial_spec(registry, openmrs_partial, infrastructure)
    partial = add_monitoring(registry, partial)
    spec = ConfigurationEngine(registry).configure(partial).spec
    system = DeploymentEngine(registry, infrastructure, drivers).deploy(spec)
    return system


class TestInjection:
    def test_monit_instance_per_machine(self, registry, openmrs_partial):
        augmented = add_monitoring(registry, openmrs_partial)
        monits = [i for i in augmented if i.key == MONIT_KEY]
        assert len(monits) == 1
        assert monits[0].inside_id == "server"

    def test_multi_machine_injection(self, registry):
        partial = PartialInstallSpec(
            [
                PartialInstance("a", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "a"}),
                PartialInstance("b", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "b"}),
            ]
        )
        augmented = add_monitoring(registry, partial)
        monits = [i for i in augmented if i.key == MONIT_KEY]
        assert {m.inside_id for m in monits} == {"a", "b"}

    def test_monit_itself_deployed(self, monitored_system):
        assert "monit_server" in monitored_system.spec
        assert monitored_system.state_of("monit_server") == "active"


class TestConfigGeneration:
    def test_monitrc_written(self, monitored_system, infrastructure):
        monitor = ProcessMonitor(monitored_system)
        written = monitor.generate_config()
        machine = infrastructure.network.machine("demotest")
        content = machine.fs.read_file("/etc/monitrc")
        assert "check process" in content
        assert "mysqld-mysql" in content
        assert f"demotest:/etc/monitrc" in written

    def test_watched_services_are_daemons(self, monitored_system):
        monitor = ProcessMonitor(monitored_system)
        watched = monitor.watched_services()
        assert "mysql" in watched
        assert "tomcat" in watched
        assert "server" not in watched  # machines are not processes


class TestWatchdog:
    def test_restart_failed_service(self, monitored_system, infrastructure):
        monitor = ProcessMonitor(monitored_system)
        process = monitored_system.driver("mysql").process
        process.fail()
        assert not infrastructure.network.can_connect("demotest", 3306)
        events = monitor.poll()
        assert len(events) == 1
        assert events[0].instance_id == "mysql"
        assert infrastructure.network.can_connect("demotest", 3306)
        assert monitored_system.driver("mysql").process.restarts == 1

    def test_quiet_poll_no_events(self, monitored_system):
        monitor = ProcessMonitor(monitored_system)
        assert monitor.poll() == []

    def test_multiple_failures_one_pass(self, monitored_system):
        monitor = ProcessMonitor(monitored_system)
        monitored_system.driver("mysql").process.fail()
        monitored_system.driver("tomcat").process.fail()
        events = monitor.poll()
        assert {e.instance_id for e in events} == {"mysql", "tomcat"}

    def test_event_log_accumulates(self, monitored_system):
        monitor = ProcessMonitor(monitored_system)
        monitored_system.driver("mysql").process.fail()
        monitor.poll()
        monitored_system.driver("mysql").process.fail()
        monitor.poll()
        assert len(monitor.events) == 2
        assert monitored_system.driver("mysql").process.restarts == 2
