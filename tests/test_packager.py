"""The Django application packager and the Table 1 corpus."""

import pytest

from repro.core import as_key
from repro.core.errors import SpecError
from repro.django import (
    DjangoAppDefinition,
    fa_broken_snapshot,
    fa_snapshots,
    generate_app_type,
    package_application,
    table1_apps,
    validate_application,
)
from repro.django.apps import _initial_migration


class TestTable1Corpus:
    def test_eight_applications(self):
        apps = table1_apps()
        assert len(apps) == 8
        assert {a.name for a in apps} == {
            "Areneae", "Buzzfire", "Codespeed", "Django-Blog",
            "Django-CMS", "FA", "Feature-Collector", "WebApp",
        }

    def test_django_blog_has_18_pip_dependencies(self):
        blog = next(a for a in table1_apps() if a.name == "Django-Blog")
        assert len(blog.pip_packages) == 18

    def test_buzzfire_uses_redis(self):
        buzzfire = next(a for a in table1_apps() if a.name == "Buzzfire")
        assert buzzfire.uses_redis

    def test_webapp_production_features(self):
        webapp = next(a for a in table1_apps() if a.name == "WebApp")
        assert webapp.uses_celery and webapp.uses_redis
        assert webapp.loc == 4000  # "about 4K lines of code"

    def test_fa_snapshots_differ(self):
        v1, v2 = fa_snapshots()
        assert v1.version != v2.version
        assert len(v2.migrations) == len(v1.migrations) + 1

    def test_broken_snapshot_fails_last(self):
        broken = fa_broken_snapshot()
        assert broken.migrations[-1].operations[0].op == "fail"


class TestValidation:
    def good(self, **overrides):
        base = dict(
            name="GoodApp", version="1.0",
            pip_packages=(("requests-lite", "0.8"),),
        )
        base.update(overrides)
        return DjangoAppDefinition(**base)

    def test_valid(self):
        assert validate_application(self.good()) == []

    def test_bad_name(self):
        problems = validate_application(self.good(name="9bad name"))
        assert any("invalid application name" in p for p in problems)

    def test_bad_version(self):
        problems = validate_application(self.good(version="latest"))
        assert any("invalid version" in p for p in problems)

    def test_duplicate_pip(self):
        problems = validate_application(
            self.good(pip_packages=(("x", "1"), ("x", "2")))
        )
        assert any("duplicate pip" in p for p in problems)

    def test_pip_without_version(self):
        problems = validate_application(
            self.good(pip_packages=(("x", ""),))
        )
        assert any("has no version" in p for p in problems)

    def test_duplicate_migration_names(self):
        problems = validate_application(
            self.good(
                migrations=(
                    _initial_migration("a", ["id"]),
                    _initial_migration("b", ["id"]),
                )
            )
        )
        assert any("duplicate migration" in p for p in problems)

    def test_table1_all_valid(self):
        for app in table1_apps():
            assert validate_application(app) == [], app.name


class TestGeneratedTypes:
    def test_extends_django_app(self):
        app_type, _ = generate_app_type(table1_apps()[0])
        assert app_type.extends == as_key("Django-App")
        assert app_type.driver_name == "django-app"

    def test_pip_dependencies_generated(self):
        blog = next(a for a in table1_apps() if a.name == "Django-Blog")
        app_type, pip_types = generate_app_type(blog)
        assert len(pip_types) == 18
        assert len(app_type.environment) == 18 + 1  # pip deps + South

    def test_optional_services_as_peers(self):
        webapp = next(a for a in table1_apps() if a.name == "WebApp")
        app_type, _ = generate_app_type(webapp)
        peer_names = {alt.key.name for dep in app_type.peers
                      for alt in dep.alternatives}
        assert {"Redis", "Memcached", "Celery"} <= peer_names

    def test_static_identity_config(self):
        app_type, _ = generate_app_type(table1_apps()[0])
        from repro.core import PortEnv

        name_port = app_type.config_port("app_name")
        assert name_port.default.evaluate(PortEnv()) == "Areneae"


class TestPackageApplication:
    def test_registers_and_publishes(self, registry, infrastructure):
        app = table1_apps()[0]
        key = package_application(app, registry, infrastructure)
        assert registry.has(key)
        assert infrastructure.package_index.has(
            app.archive_name(), app.version
        )
        for pkg, version in app.pip_packages:
            assert infrastructure.package_index.has(
                f"pypi-{pkg.lower()}", version
            )

    def test_idempotent(self, registry, infrastructure):
        app = table1_apps()[0]
        key1 = package_application(app, registry, infrastructure)
        key2 = package_application(app, registry, infrastructure)
        assert key1 == key2

    def test_shared_pip_types_not_duplicated(self, registry, infrastructure):
        # Areneae and FA both depend on simplejson.
        apps = {a.name: a for a in table1_apps()}
        package_application(apps["Areneae"], registry, infrastructure)
        package_application(apps["FA"], registry, infrastructure)
        assert registry.has(as_key("PyPkg-simplejson 2.1"))

    def test_invalid_app_rejected(self, registry, infrastructure):
        bad = DjangoAppDefinition(name="bad name!", version="1.0")
        with pytest.raises(SpecError):
            package_application(bad, registry, infrastructure)

    def test_archive_contains_migrations(self, registry, infrastructure):
        app = next(a for a in table1_apps() if a.name == "FA")
        package_application(app, registry, infrastructure)
        artifact = infrastructure.package_index.lookup(
            app.archive_name(), app.version
        )
        files = dict(artifact.files)
        assert f"{app.name}/migrations.json" in files
        assert "0001_initial" in files[f"{app.name}/migrations.json"]

    def test_registry_still_well_formed(self, registry, infrastructure):
        from repro.core import check_registry

        for app in table1_apps():
            package_application(app, registry, infrastructure)
        assert check_registry(registry) == []
