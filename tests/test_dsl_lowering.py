"""Lowering DSL syntax to the core model."""

import pytest

from repro.core import (
    INT,
    ListType,
    RecordType,
    ResourceTypeRegistry,
    STRING,
    Space,
    TCP_PORT,
    as_key,
)
from repro.core.errors import ResourceModelError
from repro.core.resource_type import DependencyKind
from repro.dsl import load_resources, lower_module, parse_module


def lower_one(source, registry=None):
    types = lower_module(parse_module(source), registry)
    assert len(types) >= 1
    return types[-1]


class TestTypesAndExprs:
    def test_scalar_type(self):
        t = lower_one('resource "X" 1 { config p: tcp_port = 80 }')
        assert t.config_port("p").port.type is TCP_PORT

    def test_record_type_sorted(self):
        t = lower_one(
            'resource "X" 1 { input r: { b: int, a: string } }'
        )
        assert t.input_port("r").type == RecordType.of(a=STRING, b=INT)

    def test_list_type(self):
        t = lower_one('resource "X" 1 { config l: list[int] = [1] }')
        assert t.config_port("l").port.type == ListType(INT)

    def test_ref_spaces(self):
        t = lower_one(
            'resource "X" 1 {\n'
            "  config c: int = 1\n"
            "  output o: int = config.c\n"
            "}"
        )
        refs = t.output_port("o").value.references()
        assert refs == {(Space.CONFIG, "c")}

    def test_format_lowered(self):
        t = lower_one(
            'resource "X" 1 {\n'
            '  config h: string = "localhost"\n'
            '  output u: string = format("x://{h}", h = config.h)\n'
            "}"
        )
        from repro.core import PortEnv

        env = PortEnv(configs={"h": "web"})
        assert t.output_port("u").value.evaluate(env) == "x://web"

    def test_input_with_value_rejected(self):
        with pytest.raises(ResourceModelError):
            lower_one('resource "X" 1 { input i: int = 5 }')

    def test_static_input_rejected(self):
        with pytest.raises(ResourceModelError):
            lower_one('resource "X" 1 { static input i: int }')


class TestDependencies:
    def test_kinds(self):
        t = lower_one(
            'resource "M" 1 {}\n'
            'resource "X" 1 {\n'
            '  inside "M" 1\n'
            '  env "M" 1\n'
            '  peer "M" 1\n'
            "}"
        )
        assert t.inside.kind == DependencyKind.INSIDE
        assert t.environment[0].kind == DependencyKind.ENVIRONMENT
        assert t.peers[0].kind == DependencyKind.PEER

    def test_version_range_expansion(self):
        t = lower_one(
            'resource "Tomcat" 5.5 {}\n'
            'resource "Tomcat" 6.0.18 {}\n'
            'resource "Tomcat" 6.0.29 {}\n'
            'resource "X" 1 { inside "Tomcat" [5.5, 6.0.29) }'
        )
        assert t.inside.keys() == (
            as_key("Tomcat 5.5"),
            as_key("Tomcat 6.0.18"),
        )

    def test_range_with_registry_universe(self):
        registry = ResourceTypeRegistry()
        load_resources('resource "Pkg" 1.0 {}\nresource "Pkg" 2.0 {}',
                       registry)
        types = load_resources(
            'resource "Y" 1 { env "Pkg" [1.0, *] }', registry
        )
        assert types[0].environment[0].keys() == (
            as_key("Pkg 1.0"),
            as_key("Pkg 2.0"),
        )

    def test_empty_range_rejected(self):
        with pytest.raises(ResourceModelError):
            lower_one(
                'resource "Tomcat" 7.0 {}\n'
                'resource "X" 1 { inside "Tomcat" [5.5, 6.0) }'
            )

    def test_disjunction_dedup(self):
        t = lower_one(
            'resource "A" 1 {}\n'
            'resource "X" 1 { env "A" 1 | "A" 1 }'
        )
        assert t.environment[0].keys() == (as_key("A 1"),)

    def test_mapping_and_reverse_lowered(self):
        t = lower_one(
            'resource "C" 1 { output o: string = "x"\n input extra: string }\n'
            'resource "X" 1 {\n'
            '  inside "C" 1 { o -> mine } reverse { pushed -> extra }\n'
            "  input mine: string\n"
            '  static output pushed: string = "p"\n'
            "}"
        )
        alt = t.inside.alternatives[0]
        assert alt.port_mapping.as_dict() == {"o": "mine"}
        assert alt.reverse_mapping.as_dict() == {"pushed": "extra"}

    def test_extends_lowered(self):
        types = lower_module(
            parse_module(
                'abstract resource "Base" {}\n'
                'resource "Sub" 1 extends "Base" {}'
            )
        )
        assert types[1].extends == as_key("Base")

    def test_load_resources_registers(self):
        registry = ResourceTypeRegistry()
        load_resources('resource "Solo" 1 {}', registry)
        assert registry.has(as_key("Solo 1"))
