"""Pretty-printing and the parse/lower round trip."""

import pytest

from repro.core import (
    HOSTNAME,
    INT,
    Lit,
    ListType,
    RecordType,
    STRING,
    TCP_PORT,
    config_ref,
    input_ref,
)
from repro.core.values import Format, ListExpr, RecordExpr
from repro.dsl import (
    format_expr,
    format_module,
    format_resource_type,
    format_type,
    lower_module,
    parse_module,
)
from repro.library import standard_types


class TestFormatType:
    def test_scalar(self):
        assert format_type(TCP_PORT) == "tcp_port"

    def test_record(self):
        t = RecordType.of(host=HOSTNAME, port=TCP_PORT)
        assert format_type(t) == "{ host: hostname, port: tcp_port }"

    def test_list(self):
        assert format_type(ListType(INT)) == "list[int]"


class TestFormatExpr:
    def test_literals(self):
        assert format_expr(Lit("x")) == '"x"'
        assert format_expr(Lit(5)) == "5"
        assert format_expr(Lit(True)) == "true"
        assert format_expr(Lit(False)) == "false"

    def test_string_escaping(self):
        assert format_expr(Lit('a"b')) == '"a\\"b"'

    def test_dict_literal_as_record(self):
        assert format_expr(Lit({"a": 1})) == "{ a = 1 }"

    def test_refs(self):
        assert format_expr(input_ref("db", "host")) == "input.db.host"
        assert format_expr(config_ref("port")) == "config.port"

    def test_record_expr(self):
        expr = RecordExpr.of(a=Lit(1), b=config_ref("x"))
        assert format_expr(expr) == "{ a = 1, b = config.x }"

    def test_list_expr(self):
        assert format_expr(ListExpr((Lit(1), Lit(2)))) == "[1, 2]"

    def test_format_call(self):
        expr = Format.of("u{h}", h=input_ref("host"))
        assert format_expr(expr) == 'format("u{h}", h = input.host)'


class TestRoundTrip:
    def test_simple_resource(self):
        source = (
            'resource "X" 1 driver "service" {\n'
            '  config port: tcp_port = 8080\n'
            '  output o: int = config.port\n'
            "}"
        )
        types = lower_module(parse_module(source))
        again = lower_module(parse_module(format_module(types)))
        assert types == again

    def test_standard_library_round_trips(self):
        """Every built-in library type survives pretty -> parse -> lower.

        The one caveat: Lit(record) prints as record syntax, which lowers
        back to RecordExpr -- semantically equal, so compare evaluated
        output values rather than raw equality for those.
        """
        types = standard_types()
        text = format_module(types)
        reparsed = lower_module(parse_module(text))
        assert len(reparsed) == len(types)
        for original, again in zip(types, reparsed):
            assert original.key == again.key
            assert original.abstract == again.abstract
            assert original.extends == again.extends
            assert original.driver_name == again.driver_name
            assert [p.name for p in original.input_ports] == [
                p.name for p in again.input_ports
            ]
            assert original.inside == again.inside
            assert original.environment == again.environment
            assert original.peers == again.peers

    def test_library_text_is_nontrivial(self):
        """The rendered library is the paper's 'metadata': it should be a
        substantial document."""
        text = format_module(standard_types())
        assert len(text.splitlines()) > 200
