"""Parallel component configuration equals the serial pipelines.

The PR 6 tentpole property: ``configure(partition=True, workers=N)``
-- engine or session, any worker count -- produces the same full
specification, named model, deployed set, and aggregate stats as the
serial partitioned pipeline, byte for byte (and hence as the monolithic
one, by the PR 5 equivalence); UNSAT input raises the *same* Theorem 1
diagnosis no matter which worker hit the conflict; and warm worker
caches never leak state across partial-spec fingerprints.

The ``fuzz``-marked class runs the full 200-seed corpus + 40 conflict
mutants through one persistent engine/session pair; the unmarked tests
keep a tier-1-sized slice (small fleets, 1-2 workers).
"""

from __future__ import annotations

import dataclasses
import io
import json
import multiprocessing
import os
import signal

import pytest

from repro.cli import main
from repro.config import (
    ConfigurationEngine,
    ConfigurationSession,
    RemoteTraceback,
    WorkerPool,
    lpt_assignment,
    resolve_workers,
)
from repro.core import PartialInstallSpec
from repro.core.errors import ConfigurationError, UnsatisfiableError
from repro.dsl import full_to_json
from repro.library import standard_registry
from repro.library.fleet import FleetTopology, fleet_partial
from repro.obs import Tracer

from tests.test_fuzz import conflict_mutant, random_fleet_partial

REGISTRY = standard_registry()

SMOKE_SEEDS = list(range(12))
CORPUS_SEEDS = list(range(200))
MUTANT_SMOKE_SEEDS = list(range(4))
MUTANT_CORPUS_SEEDS = list(range(40))


def small_fleet(replicas: int = 6, machines: int = 3):
    return fleet_partial(
        FleetTopology(replicas=replicas, machines=machines)
    )


def assert_parallel_equivalent(
    partial: PartialInstallSpec,
    engine: ConfigurationEngine,
    session: ConfigurationSession,
) -> None:
    """Parallel output (engine + warm session) is bit-identical to the
    monolithic and serial partitioned engines'."""
    mono = ConfigurationEngine(REGISTRY).configure(partial)
    serial = ConfigurationEngine(REGISTRY, partition=True).configure(partial)
    expected = full_to_json(mono.spec)
    assert full_to_json(serial.spec) == expected

    par = engine.configure(partial)
    assert full_to_json(par.spec) == expected
    assert par.model == mono.model
    assert par.deployed_ids == mono.deployed_ids
    assert par.formula is None
    assert dataclasses.asdict(par.constraint_stats) == dataclasses.asdict(
        serial.constraint_stats
    )
    assert dataclasses.asdict(par.solver_stats) == dataclasses.asdict(
        serial.solver_stats
    )
    assert par.partition is not None
    assert par.partition.workers == engine._workers
    # Placement is deterministic LPT over component node counts.
    expected_workers = lpt_assignment(
        [component.nodes for component in par.partition.components],
        engine._workers,
    )
    for component, worker in zip(par.partition.components, expected_workers):
        assert component.worker == worker
    assert par.partition.wire is not None
    assert par.partition.wire.reply_frames == par.partition.count
    assert par.partition.wire.reply_bytes > 0

    cold = session.configure(partial)
    warm = session.configure(partial)
    assert full_to_json(cold.spec) == expected
    assert full_to_json(warm.spec) == expected
    assert cold.model == warm.model == mono.model
    assert warm.cache.graph_hit and warm.cache.cnf_hit
    assert warm.cache.solver_reused and warm.cache.typecheck_skipped


def assert_parallel_same_diagnosis(
    partial: PartialInstallSpec,
    engine: ConfigurationEngine,
    session: ConfigurationSession,
) -> None:
    """Parallel UNSAT raises the serial Theorem 1 message, byte for
    byte, regardless of which worker hit the conflict."""
    with pytest.raises(UnsatisfiableError) as mono_exc:
        ConfigurationEngine(REGISTRY).configure(partial)
    with pytest.raises(UnsatisfiableError) as engine_exc:
        engine.configure(partial)
    with pytest.raises(UnsatisfiableError) as session_exc:
        session.configure(partial)
    assert str(engine_exc.value) == str(mono_exc.value)
    assert str(session_exc.value) == str(mono_exc.value)


class TestResolveWorkers:
    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_zero_means_core_count(self):
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(-1)


class TestGuardRails:
    def test_workers_require_partition(self):
        with pytest.raises(ConfigurationError):
            ConfigurationEngine(REGISTRY, workers=2)
        with pytest.raises(ConfigurationError):
            ConfigurationSession(REGISTRY, workers=2)
        engine = ConfigurationEngine(REGISTRY)
        with pytest.raises(ConfigurationError):
            engine.configure(small_fleet(), workers=2)
        session = ConfigurationSession(REGISTRY)
        with pytest.raises(ConfigurationError):
            session.configure(small_fleet(), workers=2)

    def test_workers_with_dpll_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfigurationEngine(
                REGISTRY, solver="dpll", partition=True, workers=2
            )

    def test_closed_pool_refuses_work(self):
        pool = WorkerPool(REGISTRY, workers=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ConfigurationError):
            pool.run_components([])


class TestEngineParallel:
    def test_equivalent_at_one_and_two_workers(self):
        partial = small_fleet()
        for workers in (1, 2):
            with ConfigurationEngine(
                REGISTRY, partition=True, workers=workers
            ) as engine, ConfigurationSession(
                REGISTRY, partition=True, workers=workers
            ) as session:
                assert_parallel_equivalent(partial, engine, session)

    def test_pool_persists_across_calls(self):
        with ConfigurationEngine(
            REGISTRY, partition=True, workers=2
        ) as engine:
            first = engine.configure(small_fleet())
            pool = engine._pool
            assert pool is not None and not pool.closed
            second = engine.configure(small_fleet(replicas=4, machines=2))
            assert engine._pool is pool
        assert pool.closed
        assert first.partition.workers == second.partition.workers == 2

    def test_configure_after_close_reopens_pool(self):
        engine = ConfigurationEngine(REGISTRY, partition=True, workers=1)
        try:
            engine.configure(small_fleet())
            engine.close()
            result = engine.configure(small_fleet())
            assert result.partition.workers == 1
        finally:
            engine.close()

    def test_empty_partial(self):
        with ConfigurationEngine(
            REGISTRY, partition=True, workers=2
        ) as engine:
            result = engine.configure(PartialInstallSpec())
        assert len(result.spec) == 0
        assert result.partition.count == 0
        assert result.solver_stats.components == 0

    def test_per_call_workers_override(self):
        with ConfigurationEngine(REGISTRY, partition=True) as engine:
            serial = engine.configure(small_fleet())
            assert serial.partition.workers == 0
            par = engine.configure(small_fleet(), workers=1)
            assert par.partition.workers == 1
            assert full_to_json(par.spec) == full_to_json(serial.spec)

    def test_parallel_wall_time_recorded(self):
        with ConfigurationEngine(
            REGISTRY, partition=True, workers=1
        ) as engine:
            result = engine.configure(small_fleet())
        assert result.timings.parallel_wall_ms > 0.0

    @pytest.mark.parametrize("seed", MUTANT_SMOKE_SEEDS)
    def test_same_diagnosis(self, seed):
        with ConfigurationEngine(
            REGISTRY, partition=True, workers=2
        ) as engine, ConfigurationSession(
            REGISTRY, partition=True, workers=2
        ) as session:
            assert_parallel_same_diagnosis(
                conflict_mutant(seed), engine, session
            )


class TestSessionWarmWorkers:
    def test_warm_call_skips_everything(self):
        partial = small_fleet()
        with ConfigurationSession(
            REGISTRY, partition=True, workers=2
        ) as session:
            cold = session.configure(partial)
            assert not cold.cache.graph_hit and not cold.cache.cnf_hit
            assert not cold.cache.solver_reused
            warm = session.configure(partial)
            assert warm.cache.graph_hit and warm.cache.cnf_hit
            assert warm.cache.solver_reused and warm.cache.typecheck_skipped
            # The workers skipped re-propagation: the decoded outcome
            # repeated, so no propagate time was spent or shipped back.
            assert all(
                component.propagate_ms == 0.0
                for component in warm.partition.components
            )
            assert full_to_json(warm.spec) == full_to_json(cold.spec)

    def test_fingerprints_never_share_state(self):
        """A,B,A traffic: every answer equals a fresh engine's."""
        fleet_a = small_fleet()
        fleet_b = small_fleet(replicas=4, machines=2)
        expected_a = full_to_json(
            ConfigurationEngine(REGISTRY).configure(fleet_a).spec
        )
        expected_b = full_to_json(
            ConfigurationEngine(REGISTRY).configure(fleet_b).spec
        )
        with ConfigurationSession(
            REGISTRY, partition=True, workers=2
        ) as session:
            assert full_to_json(session.configure(fleet_a).spec) == expected_a
            assert full_to_json(session.configure(fleet_b).spec) == expected_b
            again = session.configure(fleet_a)
            assert full_to_json(again.spec) == expected_a
            assert again.cache.graph_hit and again.cache.solver_reused

    def test_eviction_reaches_the_workers(self):
        fleet_a = small_fleet()
        fleet_b = small_fleet(replicas=4, machines=2)
        with ConfigurationSession(
            REGISTRY, partition=True, workers=1, max_entries=1
        ) as session:
            session.configure(fleet_a)
            pool = session._pool
            fp_a = session.configure(fleet_a).cache.fingerprint
            assert pool.seeded(fp_a)
            session.configure(fleet_b)  # evicts A (parent and workers)
            assert session.stats.evictions == 1
            assert not pool.seeded(fp_a)
            returned = session.configure(fleet_a)  # re-encoded, not stale
            assert not returned.cache.graph_hit
            assert full_to_json(returned.spec) == full_to_json(
                ConfigurationEngine(REGISTRY).configure(fleet_a).spec
            )

    def test_flush_clears_worker_caches(self):
        partial = small_fleet()
        with ConfigurationSession(
            REGISTRY, partition=True, workers=1
        ) as session:
            fingerprint = session.configure(partial).cache.fingerprint
            assert session._pool.seeded(fingerprint)
            session.flush()
            assert not session._pool.seeded(fingerprint)
            cold = session.configure(partial)
            assert not cold.cache.graph_hit and not cold.cache.cnf_hit

    def test_registry_change_recycles_the_pool(self):
        registry = standard_registry()
        partial = small_fleet()
        session = ConfigurationSession(
            registry, partition=True, workers=1
        )
        try:
            session.configure(partial)
            old_pool = session._pool
            # Mutating the registry makes the workers' snapshot stale:
            # the pool must be recycled, not reused.
            from repro.dsl import load_resources

            load_resources(
                'resource "Fresh-Widget" 1.0 driver "null" {\n'
                '  inside "Server" { host -> host }\n'
                '  input host: { hostname: hostname, ip_address: string,\n'
                '                os_user_name: string }\n'
                "}\n",
                registry,
            )
            result = session.configure(partial)
            assert session.stats.invalidations == 1
            assert old_pool.closed
            assert session._pool is not old_pool
            assert full_to_json(result.spec) == full_to_json(
                ConfigurationEngine(standard_registry())
                .configure(partial).spec
            )
        finally:
            session.close()

    def test_mixed_modes_share_one_session(self):
        partial = small_fleet()
        with ConfigurationSession(REGISTRY, partition=True) as session:
            serial = session.configure(partial)
            par = session.configure(partial, workers=1)
            mono = session.configure(partial, partition=False)
            assert serial.partition.workers == 0
            assert par.partition.workers == 1
            assert mono.partition is None
            assert full_to_json(serial.spec) == full_to_json(par.spec)
            assert full_to_json(mono.spec) == full_to_json(par.spec)
            assert len(session) == 3  # three mode-distinct cache entries


class TestLptAssignment:
    def test_uniform_sizes_degenerate_to_round_robin(self):
        assert lpt_assignment([5, 5, 5, 5, 5, 5], 3) == [0, 1, 2, 0, 1, 2]

    def test_largest_first_to_least_loaded(self):
        # Two big components split across the workers; the small ones
        # fill in on whichever worker is lighter at that step.
        assert lpt_assignment([5, 1, 1, 1, 5], 2) == [0, 0, 1, 0, 1]

    def test_deterministic(self):
        sizes = [7, 3, 3, 9, 1, 4, 4, 2]
        assert lpt_assignment(sizes, 3) == lpt_assignment(sizes, 3)

    def test_never_worse_than_round_robin_on_skew(self):
        sizes = [100, 1, 1, 1, 1, 1, 1, 1]
        workers = 4

        def makespan(assignment):
            loads = [0] * workers
            for position, worker in enumerate(assignment):
                loads[worker] += sizes[position]
            return max(loads)

        round_robin = [index % workers for index in range(len(sizes))]
        assert makespan(lpt_assignment(sizes, workers)) <= makespan(
            round_robin
        )

    def test_single_worker_takes_everything(self):
        assert lpt_assignment([3, 1, 2], 1) == [0, 0, 0]

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            lpt_assignment([1], 0)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="poisoning workers via inherited memory needs fork",
)
class TestWorkerFailures:
    def test_remote_traceback_crosses_the_pickle_boundary(
        self, monkeypatch
    ):
        import repro.config.parallel as parallel_module

        def poisoned(graph, encoding, **kwargs):
            raise RuntimeError("poisoned encoding (worker-side)")

        # Patch before the pool exists: forked workers inherit the
        # poisoned function, while the parent never calls it on this
        # path (decode/propagate use the component graph directly).
        monkeypatch.setattr(
            parallel_module, "generate_constraints", poisoned
        )
        with ConfigurationEngine(
            REGISTRY, partition=True, workers=2
        ) as engine:
            with pytest.raises(RuntimeError) as exc:
                engine.configure(small_fleet())
        assert "poisoned encoding (worker-side)" in str(exc.value)
        cause = exc.value.__cause__
        assert isinstance(cause, RemoteTraceback)
        assert "Traceback (most recent call last)" in str(cause)
        assert "poisoned encoding (worker-side)" in str(cause)

    def test_worker_death_reports_in_flight_and_recycles(self):
        partial = small_fleet()
        with ConfigurationEngine(
            REGISTRY, partition=True, workers=1
        ) as engine:
            first = engine.configure(partial)
            pool = engine._pool
            os.kill(pool._processes[0].pid, signal.SIGKILL)
            pool._processes[0].join(timeout=5.0)
            with pytest.raises(ConfigurationError) as exc:
                engine.configure(partial)
            message = str(exc.value)
            assert "worker 0" in message
            assert "in flight" in message
            assert pool.closed
            # The engine starts a fresh pool on the next call instead
            # of deadlocking on the dead worker's pipe.
            again = engine.configure(partial)
            assert engine._pool is not pool
            assert full_to_json(again.spec) == full_to_json(first.spec)

    def test_protocol_desync_mid_collection_recycles_the_pool(self):
        from repro.config import generate_graph
        from repro.config.parallel import _send_frame
        from repro.config.partition import partition_graph

        graph = generate_graph(REGISTRY, small_fleet())
        components = partition_graph(graph).components
        assert len(components) >= 2
        pool = WorkerPool(REGISTRY, workers=2)
        try:
            # An unknown frame kind makes the worker exit (protocol
            # desync defence), so the parent hits EOF mid-collection
            # while the other worker's replies are still pending.
            _send_frame(pool._conns[0], ("bogus",))
            with pytest.raises(ConfigurationError) as exc:
                pool.run_components(components)
            assert "in flight" in str(exc.value)
            assert pool.closed
        finally:
            pool.close()


class TestStreamedCollection:
    def test_parent_decode_overlaps_worker_spans(self):
        """The streamed-collection signature: parent-side decode and
        propagate spans of early components sit inside other
        components' worker-side windows on the dispatch timeline."""
        tracer = Tracer()
        partial = small_fleet(replicas=12, machines=6)
        with ConfigurationEngine(
            REGISTRY, partition=True, workers=2, tracer=tracer
        ) as engine:
            result = engine.configure(partial)
        assert result.partition.count >= 2
        spans = tracer.spans(category="config")
        assert any(span.name == "configure:dispatch" for span in spans)
        component_spans = [
            span for span in spans
            if span.name.startswith("configure:component[")
        ]
        parent_side = [
            span for span in component_spans
            if span.name.endswith(":decode")
            or span.name.endswith(":propagate")
        ]
        worker_side = [
            span for span in component_spans
            if span.name.endswith(":encode") or span.name.endswith(":solve")
        ]
        assert parent_side and worker_side
        # Parent decode started before the last reply arrived...
        recvs = [
            instant for instant in tracer.instants(category="config")
            if instant.name.endswith(":recv")
        ]
        assert len(recvs) == result.partition.count
        last_arrival = max(instant.timestamp for instant in recvs)
        assert min(span.timestamp for span in parent_side) < last_arrival
        # ...and some parent-side span overlaps another component's
        # worker-side span: the parent worked while workers solved.
        assert any(
            parent.args["component"] != worker.args["component"]
            and parent.timestamp < worker.timestamp + worker.duration
            and worker.timestamp < parent.timestamp + parent.duration
            for parent in parent_side
            for worker in worker_side
        )

    def test_warm_session_replies_shrink_to_headers(self):
        # Large enough that model arrays dominate the cold replies.
        partial = small_fleet(replicas=24, machines=6)
        with ConfigurationSession(
            REGISTRY, partition=True, workers=2
        ) as session:
            session.configure(partial)
            cold_wire = session._pool.last_wire
            warm = session.configure(partial)
            warm_wire = session._pool.last_wire
        assert warm.partition.wire is warm_wire
        assert warm_wire.reply_frames == cold_wire.reply_frames
        # Unchanged outcomes ship no model bytes: the whole warm reply
        # stream is a fraction of the cold one.
        assert warm_wire.reply_bytes < cold_wire.reply_bytes / 2
        assert warm_wire.largest_reply_bytes < cold_wire.largest_reply_bytes

    def test_env_var_selects_start_method(self, monkeypatch):
        monkeypatch.setenv("ENGAGE_CONFIG_START_METHOD", "fork")
        pool = WorkerPool(REGISTRY, workers=1)
        try:
            assert pool.start_method == "fork"
        finally:
            pool.close()


@pytest.mark.slow
@pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="spawn start method unavailable",
)
class TestSpawnStartMethod:
    """The macOS/Windows default path: workers built by spawn (fresh
    interpreter, everything pickled) produce bit-identical output and
    the same warm-cache behaviour as fork workers."""

    def test_spawn_engine_bit_identity(self):
        partial = small_fleet()
        expected = full_to_json(
            ConfigurationEngine(REGISTRY).configure(partial).spec
        )
        with ConfigurationEngine(
            REGISTRY, partition=True, workers=2, start_method="spawn"
        ) as engine:
            result = engine.configure(partial)
            assert engine._pool.start_method == "spawn"
            assert full_to_json(result.spec) == expected

    def test_spawn_session_warm_cache(self):
        partial = small_fleet()
        expected = full_to_json(
            ConfigurationEngine(REGISTRY).configure(partial).spec
        )
        with ConfigurationSession(
            REGISTRY, partition=True, workers=2, start_method="spawn"
        ) as session:
            cold = session.configure(partial)
            assert session._pool.start_method == "spawn"
            warm = session.configure(partial)
            assert full_to_json(cold.spec) == expected
            assert full_to_json(warm.spec) == expected
            assert warm.cache.graph_hit and warm.cache.cnf_hit
            assert warm.cache.solver_reused
            assert warm.cache.typecheck_skipped
            assert all(
                component.propagate_ms == 0.0
                for component in warm.partition.components
            )


class TestWorkerTraceSpans:
    def test_component_spans_carry_index_nodes_and_worker(self):
        tracer = Tracer()
        with ConfigurationEngine(
            REGISTRY, partition=True, workers=2, tracer=tracer
        ) as engine:
            result = engine.configure(small_fleet())
        spans = {span.name: span for span in tracer.spans(category="config")}
        expected_workers = lpt_assignment(
            [component.nodes for component in result.partition.components], 2
        )
        for component, worker in zip(
            result.partition.components, expected_workers
        ):
            span = spans[f"configure:component[{component.index}]"]
            assert span.args["component"] == component.index
            assert span.args["nodes"] == component.nodes
            assert span.args["worker"] == component.worker == worker
        # Worker-measured phase sub-spans, deterministically ordered.
        names = [
            span.name
            for span in tracer.spans(category="config")
            if span.name.startswith("configure:component[")
            and span.name.endswith(":solve")
        ]
        assert names == sorted(names)
        assert names  # every component solved somewhere

    def test_serial_component_spans_have_no_worker_arg(self):
        tracer = Tracer()
        ConfigurationEngine(
            REGISTRY, partition=True, tracer=tracer
        ).configure(small_fleet())
        spans = [
            span for span in tracer.spans(category="config")
            if span.name.startswith("configure:component[")
        ]
        assert spans
        for span in spans:
            assert "worker" not in span.args
            assert span.args["component"] >= 0
            assert span.args["nodes"] > 0


class TestCli:
    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    @pytest.fixture
    def fleet_file(self, tmp_path):
        from repro.library.fleet import fleet_spec_json

        path = tmp_path / "fleet.json"
        path.write_text(
            fleet_spec_json(FleetTopology(replicas=6, machines=3)),
            encoding="utf-8",
        )
        return str(path)

    def test_workers_implies_partition(self, fleet_file, tmp_path):
        output = tmp_path / "full.json"
        code, text = self._run([
            "configure", fleet_file, "--workers", "1",
            "-o", str(output),
        ])
        assert code == 0
        assert "on 1 workers" in text
        serial_code, _ = self._run([
            "configure", fleet_file, "--partition",
            "-o", str(tmp_path / "serial.json"),
        ])
        assert serial_code == 0
        assert output.read_text() == (tmp_path / "serial.json").read_text()

    def test_workers_conflict_with_no_partition(self, fleet_file):
        code, text = self._run([
            "configure", fleet_file, "--no-partition", "--workers", "2",
        ])
        assert code == 2
        assert "--workers requires" in text

    def test_stats_json_engine(self, fleet_file, tmp_path):
        stats = tmp_path / "stats.json"
        code, _ = self._run([
            "configure", fleet_file, "--workers", "1",
            "--stats-json", str(stats), "-o", str(tmp_path / "full.json"),
        ])
        assert code == 0
        payload = json.loads(stats.read_text())
        (run,) = payload["runs"]
        assert run["instances"] > 0
        assert run["timings"]["solve_ms"] >= 0.0
        assert run["timings"]["parallel_wall_ms"] > 0.0
        assert run["partition"]["workers"] == 1
        assert run["partition"]["count"] == 3
        assert len(run["partition"]["components"]) == 3
        for component in run["partition"]["components"]:
            assert component["worker"] == 0
            assert component["decode_ms"] >= 0.0
            assert component["recv_ms"] >= 0.0
        wire = run["partition"]["wire"]
        assert wire["reply_frames"] == 3
        assert wire["reply_bytes"] > 0
        assert wire["request_bytes"] > 0
        assert wire["largest_reply_bytes"] <= wire["reply_bytes"]

    def test_stats_json_session_repeat(self, fleet_file, tmp_path):
        stats = tmp_path / "stats.json"
        code, text = self._run([
            "configure", fleet_file, "--session", "--repeat", "2",
            "--workers", "1", "--stats-json", str(stats),
        ])
        assert code == 0
        assert "on 1 workers" in text
        runs = json.loads(stats.read_text())["runs"]
        assert len(runs) == 2
        assert not runs[0]["cache"]["graph_hit"]
        assert runs[1]["cache"]["graph_hit"]
        assert runs[1]["cache"]["solver_reused"]

    def test_stats_json_without_partition(self, fleet_file, tmp_path):
        stats = tmp_path / "stats.json"
        code, _ = self._run([
            "configure", fleet_file,
            "--stats-json", str(stats), "-o", str(tmp_path / "full.json"),
        ])
        assert code == 0
        (run,) = json.loads(stats.read_text())["runs"]
        assert run["partition"] is None
        assert run["constraint_stats"]["clauses"] > 0


class TestCorpusSmoke:
    """A tier-1-sized slice of the parallel equivalence corpus."""

    @pytest.mark.parametrize("seed", SMOKE_SEEDS)
    def test_equivalent(self, seed):
        with ConfigurationEngine(
            REGISTRY, partition=True, workers=2
        ) as engine, ConfigurationSession(
            REGISTRY, partition=True, workers=2
        ) as session:
            assert_parallel_equivalent(
                random_fleet_partial(seed), engine, session
            )


@pytest.mark.fuzz
class TestCorpusFull:
    """The full 200-seed corpus through ONE persistent engine/session
    pair (CI fuzz job; excluded from tier-1) -- long-lived worker pools
    see hundreds of distinct fingerprints without cross-talk."""

    @pytest.fixture(scope="class")
    def parallel_pair(self):
        with ConfigurationEngine(
            REGISTRY, partition=True, workers=4
        ) as engine, ConfigurationSession(
            REGISTRY, partition=True, workers=4
        ) as session:
            yield engine, session

    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    def test_equivalent(self, seed, parallel_pair):
        engine, session = parallel_pair
        assert_parallel_equivalent(
            random_fleet_partial(seed), engine, session
        )

    @pytest.mark.parametrize("seed", MUTANT_CORPUS_SEEDS)
    def test_same_diagnosis(self, seed, parallel_pair):
        engine, session = parallel_pair
        assert_parallel_same_diagnosis(
            conflict_mutant(seed), engine, session
        )
