"""The resource library: census, well-formedness, artifact coverage."""

import pytest

from repro.core import as_key, check_registry
from repro.drivers import package_slug
from repro.library import (
    ARTIFACTS,
    standard_drivers,
    standard_infrastructure,
    standard_registry,
    standard_types,
)


class TestWellFormedness:
    def test_library_is_well_formed(self, registry):
        assert check_registry(registry) == []

    def test_census(self, registry):
        """The paper's Django support involved 37 resources; our built-in
        library (before packager-generated app types) is the same order
        of magnitude."""
        assert 25 <= len(registry) <= 45

    def test_expected_types_present(self, registry):
        for key in (
            "Server", "Mac-OSX 10.6", "Ubuntu-Linux 10.04", "Java",
            "JDK 1.6", "JRE 1.6", "Tomcat 5.5", "Tomcat 6.0.18",
            "OpenMRS 1.8", "JasperReports-Server 4.2",
            "MySQL-JDBC-Connector 5.1.17", "Database", "MySQL 5.1",
            "PostgreSQL 8.4", "SQLite 3.7", "Redis 2.4", "MongoDB 2.0",
            "Memcached 1.4",
            "RabbitMQ 2.7", "Monit 5.3", "Python-Runtime 2.7",
            "Django 1.3", "South 0.7", "WebServer", "Gunicorn 0.13",
            "Apache-HTTPD 2.2", "Celery 2.4", "Django-App",
        ):
            assert registry.has(as_key(key)), key


class TestFrontiers:
    def test_server_frontier(self, registry):
        frontier = {str(k) for k in registry.concrete_frontier(as_key("Server"))}
        # Note the canonical display: version components are integers, so
        # "10.04" renders as "10.4" (the keys compare equal either way).
        assert frontier == {
            "Mac-OSX 10.5", "Mac-OSX 10.6",
            "Ubuntu-Linux 10.4", "Ubuntu-Linux 10.10",
            "Windows-XP 5.1",
        }

    def test_java_frontier(self, registry):
        frontier = {str(k) for k in registry.concrete_frontier(as_key("Java"))}
        assert frontier == {"JDK 1.6", "JRE 1.6"}

    def test_database_frontier(self, registry):
        frontier = {
            str(k) for k in registry.concrete_frontier(as_key("Database"))
        }
        assert frontier == {"MySQL 5.1", "PostgreSQL 8.4", "SQLite 3.7"}

    def test_webserver_frontier(self, registry):
        frontier = {
            str(k) for k in registry.concrete_frontier(as_key("WebServer"))
        }
        assert frontier == {"Gunicorn 0.13", "Apache-HTTPD 2.2"}


class TestDriverCoverage:
    def test_every_concrete_type_has_registered_driver(self, registry, drivers):
        for key in registry.keys():
            resource_type = registry.effective(key)
            if resource_type.abstract:
                continue
            assert drivers.has(resource_type.driver_name), (
                f"{key} uses unregistered driver "
                f"{resource_type.driver_name!r}"
            )


class TestArtifactCoverage:
    def test_package_driven_types_have_artifacts(self, registry):
        """Every concrete non-machine type whose driver installs a
        package must have its artifact in the catalogue."""
        infrastructure = standard_infrastructure()
        index = infrastructure.package_index
        exempt_drivers = {"null", "machine"}
        for key in registry.keys():
            resource_type = registry.effective(key)
            if resource_type.abstract or resource_type.is_machine():
                continue
            if resource_type.driver_name in exempt_drivers:
                continue
            slug = package_slug(key.name)
            assert index.has(slug, str(key.version)), (
                f"no artifact {slug}-{key.version} for {key}"
            )

    def test_artifact_sizes_positive(self):
        for (name, version), size in ARTIFACTS.items():
            assert size > 0, (name, version)


class TestInfrastructureFactory:
    def test_cloud_optional(self):
        with_cloud = standard_infrastructure(with_cloud=True)
        without = standard_infrastructure(with_cloud=False)
        assert with_cloud.default_provider() is not None
        assert without.default_provider() is None

    def test_types_list_is_fresh_each_call(self):
        a = standard_types()
        b = standard_types()
        assert a is not b
        assert [t.key for t in a] == [t.key for t in b]

    def test_registries_independent(self):
        r1 = standard_registry()
        r2 = standard_registry()
        r1.register(
            __import__("repro.core", fromlist=["define"]).define("Extra", "1").build()
        )
        assert not r2.has(as_key("Extra 1"))
