"""The Figure 2 JSON installation-spec format."""

import pytest

from repro.core import as_key
from repro.core.errors import SpecError
from repro.config import ConfigurationEngine
from repro.dsl import (
    full_from_json,
    full_to_json,
    line_count,
    partial_from_json,
    partial_to_json,
)

FIGURE_2 = """
[
  { "id": "server", "key": "Mac-OSX 10.6",
    "config_port": { "hostname": "localhost", "os_user_name": "root" } },
  { "id": "tomcat", "key": "Tomcat 6.0.18", "inside": { "id": "server" } },
  { "id": "openmrs", "key": "OpenMRS 1.8", "inside": { "id": "tomcat" } }
]
"""


class TestPartial:
    def test_parse_figure2(self):
        spec = partial_from_json(FIGURE_2)
        assert spec.ids() == ["server", "tomcat", "openmrs"]
        assert spec["server"].config["hostname"] == "localhost"
        assert spec["tomcat"].inside_id == "server"
        assert spec["openmrs"].key == as_key("OpenMRS 1.8")

    def test_roundtrip(self):
        spec = partial_from_json(FIGURE_2)
        again = partial_from_json(partial_to_json(spec))
        assert again.ids() == spec.ids()
        for iid in spec.ids():
            assert again[iid] == spec[iid]

    def test_malformed_json(self):
        with pytest.raises(SpecError):
            partial_from_json("{not json")

    def test_non_array(self):
        with pytest.raises(SpecError):
            partial_from_json('{"id": "x"}')

    def test_missing_key_field(self):
        with pytest.raises(SpecError):
            partial_from_json('[{"id": "x"}]')

    def test_malformed_inside(self):
        with pytest.raises(SpecError):
            partial_from_json('[{"id": "x", "key": "A 1", "inside": "y"}]')

    def test_figure2_parses_and_configures(self, registry):
        spec = partial_from_json(FIGURE_2)
        result = ConfigurationEngine(registry).configure(spec)
        assert "mysql" in result.deployed_ids


class TestFull:
    @pytest.fixture
    def full_spec(self, registry, openmrs_partial):
        return ConfigurationEngine(registry).configure(openmrs_partial).spec

    def test_roundtrip(self, full_spec):
        text = full_to_json(full_spec)
        again = full_from_json(text)
        assert again.ids() == full_spec.ids()
        for iid in full_spec.ids():
            assert again[iid] == full_spec[iid]

    def test_contains_port_values(self, full_spec):
        text = full_to_json(full_spec)
        assert '"manager_port": 8080' in text
        assert "http://demotest:8080/openmrs" in text

    def test_roundtrip_still_typechecks(self, registry, full_spec):
        from repro.config import spec_problems

        again = full_from_json(full_to_json(full_spec))
        assert spec_problems(registry, again) == []


class TestLineCounts:
    def test_blank_lines_ignored(self):
        assert line_count("a\n\n  \nb\n") == 2

    def test_partial_much_smaller_than_full(self, registry, openmrs_partial):
        """The compaction the paper reports: the full spec is roughly an
        order of magnitude larger than the partial one."""
        result = ConfigurationEngine(registry).configure(openmrs_partial)
        partial_lines = line_count(partial_to_json(openmrs_partial))
        full_lines = line_count(full_to_json(result.spec))
        assert full_lines > 4 * partial_lines
