"""Machines, processes, and the network."""

import pytest

from repro.core.errors import SimulationError
from repro.sim import (
    ConnectionRefused,
    Infrastructure,
    Machine,
    Network,
    OsIdentity,
    ProcessState,
    SimClock,
)


@pytest.fixture
def world():
    return Infrastructure()


@pytest.fixture
def machine(world):
    return world.add_machine("web1", "ubuntu-linux", "10.04")


class TestMachine:
    def test_facts(self, machine):
        facts = machine.facts()
        assert facts["hostname"] == "web1"
        assert facts["os_name"] == "ubuntu-linux"
        assert facts["os_version"] == "10.04"
        assert facts["ip_address"].startswith("10.")

    def test_base_directories(self, machine):
        for path in ("/etc", "/opt", "/tmp", "/var/log"):
            assert machine.fs.is_dir(path)

    def test_registered_on_network(self, world, machine):
        assert world.network.machine("web1") is machine

    def test_duplicate_hostname_rejected(self, world, machine):
        with pytest.raises(SimulationError):
            world.add_machine("web1")


class TestProcesses:
    def test_spawn_binds_ports(self, world, machine):
        process = machine.spawn_process("mysqld", listen_ports=[3306])
        assert process.is_running()
        assert world.network.can_connect("web1", 3306)

    def test_port_conflict_rejected(self, machine):
        machine.spawn_process("a", listen_ports=[80])
        with pytest.raises(SimulationError):
            machine.spawn_process("b", listen_ports=[80])

    def test_kill_releases_port(self, world, machine):
        process = machine.spawn_process("svc", listen_ports=[80])
        machine.kill_process(process.pid)
        assert process.state == ProcessState.STOPPED
        assert not world.network.can_connect("web1", 80)
        machine.spawn_process("svc2", listen_ports=[80])  # port is free

    def test_failed_process_refuses_connections(self, world, machine):
        process = machine.spawn_process("svc", listen_ports=[80])
        process.fail()
        assert process.state == ProcessState.FAILED
        with pytest.raises(ConnectionRefused):
            world.network.connect("web1", 80)

    def test_restart_process(self, world, machine):
        process = machine.spawn_process("svc", listen_ports=[80])
        process.fail()
        fresh = machine.restart_process(process.pid)
        assert fresh.is_running()
        assert fresh.restarts == 1
        assert world.network.can_connect("web1", 80)

    def test_find_process(self, machine):
        machine.spawn_process("a")
        newer = machine.spawn_process("a")
        assert machine.find_process("a") is newer
        assert machine.find_process("ghost") is None

    def test_kill_unknown_pid(self, machine):
        with pytest.raises(SimulationError):
            machine.kill_process(99999)

    def test_running_processes(self, machine):
        a = machine.spawn_process("a")
        machine.spawn_process("b")
        machine.kill_process(a.pid)
        assert [p.name for p in machine.running_processes()] == ["b"]


class TestSnapshots:
    def test_restore_stops_processes_and_reverts_fs(self, world, machine):
        machine.fs.write_file("/etc/app.conf", "v1")
        snap = machine.snapshot()
        machine.fs.write_file("/etc/app.conf", "v2")
        machine.spawn_process("svc", listen_ports=[80])
        machine.restore(snap)
        assert machine.fs.read_file("/etc/app.conf") == "v1"
        assert machine.running_processes() == []
        assert not world.network.can_connect("web1", 80)


class TestNetwork:
    def test_connect_unknown_endpoint(self, world, machine):
        with pytest.raises(ConnectionRefused):
            world.network.connect("web1", 9999)

    def test_unknown_machine(self, world):
        with pytest.raises(SimulationError):
            world.network.machine("ghost")

    def test_unregister_clears_endpoints(self, world, machine):
        machine.spawn_process("svc", listen_ports=[80])
        world.network.unregister_machine("web1")
        assert not world.network.has_machine("web1")
        with pytest.raises(ConnectionRefused):
            world.network.connect("web1", 80)

    def test_counters(self, world, machine):
        machine.spawn_process("svc", listen_ports=[80])
        world.network.can_connect("web1", 80)
        world.network.can_connect("web1", 81)
        assert world.network.connections_attempted == 2
        assert world.network.connections_refused == 1

    def test_machines_sorted(self, world, machine):
        world.add_machine("alpha")
        hostnames = [m.hostname for m in world.network.machines()]
        assert hostnames == sorted(hostnames)


class TestClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(5.0, "work")
        clock.advance(2.5, "work")
        assert clock.now == 7.5
        assert clock.elapsed_by_label() == {"work": 7.5}

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-1)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        clock.advance_to(5.0)  # no-op backwards
        assert clock.now == 10.0

    def test_reset(self):
        clock = SimClock()
        clock.advance(3)
        clock.reset()
        assert clock.now == 0.0
        assert clock.events() == []
