"""Fault injection and monitor resilience (chaos-style scenarios)."""

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.config import ConfigurationEngine
from repro.django import package_application, table1_apps
from repro.runtime import (
    DeploymentEngine,
    ProcessMonitor,
    provision_partial_spec,
)
from repro.sim import FaultInjector


@pytest.fixture
def system(registry, infrastructure, drivers):
    webapp = next(a for a in table1_apps() if a.name == "WebApp")
    key = package_application(webapp, registry, infrastructure)
    partial = provision_partial_spec(
        registry,
        PartialInstallSpec(
            [
                PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "chaos"}),
                PartialInstance("app", key, inside_id="node"),
                PartialInstance("web", as_key("Gunicorn 0.13"),
                                inside_id="node"),
                PartialInstance("db", as_key("MySQL 5.1"),
                                inside_id="node"),
            ]
        ),
        infrastructure,
    )
    spec = ConfigurationEngine(
        registry, verify_registry=False
    ).configure(partial).spec
    return DeploymentEngine(registry, infrastructure, drivers).deploy(spec)


class TestFaultInjector:
    def test_inject_fails_a_running_process(self, system):
        injector = FaultInjector(system, seed=1)
        records = injector.inject(1)
        assert len(records) == 1
        assert records[0].hostname == "chaos"

    def test_records_carry_instance_id(self, system):
        injector = FaultInjector(system, seed=5)
        records = injector.inject(3)
        assert records
        for record in records:
            assert record.instance_id in system.drivers
            driver = system.driver(record.instance_id)
            assert driver.process.name == record.process_name

    def test_deterministic_given_seed(self, registry, infrastructure,
                                      drivers, system):
        a = FaultInjector(system, seed=42).inject(3)
        # Restart the victims so a second injector sees the same world.
        monitor = ProcessMonitor(system)
        monitor.poll()
        b = FaultInjector(system, seed=42).inject(3)
        assert [r.process_name for r in a] == [r.process_name for r in b]

    def test_inject_zero(self, system):
        injector = FaultInjector(system, seed=0)
        assert injector.inject(0) == []

    def test_inject_caps_at_running_count(self, system):
        injector = FaultInjector(system, seed=0)
        records = injector.inject(10_000)
        # Every service failed, but no more than exist.
        assert 0 < len(records) <= len(system.drivers)


class TestMonitorResilience:
    def test_campaign_keeps_system_alive(self, system, infrastructure):
        """Twenty rounds of random failures: the monitor restarts every
        victim and the full stack ends healthy."""
        monitor = ProcessMonitor(system)
        monitor.generate_config()
        injector = FaultInjector(system, seed=7)
        summary = injector.campaign(monitor, rounds=20)
        assert summary["injected"] == summary["restarted"]
        assert summary["injected"] > 0
        # Everything is running again.
        from repro.drivers.library import ServiceDriver

        for driver in system.drivers.values():
            if isinstance(driver, ServiceDriver):
                assert driver.process is not None
                assert driver.process.is_running()
        # Core endpoints reachable.
        assert infrastructure.network.can_connect("chaos", 3306)
        assert infrastructure.network.can_connect("chaos", 8000)

    def test_restart_counters_accumulate(self, system):
        monitor = ProcessMonitor(system)
        injector = FaultInjector(system, seed=3)
        injector.campaign(monitor, rounds=10, max_failures_per_round=1)
        restarts = sum(
            d.process.restarts
            for d in system.drivers.values()
            if getattr(d, "process", None) is not None
        )
        assert restarts == len(monitor.events)
