"""The portability claim (Related Work section):

"We can take an application and deploy it on multiple platforms (e.g.
MacOSX and Linux) and in multiple configurations (e.g. development,
testing, and production) without significantly more work than is
required for a single configuration."

The same three-line OpenMRS partial spec deploys on every OS in the
library and with either Tomcat version -- only the machine key changes.
"""

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.runtime import DeploymentEngine

ALL_OS = (
    "Mac-OSX 10.5",
    "Mac-OSX 10.6",
    "Ubuntu-Linux 10.04",
    "Ubuntu-Linux 10.10",
    "Windows-XP 5.1",
)


def openmrs_on(os_key: str, tomcat_version: str) -> PartialInstallSpec:
    return PartialInstallSpec(
        [
            PartialInstance("server", as_key(os_key),
                            config={"hostname": "host-x"}),
            PartialInstance("tomcat", as_key(f"Tomcat {tomcat_version}"),
                            inside_id="server"),
            PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                            inside_id="tomcat"),
        ]
    )


@pytest.mark.parametrize("os_key", ALL_OS)
def test_openmrs_deploys_on_every_platform(os_key):
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    spec = ConfigurationEngine(registry).configure(
        openmrs_on(os_key, "6.0.18")
    ).spec
    system = DeploymentEngine(
        registry, infrastructure, standard_drivers()
    ).deploy(spec)
    assert system.is_deployed()
    assert spec["server"].key == as_key(os_key)


@pytest.mark.parametrize("tomcat_version", ["5.5", "6.0.18"])
def test_openmrs_deploys_in_either_container(tomcat_version):
    """OpenMRS's version-range inside dependency [5.5, 6.0.29) admits
    both library Tomcats."""
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    spec = ConfigurationEngine(registry).configure(
        openmrs_on("Ubuntu-Linux 10.04", tomcat_version)
    ).spec
    system = DeploymentEngine(
        registry, infrastructure, standard_drivers()
    ).deploy(spec)
    assert system.is_deployed()
    machine = infrastructure.network.machine("host-x")
    assert machine.fs.is_dir(f"/opt/tomcat-{tomcat_version}/webapps/openmrs")


def test_same_partial_spec_shape_everywhere():
    """The user-visible work is identical across platforms: specs differ
    only in the machine key (the paper's 'without significantly more
    work' claim, made precise)."""
    from repro.dsl import partial_to_json

    texts = [
        partial_to_json(openmrs_on(os_key, "6.0.18")) for os_key in ALL_OS
    ]
    normalised = {
        text.replace(as_key(os_key).display(), "OS")
        for text, os_key in zip(texts, ALL_OS)
    }
    assert len(normalised) == 1


def test_dev_and_production_configs_differ_only_in_values():
    """Development vs production: same structure, different config-port
    values (debug SQLite vs MySQL with a strong password)."""
    registry = standard_registry()
    engine = ConfigurationEngine(registry)
    development = PartialInstallSpec(
        [
            PartialInstance("server", as_key("Mac-OSX 10.6"),
                            config={"hostname": "laptop"}),
            PartialInstance("db", as_key("SQLite 3.7"),
                            inside_id="server"),
        ]
    )
    production = PartialInstallSpec(
        [
            PartialInstance("server", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "prod-db"}),
            PartialInstance(
                "db", as_key("MySQL 5.1"), inside_id="server",
                config={"password": "str0ng", "port": 3307},
            ),
        ]
    )
    dev_spec = engine.configure(development).spec
    prod_spec = engine.configure(production).spec
    assert dev_spec["db"].outputs["database"]["engine"] == "sqlite"
    assert prod_spec["db"].outputs["database"]["engine"] == "mysql"
    assert prod_spec["db"].outputs["database"]["port"] == 3307
    assert prod_spec["db"].outputs["database"]["password"] == "str0ng"
