"""Provisioning: server discovery and cloud fill-in."""

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import ProvisioningError
from repro.runtime import (
    discover_machine,
    machine_os_identity,
    provision_partial_spec,
)
from repro.sim import Infrastructure


class TestDiscovery:
    def test_discover_machine(self, infrastructure):
        machine = infrastructure.add_machine("known", "mac-osx", "10.6")
        facts = discover_machine(machine)
        assert facts["hostname"] == "known"
        assert facts["os_user_name"] == "root"


class TestOsIdentity:
    def test_from_static_config_defaults(self, registry):
        instance = PartialInstance("m", as_key("Mac-OSX 10.6"))
        assert machine_os_identity(registry, instance) == ("mac-osx", "10.6")

    def test_explicit_config_wins(self, registry):
        instance = PartialInstance(
            "m", as_key("Mac-OSX 10.6"), config={"os_version": "10.6.8"}
        )
        assert machine_os_identity(registry, instance) == (
            "mac-osx",
            "10.6.8",
        )

    def test_ubuntu(self, registry):
        instance = PartialInstance("m", as_key("Ubuntu-Linux 10.04"))
        assert machine_os_identity(registry, instance) == (
            "ubuntu-linux",
            "10.04",
        )


class TestProvisioning:
    def test_existing_machine_discovered(self, registry, infrastructure):
        infrastructure.add_machine("pre", "mac-osx", "10.6",
                                   os_user_name="deploy")
        partial = PartialInstallSpec(
            [
                PartialInstance(
                    "m", as_key("Mac-OSX 10.6"), config={"hostname": "pre"}
                )
            ]
        )
        out = provision_partial_spec(registry, partial, infrastructure)
        assert out["m"].config["os_user_name"] == "deploy"

    def test_named_machine_created(self, registry, infrastructure):
        partial = PartialInstallSpec(
            [
                PartialInstance(
                    "m", as_key("Ubuntu-Linux 10.04"),
                    config={"hostname": "fresh"},
                )
            ]
        )
        provision_partial_spec(registry, partial, infrastructure)
        machine = infrastructure.network.machine("fresh")
        assert machine.os.name == "ubuntu-linux"
        assert machine.os.version == "10.04"

    def test_cloud_provisioning_fills_hostname(self, registry, infrastructure):
        partial = PartialInstallSpec(
            [PartialInstance("m", as_key("Ubuntu-Linux 10.10"))]
        )
        out = provision_partial_spec(registry, partial, infrastructure)
        hostname = out["m"].config["hostname"]
        assert infrastructure.network.has_machine(hostname)
        assert infrastructure.clock.now >= 55  # provisioning latency

    def test_no_provider_error(self, registry):
        bare = Infrastructure()
        partial = PartialInstallSpec(
            [PartialInstance("m", as_key("Ubuntu-Linux 10.04"))]
        )
        with pytest.raises(ProvisioningError):
            provision_partial_spec(registry, partial, bare)

    def test_non_machines_untouched(self, registry, infrastructure):
        partial = PartialInstallSpec(
            [
                PartialInstance(
                    "m", as_key("Mac-OSX 10.6"), config={"hostname": "h"}
                ),
                PartialInstance("t", as_key("Tomcat 6.0.18"), inside_id="m"),
            ]
        )
        out = provision_partial_spec(registry, partial, infrastructure)
        assert out["t"].config == {}
        assert out["t"].inside_id == "m"

    def test_end_to_end_cloud_deploy(self, registry, infrastructure, drivers):
        """Cloud-provisioned OpenMRS: no hostnames anywhere."""
        from repro.config import ConfigurationEngine
        from repro.runtime import DeploymentEngine

        partial = PartialInstallSpec(
            [
                PartialInstance("server", as_key("Mac-OSX 10.6")),
                PartialInstance(
                    "tomcat", as_key("Tomcat 6.0.18"), inside_id="server"
                ),
                PartialInstance(
                    "openmrs", as_key("OpenMRS 1.8"), inside_id="tomcat"
                ),
            ]
        )
        partial = provision_partial_spec(registry, partial, infrastructure)
        spec = ConfigurationEngine(registry).configure(partial).spec
        system = DeploymentEngine(registry, infrastructure, drivers).deploy(
            spec
        )
        assert system.is_deployed()
