"""The event-driven parallel deployment scheduler.

Core properties: bit-reproducible schedules, measured makespan equal to
the critical-path bound under unbounded workers, worker/per-host bounds
respected, and -- the chaos-parity property -- a completed/failed/skipped
partition (and journal frontier) that does not depend on the worker
count.
"""

from __future__ import annotations

import itertools

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import DeploymentFailure
from repro.drivers import ACTIVE, INACTIVE, UNINSTALLED
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.runtime import DeploymentEngine, RetryPolicy
from repro.sim import FaultPlan, FaultyWorld, SimClock


def openmrs_partial():
    return PartialInstallSpec(
        [
            PartialInstance(
                "server",
                as_key("Mac-OSX 10.6"),
                config={"hostname": "demotest", "os_user_name": "root"},
            ),
            PartialInstance(
                "tomcat", as_key("Tomcat 6.0.18"), inside_id="server"
            ),
            PartialInstance(
                "openmrs", as_key("OpenMRS 1.8"), inside_id="tomcat"
            ),
        ]
    )


def build_world():
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    drivers = standard_drivers()
    spec = ConfigurationEngine(registry).configure(openmrs_partial()).spec
    engine = DeploymentEngine(registry, infrastructure, drivers)
    return infrastructure, engine, spec


def schedule_of(report):
    """The observable schedule: who ran what, when, for how long."""
    return [
        (a.instance_id, a.action, a.attempt, a.started_at, a.duration)
        for a in report.actions
    ]


class TestMeasuredMakespan:
    def test_unbounded_matches_critical_path_bound(self):
        """Acceptance criterion: with enough workers the measured
        makespan *is* the critical path, to float equality."""
        _, engine, spec = build_world()
        system = engine.deploy(spec, jobs=0)
        report = system.report
        assert report.makespan_seconds == pytest.approx(
            report.critical_path_seconds, abs=1e-6
        )
        assert system.is_deployed()

    def test_parallel_strictly_beats_sequential(self):
        """OpenMRS has independent siblings (jre/mysql/tomcat under one
        server), so parallelism must shave real simulated time."""
        _, engine, spec = build_world()
        system = engine.deploy(spec, jobs=4)
        report = system.report
        assert report.makespan_seconds < report.sequential_seconds
        assert report.jobs == 4

    def test_single_worker_degenerates_to_sequential(self):
        _, engine, spec = build_world()
        system = engine.deploy(spec, jobs=1)
        report = system.report
        assert report.makespan_seconds == pytest.approx(
            report.sequential_seconds, abs=1e-6
        )

    def test_matches_serial_counterfactual_prediction(self):
        """The serial engine predicts a critical-path makespan as a
        counterfactual; the parallel engine must *measure* the same
        number."""
        _, serial_engine, spec = build_world()
        predicted = serial_engine.deploy(spec).report.makespan_seconds
        _, parallel_engine, spec = build_world()
        measured = parallel_engine.deploy(spec, jobs=0).report
        assert measured.makespan_seconds == pytest.approx(
            predicted, abs=1e-6
        )

    def test_simulated_clock_advances_by_makespan(self):
        infrastructure, engine, spec = build_world()
        before = infrastructure.clock.now
        system = engine.deploy(spec, jobs=0)
        elapsed = infrastructure.clock.now - before
        assert elapsed == pytest.approx(
            system.report.makespan_seconds, abs=1e-6
        )


class TestDeterminism:
    @pytest.mark.parametrize("jobs", [0, 1, 2, 4])
    def test_bit_identical_schedules(self, jobs):
        """Acceptance criterion: repeated runs with the same ``jobs``
        produce identical (instance, action, start, duration) tuples."""
        _, engine_a, spec_a = build_world()
        first = engine_a.deploy(spec_a, jobs=jobs)
        _, engine_b, spec_b = build_world()
        second = engine_b.deploy(spec_b, jobs=jobs)
        assert schedule_of(first.report) == schedule_of(second.report)

    def test_end_state_independent_of_jobs(self):
        states = []
        for jobs in (None, 1, 2, 0):
            _, engine, spec = build_world()
            system = (
                engine.deploy(spec)
                if jobs is None
                else engine.deploy(spec, jobs=jobs)
            )
            states.append(system.states())
        assert all(s == states[0] for s in states[1:])

    def test_dependency_order_respected(self):
        _, engine, spec = build_world()
        system = engine.deploy(spec, jobs=0)
        starts = {
            a.instance_id: a.started_at
            for a in system.report.actions
            if a.action == "start"
        }
        installs = {
            a.instance_id: a.started_at
            for a in system.report.actions
            if a.action == "install" and a.attempt == 1
        }
        for instance in spec:
            for upstream in instance.upstream_ids():
                # A dependent cannot begin installing before every
                # upstream has *started* (reached ACTIVE).
                assert installs[instance.id] >= starts[upstream] - 1e-9


class TestConcurrencyBounds:
    @staticmethod
    def peak_concurrency(report):
        """Maximum number of simultaneously-running actions."""
        boundaries = []
        for action in report.actions:
            boundaries.append((action.started_at, 1))
            boundaries.append((action.started_at + action.duration, -1))
        boundaries.sort()
        live = peak = 0
        for _, delta in boundaries:
            live += delta
            peak = max(peak, live)
        return peak

    def test_global_worker_bound_respected(self):
        _, engine, spec = build_world()
        system = engine.deploy(spec, jobs=2)
        assert self.peak_concurrency(system.report) <= 2

    def test_per_host_bound_serialises_single_host_spec(self):
        """All OpenMRS instances live on one machine, so
        ``jobs_per_host=1`` forces a fully serial timeline even with
        unbounded global workers."""
        _, engine, spec = build_world()
        system = engine.deploy(spec, jobs=0, jobs_per_host=1)
        report = system.report
        assert self.peak_concurrency(report) == 1
        assert report.makespan_seconds == pytest.approx(
            report.sequential_seconds, abs=1e-6
        )

    def test_reverse_passes_accept_jobs(self):
        _, engine, spec = build_world()
        system = engine.deploy(spec, jobs=0)
        engine.shutdown(system, jobs=0)
        assert set(system.states().values()) == {INACTIVE}
        engine.start(system, jobs=0)
        engine.uninstall(system, jobs=0)
        assert set(system.states().values()) == {UNINSTALLED}


class TestChaosParity:
    """Satellite: the completed/failed/skipped partition and the journal
    frontier must be identical for ``jobs=1`` and ``jobs=4`` under the
    same seeded fault plan."""

    @staticmethod
    def chaos_outcome(jobs, seed, rate):
        infrastructure, engine, spec = build_world()
        plan = FaultPlan.seeded(seed, rate, max_failures=2)
        FaultyWorld(infrastructure, plan)
        policy = RetryPolicy(max_attempts=2, backoff_base=0.1)
        try:
            system = engine.deploy(spec, policy=policy, jobs=jobs)
            return ("deployed", system.states(), None)
        except DeploymentFailure as failure:
            partition = (
                frozenset(failure.completed),
                frozenset(failure.failed),
                frozenset(failure.skipped),
            )
            return ("failed", partition, failure.journal.states())

    @pytest.mark.parametrize(
        "seed,rate", list(itertools.product([1, 2, 3, 5], [0.25, 0.6]))
    )
    def test_partition_independent_of_worker_count(self, seed, rate):
        assert self.chaos_outcome(1, seed, rate) == self.chaos_outcome(
            4, seed, rate
        )


class TestParallelFailureSemantics:
    def test_only_dependent_subtree_skipped(self):
        """Unlike the serial fail-fast engine, a parallel pass finishes
        independent branches: mysql's failure skips openmrs only."""
        infrastructure, engine, spec = build_world()
        plan = FaultPlan().on("driver:mysql:start", times=10)
        FaultyWorld(infrastructure, plan)
        policy = RetryPolicy(max_attempts=2, backoff_base=0.1)
        with pytest.raises(DeploymentFailure) as excinfo:
            engine.deploy(spec, policy=policy, jobs=4)
        failure = excinfo.value
        assert failure.failed == {"mysql"}
        assert set(failure.skipped) == {"openmrs"}
        assert failure.completed == {"server", "jre", "tomcat"}
        # The failed instance stopped mid-path (installed, not started);
        # its dependents were never acted on.
        system = failure.system
        assert system.state_of("mysql") == INACTIVE
        assert system.state_of("openmrs") == UNINSTALLED
        assert system.state_of("tomcat") == ACTIVE
        # Journal agrees.
        journal = failure.journal
        assert set(journal.failed) == {"mysql"}
        assert journal.skipped == {"openmrs"}
        assert journal.completed == failure.completed

    def test_journal_entries_ordered_by_completion_time(self):
        infrastructure, engine, spec = build_world()
        from repro.runtime import DeploymentJournal

        journal = DeploymentJournal(spec)
        engine.deploy(spec, journal=journal, jobs=0)
        stamps = [entry.timestamp for entry in journal.entries]
        assert stamps == sorted(stamps)

    def test_resume_readopts_parallel_frontier(self):
        """A resume (itself parallel) picks up exactly the remaining
        subtree and converges to the fault-free end state."""
        infrastructure, engine, spec = build_world()
        plan = FaultPlan().on("driver:mysql:start", times=3)
        FaultyWorld(infrastructure, plan)
        with pytest.raises(DeploymentFailure) as excinfo:
            engine.deploy(
                spec,
                policy=RetryPolicy(max_attempts=2, backoff_base=0.1),
                jobs=4,
            )
        journal = excinfo.value.journal
        system = engine.resume(
            journal,
            policy=RetryPolicy(max_attempts=4, backoff_base=0.1),
            jobs=4,
        )
        assert system.is_deployed()
        assert journal.is_complete()
        assert not journal.failed and not journal.skipped
        # Only the unfinished subtree was re-driven.
        resumed = {a.instance_id for a in system.report.actions}
        assert "server" not in resumed and "tomcat" not in resumed
        assert {"mysql", "openmrs"} <= resumed

    def test_report_caches_survive_parallel_sort(self):
        """Satellite: actions_for / retries are index-backed; the
        post-pass sort must invalidate and rebuild them correctly."""
        infrastructure, engine, spec = build_world()
        plan = FaultPlan.seeded(2, 0.6, max_failures=2)
        FaultyWorld(infrastructure, plan)
        policy = RetryPolicy(max_attempts=4, backoff_base=0.1)
        system = engine.deploy(spec, policy=policy, jobs=4)
        report = system.report
        for instance in spec:
            expected = [
                a for a in report.actions if a.instance_id == instance.id
            ]
            assert report.actions_for(instance.id) == expected
        assert report.retries == sum(
            1 for a in report.actions if not a.succeeded
        )
        assert report.total_backoff_seconds == pytest.approx(
            sum(a.backoff_seconds for a in report.actions)
        )


class TestEventClock:
    """Satellite: the SimClock event-queue mode and the time-sorted
    event log for interleaved parallel spans."""

    def test_schedule_pops_in_time_order(self):
        clock = SimClock()
        clock.schedule(30.0, label="late")
        clock.schedule(10.0, label="early")
        clock.schedule(20.0, label="middle")
        order = []
        while (event := clock.advance_to_next_event()) is not None:
            order.append((event.label, clock.now))
        assert order == [("early", 10.0), ("middle", 20.0), ("late", 30.0)]

    def test_same_instant_ties_break_by_schedule_order(self):
        clock = SimClock()
        clock.schedule(5.0, label="first")
        clock.schedule(5.0, label="second")
        assert clock.advance_to_next_event().label == "first"
        assert clock.advance_to_next_event().label == "second"

    def test_schedule_clamps_to_now(self):
        clock = SimClock()
        clock.advance(100.0)
        event = clock.schedule(7.0, label="past")
        assert event.at == 100.0

    def test_events_sorted_by_start_across_overlapping_spans(self):
        """Regression: two overlapping worker spans log out of order;
        ``events()`` must merge them by start time."""
        clock = SimClock()
        clock.advance(10.0, "setup")
        with clock.overlapping(10.0):
            clock.advance(50.0, "worker-a")   # logged at start=10
        with clock.overlapping(10.0):
            clock.advance(5.0, "worker-b")    # logged at start=10
            clock.advance(5.0, "worker-b2")   # logged at start=15
        starts = [event.start for event in clock.events()]
        assert starts == sorted(starts)
        labels = [event.label for event in clock.events()]
        # worker-b2 (start 15) must sort after both start-10 spans,
        # despite being appended after worker-a's start-10 record.
        assert labels.index("worker-b2") > labels.index("worker-a")

    def test_elapsed_by_label_sums_interleaved_events(self):
        clock = SimClock()
        with clock.overlapping(0.0):
            clock.advance(3.0, "download")
            clock.advance(2.0, "install")
        with clock.overlapping(0.0):
            clock.advance(4.0, "download")
        totals = clock.elapsed_by_label()
        assert totals["download"] == pytest.approx(7.0)
        assert totals["install"] == pytest.approx(2.0)

    def test_overlapping_span_restores_now(self):
        clock = SimClock()
        clock.advance(8.0)
        with clock.overlapping(2.0) as span:
            clock.advance(10.0, "work")
        assert span.start == 2.0
        assert span.end == 12.0
        assert span.elapsed == 10.0
        assert clock.now == 8.0

    def test_reset_clears_queue(self):
        clock = SimClock()
        clock.schedule(5.0)
        clock.reset()
        assert clock.pending_events() == 0
        assert clock.advance_to_next_event() is None
