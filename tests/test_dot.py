"""DOT rendering of hypergraphs and full specifications."""

import pytest

from repro.config import ConfigurationEngine, generate_graph
from repro.dsl import graph_to_dot, spec_to_dot


@pytest.fixture
def graph(registry, openmrs_partial):
    return generate_graph(registry, openmrs_partial)


@pytest.fixture
def spec(registry, openmrs_partial):
    return ConfigurationEngine(registry).configure(openmrs_partial).spec


class TestGraphToDot:
    def test_all_nodes_present(self, graph):
        dot = graph_to_dot(graph)
        for node_id in ("server", "tomcat", "openmrs", "jdk", "jre",
                        "mysql"):
            assert f'"{node_id}"' in dot

    def test_partial_nodes_doubled(self, graph):
        dot = graph_to_dot(graph)
        server_line = next(
            l for l in dot.splitlines()
            if l.strip().startswith('"server" [')
        )
        assert "peripheries=2" in server_line
        jdk_line = next(
            l for l in dot.splitlines() if l.strip().startswith('"jdk" [')
        )
        assert "peripheries" not in jdk_line

    def test_hyperedges_get_junctions(self, graph):
        dot = graph_to_dot(graph)
        # Two multi-target env edges -> two junction points.
        assert dot.count("shape=point") == 2
        assert '"tomcat" -> "xor_' in dot or '"xor_' in dot

    def test_edge_kinds_styled(self, graph):
        dot = graph_to_dot(graph)
        assert 'label="inside"' in dot
        assert 'label="env"' in dot
        assert 'label="peer"' in dot

    def test_valid_dot_shape(self, graph):
        dot = graph_to_dot(graph)
        assert dot.startswith("digraph ")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")


class TestSpecToDot:
    def test_machine_clusters(self, spec):
        dot = spec_to_dot(spec)
        assert "subgraph cluster_0" in dot
        assert 'label="server"' in dot

    def test_links_rendered(self, spec):
        dot = spec_to_dot(spec)
        assert '"openmrs" -> "tomcat"' in dot
        assert '"openmrs" -> "mysql"' in dot

    def test_multi_machine_clusters(self, registry, infrastructure):
        from repro.core import PartialInstallSpec, PartialInstance, as_key
        from repro.runtime import provision_partial_spec

        partial = provision_partial_spec(
            registry,
            PartialInstallSpec(
                [
                    PartialInstance("m1", as_key("Ubuntu-Linux 10.04"),
                                    config={"hostname": "a"}),
                    PartialInstance("m2", as_key("Ubuntu-Linux 10.04"),
                                    config={"hostname": "b"}),
                    PartialInstance("db", as_key("MySQL 5.1"),
                                    inside_id="m2"),
                    PartialInstance("tc", as_key("Tomcat 6.0.18"),
                                    inside_id="m1"),
                ]
            ),
            infrastructure,
        )
        spec = ConfigurationEngine(registry).configure(partial).spec
        dot = spec_to_dot(spec)
        assert "cluster_0" in dot and "cluster_1" in dot


class TestCliDot:
    def test_graph_dot_flag(self, tmp_path):
        import json

        from repro.cli import main
        import io

        path = tmp_path / "p.json"
        path.write_text(json.dumps([
            {"id": "server", "key": "Mac-OSX 10.6",
             "config_port": {"hostname": "h"}},
            {"id": "tomcat", "key": "Tomcat 6.0.18",
             "inside": {"id": "server"}},
        ]))
        out = io.StringIO()
        code = main(["graph", "--dot", str(path)], out=out)
        assert code == 0
        assert out.getvalue().startswith("digraph ")
