"""The shipped tutorial stack (examples/stacks) stays working.

docs/TUTORIAL.md walks through exactly these files; this test keeps the
documentation honest.
"""

import io
import pathlib

import pytest

from repro.cli import main

STACKS = pathlib.Path(__file__).resolve().parent.parent / "examples" / "stacks"


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def shop_files():
    dsl = STACKS / "shop.engage"
    spec = STACKS / "shop.json"
    assert dsl.is_file() and spec.is_file()
    return str(dsl), str(spec)


def test_tutorial_check(shop_files):
    dsl, _ = shop_files
    code, output = run(["check", "--types", dsl])
    assert code == 0
    assert "well-formed" in output


def test_tutorial_graph(shop_files):
    dsl, spec = shop_files
    code, output = run(["graph", "--types", dsl, spec])
    assert code == 0
    assert "3 instance nodes" in output
    assert "fastqueue" in output


def test_tutorial_deploy(shop_files, tmp_path):
    dsl, spec = shop_files
    code, output = run(["deploy", "--types", dsl, spec])
    assert code == 0
    assert "orders" in output and "active" in output


def test_tutorial_parallel_deploy_speedup():
    """The --jobs walkthrough: same end state, measured makespan lands
    below the sequential total (the numbers the tutorial quotes)."""
    spec = STACKS / "openmrs.json"
    assert spec.is_file()
    code, serial_output = run(["deploy", str(spec)])
    assert code == 0
    assert "openmrs" in serial_output and "active" in serial_output
    code, parallel_output = run(["deploy", str(spec), "--jobs", "4"])
    assert code == 0
    assert "parallel deploy (jobs=4)" in parallel_output
    assert "makespan 361.5s vs sequential 515.2s" in parallel_output
    assert "speedup 1.43x" in parallel_output


def test_tutorial_configure_wires_queue(shop_files, tmp_path):
    import json

    dsl, spec = shop_files
    out_file = tmp_path / "full.json"
    code, _ = run(["configure", "--types", dsl, spec, "-o", str(out_file)])
    assert code == 0
    entries = {e["id"]: e for e in json.loads(out_file.read_text())}
    orders = entries["orders"]
    assert orders["input_ports"]["queue"]["host"] == "shop-1"
    assert orders["input_ports"]["queue"]["port"] == 5672
    assert orders["output_ports"]["url"] == "http://shop-1:9000/orders"
