"""Focused tests for smaller corners of the public surface."""

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.runtime import DeploymentEngine


class TestDeploymentReportHelpers:
    def test_actions_for(self, registry, infrastructure, drivers,
                         openmrs_partial):
        spec = ConfigurationEngine(registry).configure(openmrs_partial).spec
        system = DeploymentEngine(
            registry, infrastructure, drivers
        ).deploy(spec)
        mysql_actions = system.report.actions_for("mysql")
        assert [a.action for a in mysql_actions] == ["install", "start"]
        assert all(a.instance_id == "mysql" for a in mysql_actions)

    def test_action_timestamps_monotonic(self, registry, infrastructure,
                                         drivers, openmrs_partial):
        spec = ConfigurationEngine(registry).configure(openmrs_partial).spec
        system = DeploymentEngine(
            registry, infrastructure, drivers
        ).deploy(spec)
        times = [a.started_at for a in system.report.actions]
        assert times == sorted(times)
        assert all(a.duration >= 0 for a in system.report.actions)


class TestNetworkEndpoints:
    def test_endpoints_listing(self, infrastructure):
        machine = infrastructure.add_machine("e1")
        machine.spawn_process("svc", listen_ports=[80, 8080])
        endpoints = infrastructure.network.endpoints()
        assert [(e.hostname, e.port) for e in endpoints] == [
            ("e1", 80), ("e1", 8080),
        ]
        assert "svc" in str(endpoints[0])

    def test_rebind_after_failure_allowed(self, infrastructure):
        machine = infrastructure.add_machine("e2")
        process = machine.spawn_process("svc", listen_ports=[80])
        process.fail()
        # A failed listener no longer owns the port.
        machine.spawn_process("svc2", listen_ports=[80])
        assert infrastructure.network.connect("e2", 80).name == "svc2"


class TestClockEventLog:
    def test_labels_partition_time(self, infrastructure):
        clock = infrastructure.clock
        clock.advance(5, "a")
        clock.advance(3, "b")
        clock.advance(2, "a")
        totals = clock.elapsed_by_label()
        assert totals == {"a": 7, "b": 3}
        assert clock.now == 10
        events = clock.events()
        assert [e.label for e in events] == ["a", "b", "a"]
        assert events[1].start == 5


class TestProviderSelection:
    def test_explicit_provider_argument(self, registry):
        from repro.runtime import provision_partial_spec
        from repro.sim import Infrastructure

        infrastructure = Infrastructure()
        slow = infrastructure.add_provider("slow", provision_seconds=100)
        fast = infrastructure.add_provider("fast", provision_seconds=5)
        partial = PartialInstallSpec(
            [PartialInstance("m", as_key("Ubuntu-Linux 10.04"))]
        )
        out = provision_partial_spec(
            registry, partial, infrastructure, provider=fast
        )
        hostname = out["m"].config["hostname"]
        assert hostname.startswith("fast-node-")
        assert infrastructure.clock.now == pytest.approx(5)


class TestRegistryCaching:
    def test_effective_is_memoised(self, registry):
        key = as_key("Tomcat 6.0.18")
        assert registry.effective(key) is registry.effective(key)

    def test_raw_differs_from_effective_for_subtypes(self, registry):
        key = as_key("Mac-OSX 10.6")
        raw = registry.raw(key)
        effective = registry.effective(key)
        assert not raw.output_ports  # inherited only
        assert effective.output_ports  # flattened in


class TestConfigureEdges:
    def test_empty_partial_spec(self, registry):
        engine = ConfigurationEngine(registry)
        result = engine.configure(PartialInstallSpec())
        assert len(result.spec) == 0

    def test_machine_only_partial(self, registry):
        engine = ConfigurationEngine(registry)
        partial = PartialInstallSpec(
            [PartialInstance("m", as_key("Mac-OSX 10.6"),
                             config={"hostname": "solo"})]
        )
        result = engine.configure(partial)
        assert result.spec.ids() == ["m"]
        assert result.spec["m"].outputs["host"]["hostname"] == "solo"

    def test_sequential_encoding_end_to_end(self, registry,
                                            openmrs_partial):
        from repro.sat import ExactlyOneEncoding

        engine = ConfigurationEngine(
            registry, encoding=ExactlyOneEncoding.SEQUENTIAL,
            verify_registry=False,
        )
        result = engine.configure(openmrs_partial)
        assert {"server", "tomcat", "openmrs", "mysql"} <= set(
            result.deployed_ids
        )
