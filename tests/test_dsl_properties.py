"""Property-based round-trip tests for the DSL (hypothesis)."""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BOOL,
    HOSTNAME,
    INT,
    PATH,
    STRING,
    TCP_PORT,
    RecordType,
    config_ref,
    define,
)
from repro.core.values import Format, Lit, RecordExpr
from repro.dsl import (
    format_expr,
    format_module,
    format_type,
    lower_module,
    parse_module,
    tokenize,
)

port_names = st.text(
    alphabet=string.ascii_lowercase, min_size=1, max_size=8
).map(lambda s: "p_" + s)

scalars = st.sampled_from([STRING, INT, BOOL, PATH, HOSTNAME, TCP_PORT])


def value_for(port_type):
    if port_type is INT:
        return st.integers(min_value=-1000, max_value=1000)
    if port_type is TCP_PORT:
        return st.integers(min_value=0, max_value=65535)
    if port_type is BOOL:
        return st.booleans()
    return st.text(
        alphabet=string.ascii_letters + string.digits + " _-/.",
        max_size=12,
    )


resource_specs = st.dictionaries(
    port_names, scalars, min_size=1, max_size=5
).flatmap(
    lambda ports: st.tuples(
        st.just(ports),
        st.tuples(*[value_for(t) for t in ports.values()])
        if ports
        else st.just(()),
    )
)


@settings(max_examples=60, deadline=None)
@given(resource_specs)
def test_resource_type_roundtrip(spec):
    """pretty -> parse -> lower is the identity on generated types."""
    ports, values = spec
    builder = define("Gen", "1.0", driver="service")
    for (name, port_type), value in zip(ports.items(), values):
        builder.config(name, port_type, value)
    first = ports and next(iter(ports))
    if first:
        builder.output("echo", ports[first], config_ref(first))
    original = builder.build()

    text = format_module([original])
    again = lower_module(parse_module(text))
    assert again == [original]


@settings(max_examples=60, deadline=None)
@given(
    st.dictionaries(port_names, scalars, min_size=1, max_size=4)
)
def test_record_type_roundtrip(fields):
    record = RecordType.of(**fields)
    text = format_type(record)
    # Parse via a resource wrapper since types are not standalone.
    module = parse_module(
        f'resource "R" 1 {{ input r: {text} }}'
    )
    lowered = lower_module(module)[0]
    assert lowered.input_port("r").type == record


@settings(max_examples=80, deadline=None)
@given(
    st.text(
        alphabet=string.ascii_letters + string.digits + " _-./:{}",
        max_size=20,
    )
)
def test_string_literal_roundtrip(text):
    """Escaping in the pretty-printer survives the lexer."""
    rendered = format_expr(Lit(text))
    tokens = tokenize(rendered)
    assert tokens[0].text == text


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        port_names,
        st.integers(min_value=0, max_value=9999),
        min_size=1,
        max_size=3,
    )
)
def test_record_expr_roundtrip_via_resource(fields):
    expr = RecordExpr.of(**{k: Lit(v) for k, v in fields.items()})
    record_type = RecordType.of(**{k: INT for k in fields})
    original = (
        define("R", "1")
        .output("o", record_type, expr)
        .build()
    )
    again = lower_module(parse_module(format_module([original])))[0]
    assert again.output_port("o").value == expr


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from("ab{}x "), max_size=12).map("".join))
def test_format_template_roundtrip(template):
    """Templates with braces survive pretty-printing (escaped quotes and
    backslashes; braces are format placeholders and pass through)."""
    expr = Format.of(template)
    rendered = format_expr(expr)
    tokens = tokenize(rendered)
    # format("<template>") -- the template is the second token.
    assert tokens[2].text == template
