"""Port types: the scalar lattice, records, lists, and value checking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    BOOL,
    FLOAT,
    HOSTNAME,
    INT,
    PASSWORD,
    PATH,
    STRING,
    TCP_PORT,
    Binding,
    ListType,
    Port,
    RecordType,
    scalar_by_name,
)
from repro.core.errors import PortError, PortTypeError
from repro.core.ports import neutral_value

SCALARS = [STRING, INT, FLOAT, BOOL, PATH, HOSTNAME, TCP_PORT, PASSWORD]


class TestScalarSubtyping:
    def test_reflexive(self):
        for scalar in SCALARS:
            assert scalar.is_subtype_of(scalar)

    @pytest.mark.parametrize(
        "sub, sup",
        [
            (PATH, STRING),
            (HOSTNAME, STRING),
            (PASSWORD, STRING),
            (TCP_PORT, INT),
            (INT, FLOAT),
            (TCP_PORT, FLOAT),  # transitive
        ],
    )
    def test_lattice_edges(self, sub, sup):
        assert sub.is_subtype_of(sup)
        assert not sup.is_subtype_of(sub)

    def test_unrelated(self):
        assert not BOOL.is_subtype_of(INT)
        assert not STRING.is_subtype_of(FLOAT)
        assert not HOSTNAME.is_subtype_of(PATH)


class TestScalarAccepts:
    def test_string_like(self):
        for scalar in (STRING, PATH, HOSTNAME, PASSWORD):
            assert scalar.accepts("x")
            assert not scalar.accepts(3)

    def test_int(self):
        assert INT.accepts(5)
        assert not INT.accepts(5.5)
        assert not INT.accepts(True)  # bool is not an int here

    def test_tcp_port_bounds(self):
        assert TCP_PORT.accepts(0)
        assert TCP_PORT.accepts(65535)
        assert not TCP_PORT.accepts(65536)
        assert not TCP_PORT.accepts(-1)

    def test_float_accepts_int(self):
        assert FLOAT.accepts(3)
        assert FLOAT.accepts(3.5)
        assert not FLOAT.accepts(True)

    def test_bool(self):
        assert BOOL.accepts(True)
        assert not BOOL.accepts(1)


class TestRecordType:
    def test_width_subtyping(self):
        wide = RecordType.of(a=STRING, b=INT)
        narrow = RecordType.of(a=STRING)
        assert wide.is_subtype_of(narrow)
        assert not narrow.is_subtype_of(wide)

    def test_depth_subtyping(self):
        sub = RecordType.of(p=TCP_PORT)
        sup = RecordType.of(p=INT)
        assert sub.is_subtype_of(sup)
        assert not sup.is_subtype_of(sub)

    def test_not_subtype_of_scalar(self):
        assert not RecordType.of(a=STRING).is_subtype_of(STRING)

    def test_accepts_exact_fields(self):
        record = RecordType.of(host=HOSTNAME, port=TCP_PORT)
        assert record.accepts({"host": "h", "port": 80})
        assert not record.accepts({"host": "h"})  # missing field
        assert not record.accepts({"host": "h", "port": 80, "x": 1})  # extra
        assert not record.accepts({"host": "h", "port": "80"})  # wrong type
        assert not record.accepts("not a mapping")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(PortError):
            RecordType((("a", STRING), ("a", INT)))

    def test_str(self):
        assert str(RecordType.of(a=STRING)) == "{a: string}"


class TestListType:
    def test_accepts(self):
        t = ListType(STRING)
        assert t.accepts(["a", "b"])
        assert t.accepts(())
        assert not t.accepts(["a", 3])
        assert not t.accepts("abc")

    def test_covariance(self):
        assert ListType(TCP_PORT).is_subtype_of(ListType(INT))
        assert not ListType(INT).is_subtype_of(ListType(TCP_PORT))


class TestScalarByName:
    def test_known(self):
        assert scalar_by_name("tcp_port") is TCP_PORT
        assert scalar_by_name("hostname") is HOSTNAME

    def test_unknown(self):
        with pytest.raises(PortError):
            scalar_by_name("complex")


class TestPort:
    def test_valid_names(self):
        Port("manager_port", TCP_PORT)
        Port("a1", STRING)

    @pytest.mark.parametrize("bad", ["", "with space", "a-b", "a.b"])
    def test_invalid_names(self, bad):
        with pytest.raises(PortError):
            Port(bad, STRING)

    def test_check_value(self):
        port = Port("p", TCP_PORT)
        port.check_value(80)
        with pytest.raises(PortTypeError):
            port.check_value(-1)

    def test_default_binding_dynamic(self):
        assert Port("p", STRING).binding == Binding.DYNAMIC


class TestNeutralValue:
    @pytest.mark.parametrize(
        "port_type, expected",
        [
            (STRING, ""),
            (PATH, ""),
            (INT, 0),
            (TCP_PORT, 0),
            (FLOAT, 0.0),
            (BOOL, False),
        ],
    )
    def test_scalars(self, port_type, expected):
        assert neutral_value(port_type) == expected

    def test_list(self):
        assert neutral_value(ListType(STRING)) == []

    def test_record(self):
        t = RecordType.of(host=HOSTNAME, port=TCP_PORT)
        assert neutral_value(t) == {"host": "", "port": 0}

    def test_neutral_inhabits_type(self):
        for port_type in SCALARS + [
            ListType(INT),
            RecordType.of(a=STRING, b=BOOL),
        ]:
            assert port_type.accepts(neutral_value(port_type))


@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.sampled_from(SCALARS),
        min_size=1,
        max_size=4,
    )
)
def test_record_subtype_reflexive_property(fields):
    record = RecordType.of(**fields)
    assert record.is_subtype_of(record)
    assert record.accepts(neutral_value(record))
