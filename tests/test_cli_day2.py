"""The day-2 CLI commands: watch, inject-fault, upgrade on bundles."""

import io
import json

import pytest

from repro.cli import main

STACK_DSL = """
resource "MiniCache" 1.0 driver "service" {
  inside "Server" { host -> host }
  input host: { hostname: hostname, ip_address: string,
                os_user_name: string }
  config port: tcp_port = 7070
  output kv: { host: hostname, port: tcp_port } =
    { host = input.host.hostname, port = config.port }
}
"""

STACK_V2_DSL = """
resource "MiniCache" 2.0 driver "service" {
  inside "Server" { host -> host }
  input host: { hostname: hostname, ip_address: string,
                os_user_name: string }
  config port: tcp_port = 7070
  output kv: { host: hostname, port: tcp_port } =
    { host = input.host.hostname, port = config.port }
}
"""


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def spec_json(version):
    return json.dumps(
        [
            {"id": "box", "key": "Ubuntu-Linux 10.04",
             "config_port": {"hostname": "day2"}},
            {"id": "cache", "key": f"MiniCache {version}",
             "inside": {"id": "box"}},
        ]
    )


@pytest.fixture
def bundle(tmp_path):
    dsl = tmp_path / "stack.engage"
    dsl.write_text(STACK_DSL)
    spec = tmp_path / "spec.json"
    spec.write_text(spec_json("1.0"))
    bundle_path = tmp_path / "bundle.json"
    code, _ = run(
        ["deploy", "--types", str(dsl), str(spec), "--save",
         str(bundle_path)]
    )
    assert code == 0
    return tmp_path, str(bundle_path)


class TestInjectFault:
    def test_fail_then_watch_repairs(self, bundle):
        _, bundle_path = bundle
        code, output = run(["inject-fault", bundle_path, "cache"])
        assert code == 0
        assert "failed process" in output

        code, output = run(["watch", bundle_path])
        assert code == 0
        assert "restarted" in output

        code, output = run(["status", bundle_path])
        assert code == 0
        assert "active" in output

    def test_unknown_instance(self, bundle):
        _, bundle_path = bundle
        code, output = run(["inject-fault", bundle_path, "ghost"])
        assert code == 2

    def test_machine_has_no_process(self, bundle):
        _, bundle_path = bundle
        code, output = run(["inject-fault", bundle_path, "box"])
        assert code == 2

    def test_watch_when_healthy(self, bundle):
        _, bundle_path = bundle
        code, output = run(["watch", bundle_path])
        assert code == 0
        assert "healthy" in output


class TestUpgrade:
    def test_in_place_upgrade(self, bundle, tmp_path):
        directory, bundle_path = bundle
        v2 = directory / "v2.engage"
        v2.write_text(STACK_V2_DSL)
        new_spec = directory / "spec2.json"
        new_spec.write_text(spec_json("2.0"))

        code, output = run(
            ["upgrade", bundle_path, str(new_spec),
             "--types", str(v2), "--strategy", "in_place"]
        )
        assert code == 0
        assert "upgrade succeeded" in output
        assert "'cache'" in output

        code, output = run(["status", bundle_path])
        assert code == 0
        assert "MiniCache 2.0" in output

    def test_replace_upgrade(self, bundle):
        directory, bundle_path = bundle
        v2 = directory / "v2.engage"
        v2.write_text(STACK_V2_DSL)
        new_spec = directory / "spec2.json"
        new_spec.write_text(spec_json("2.0"))
        code, output = run(
            ["upgrade", bundle_path, str(new_spec), "--types", str(v2)]
        )
        assert code == 0
        code, output = run(["status", bundle_path])
        assert "MiniCache 2.0" in output

    def test_retyping_original_file_tolerated(self, bundle):
        """Passing the original DSL file again must not explode on
        duplicate keys."""
        directory, bundle_path = bundle
        original = directory / "stack.engage"
        v2 = directory / "v2.engage"
        v2.write_text(STACK_V2_DSL)
        new_spec = directory / "spec2.json"
        new_spec.write_text(spec_json("2.0"))
        code, output = run(
            ["upgrade", bundle_path, str(new_spec),
             "--types", str(original), "--types", str(v2)]
        )
        assert code == 0
