"""Unsatisfiability explanation (MUS over partial-spec facts)."""

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import UnsatisfiableError
from repro.config import (
    ConfigurationEngine,
    explain_message,
    explain_unsat,
)


def pinned_java_conflict(openmrs_partial):
    openmrs_partial.add(
        PartialInstance("jdk_pin", as_key("JDK 1.6"), inside_id="server")
    )
    openmrs_partial.add(
        PartialInstance("jre_pin", as_key("JRE 1.6"), inside_id="server")
    )
    return openmrs_partial


class TestExplainUnsat:
    def test_satisfiable_returns_none(self, registry, openmrs_partial):
        assert explain_unsat(registry, openmrs_partial) is None
        assert explain_message(registry, openmrs_partial) is None

    def test_conflict_core_found(self, registry, openmrs_partial):
        partial = pinned_java_conflict(openmrs_partial)
        explanation = explain_unsat(registry, partial)
        assert explanation is not None
        # The two pinned runtimes are in the core; the innocent openmrs
        # instance (removable without restoring satisfiability? it is
        # not needed for the conflict) is not.
        assert {"jdk_pin", "jre_pin"} <= set(explanation.conflicting_ids)
        assert "openmrs" not in explanation.conflicting_ids

    def test_core_is_minimal(self, registry, openmrs_partial):
        """Dropping any single member of the core restores
        satisfiability -- the definition of minimality."""
        partial = pinned_java_conflict(openmrs_partial)
        explanation = explain_unsat(registry, partial)
        core = set(explanation.conflicting_ids)
        for victim in core:
            reduced = PartialInstallSpec(
                [
                    instance
                    for instance in partial
                    if instance.id != victim
                    # keep inside-children consistent: drop orphans too
                    and (instance.inside_id != victim)
                ]
            )
            # Dropping tomcat orphans openmrs; patch it out as well.
            survivors = {i.id for i in reduced}
            reduced = PartialInstallSpec(
                [
                    instance
                    for instance in reduced
                    if instance.inside_id is None
                    or instance.inside_id in survivors
                ]
            )
            assert explain_unsat(registry, reduced) is None, victim

    def test_related_edges_reported(self, registry, openmrs_partial):
        partial = pinned_java_conflict(openmrs_partial)
        explanation = explain_unsat(registry, partial)
        sources = {source for source, _ in explanation.related_edges}
        assert "tomcat" in sources

    def test_message_names_keys(self, registry, openmrs_partial):
        partial = pinned_java_conflict(openmrs_partial)
        message = explain_message(registry, partial)
        assert "JDK 1.6" in message
        assert "JRE 1.6" in message
        assert "exactly one" in message

    def test_engine_error_carries_explanation(
        self, registry, openmrs_partial
    ):
        partial = pinned_java_conflict(openmrs_partial)
        with pytest.raises(UnsatisfiableError) as excinfo:
            ConfigurationEngine(registry).configure(partial)
        assert "cannot be deployed together" in str(excinfo.value)

    def test_engine_explanation_can_be_disabled(
        self, registry, openmrs_partial
    ):
        partial = pinned_java_conflict(openmrs_partial)
        engine = ConfigurationEngine(
            registry, verify_registry=False, explain_unsat=False
        )
        with pytest.raises(UnsatisfiableError) as excinfo:
            engine.configure(partial)
        assert "cannot be deployed together" not in str(excinfo.value)

    def test_webserver_conflict(self, registry, infrastructure):
        from repro.django import package_application, table1_apps

        app = table1_apps()[0]
        key = package_application(app, registry, infrastructure)
        partial = PartialInstallSpec(
            [
                PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "n"}),
                PartialInstance("app", key, inside_id="node"),
                PartialInstance("g", as_key("Gunicorn 0.13"),
                                inside_id="node"),
                PartialInstance("a", as_key("Apache-HTTPD 2.2"),
                                inside_id="node"),
            ]
        )
        explanation = explain_unsat(registry, partial)
        assert explanation is not None
        assert {"g", "a"} <= set(explanation.conflicting_ids)
