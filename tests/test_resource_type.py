"""Resource types, dependencies, port mappings, and the builder API."""

import pytest

from repro.core import (
    Binding,
    ConfigPort,
    Dependency,
    DependencyAlternative,
    DependencyKind,
    HOSTNAME,
    Lit,
    OutputPort,
    Port,
    PortMapping,
    RecordType,
    STRING,
    TCP_PORT,
    as_key,
    config_ref,
    define,
    input_ref,
)
from repro.core.errors import PortError, ResourceModelError


class TestPortMapping:
    def test_of_builds_sorted_entries(self):
        mapping = PortMapping.of(z="in_z", a="in_a")
        assert mapping.entries == (("a", "in_a"), ("z", "in_z"))

    def test_accessors(self):
        mapping = PortMapping.of(out1="in1", out2="in2")
        assert mapping.output_ports() == ("out1", "out2")
        assert mapping.input_ports() == ("in1", "in2")
        assert mapping.as_dict() == {"out1": "in1", "out2": "in2"}

    def test_same_input_twice_rejected(self):
        with pytest.raises(PortError):
            PortMapping((("a", "x"), ("b", "x")))

    def test_empty(self):
        assert PortMapping().is_empty()


class TestDependency:
    def test_single(self):
        dep = Dependency.single(
            DependencyKind.PEER, as_key("MySQL 5.1"), PortMapping.of(db="db")
        )
        assert dep.keys() == (as_key("MySQL 5.1"),)
        assert dep.mapped_inputs() == {"db"}

    def test_no_alternatives_rejected(self):
        with pytest.raises(ResourceModelError):
            Dependency(DependencyKind.PEER, ())

    def test_disjunction_requires_identical_ranges(self):
        a = DependencyAlternative(as_key("A 1"), PortMapping.of(x="in1"))
        b = DependencyAlternative(as_key("B 1"), PortMapping.of(y="in2"))
        with pytest.raises(ResourceModelError):
            Dependency(DependencyKind.ENVIRONMENT, (a, b))

    def test_disjunction_same_range_ok(self):
        a = DependencyAlternative(as_key("A 1"), PortMapping.of(x="shared"))
        b = DependencyAlternative(as_key("B 1"), PortMapping.of(y="shared"))
        dep = Dependency(DependencyKind.ENVIRONMENT, (a, b))
        assert dep.mapped_inputs() == {"shared"}


class TestConfigPort:
    def test_default_may_read_inputs(self):
        ConfigPort(Port("p", STRING), input_ref("x"))

    def test_default_may_not_read_configs(self):
        with pytest.raises(PortError):
            ConfigPort(Port("p", STRING), config_ref("other"))

    def test_static_must_be_constant(self):
        with pytest.raises(PortError):
            ConfigPort(Port("p", STRING, Binding.STATIC), input_ref("x"))
        ConfigPort(Port("p", STRING, Binding.STATIC), Lit("ok"))


class TestResourceType:
    def test_port_names_must_be_disjoint(self):
        with pytest.raises(PortError):
            (
                define("X", "1")
                .input("p", STRING)
                .config("p", STRING, "v")
                .build()
            )

    def test_static_input_rejected(self):
        from repro.core.resource_type import ResourceType

        with pytest.raises(PortError):
            ResourceType(
                key=as_key("X 1"),
                input_ports=(Port("p", STRING, Binding.STATIC),),
            )

    def test_is_machine(self):
        machine = define("M", "1").build()
        hosted = define("H", "1").inside("M 1").build()
        assert machine.is_machine()
        assert not hosted.is_machine()

    def test_lookups(self):
        t = (
            define("X", "1")
            .inside("M 1", host="host")
            .input("host", RecordType.of(hostname=HOSTNAME))
            .config("port", TCP_PORT, 80)
            .output("out", STRING, "x")
            .build()
        )
        assert t.input_port("host").name == "host"
        assert t.config_port("port").name == "port"
        assert t.output_port("out").name == "out"
        assert t.has_input_port("host")
        assert not t.has_input_port("nope")
        with pytest.raises(PortError):
            t.input_port("nope")

    def test_dependencies_ordering(self):
        t = (
            define("X", "1")
            .inside("M 1")
            .env("E 1")
            .peer("P 1")
            .build()
        )
        kinds = [d.kind for d in t.dependencies()]
        assert kinds == [
            DependencyKind.INSIDE,
            DependencyKind.ENVIRONMENT,
            DependencyKind.PEER,
        ]

    def test_wrong_kind_in_slot_rejected(self):
        from repro.core.resource_type import ResourceType

        bad = Dependency.single(DependencyKind.PEER, as_key("M 1"))
        with pytest.raises(ResourceModelError):
            ResourceType(key=as_key("X 1"), inside=bad)


class TestBuilder:
    def test_version_in_name(self):
        t = define("Tomcat", "6.0.18").build()
        assert t.key == as_key("Tomcat 6.0.18")

    def test_unversioned(self):
        t = define("Server", abstract=True).build()
        assert t.key.version.is_unversioned()
        assert t.abstract

    def test_extends(self):
        t = define("Sub", "1", extends="Server").build()
        assert t.extends == as_key("Server")

    def test_driver_name(self):
        assert define("X", "1", driver="tomcat").build().driver_name == "tomcat"

    def test_disjunction_targets(self):
        t = define("X", "1").inside("M 1").env("A 1", "B 2", out="p").input(
            "p", STRING
        ).build()
        assert t.environment[0].keys() == (as_key("A 1"), as_key("B 2"))

    def test_mapping_keywords(self):
        t = (
            define("X", "1")
            .inside("M 1", host="my_host")
            .input("my_host", STRING)
            .build()
        )
        assert t.inside.alternatives[0].port_mapping.entries == (
            ("host", "my_host"),
        )
