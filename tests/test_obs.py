"""Observability: tracer, metrics, exporters, and the zero-overhead
contract, plus the PR's satellite bug regressions (monitor idempotency,
retry validation, journal partition symmetry)."""

import io
import json

import pytest

from repro.cli import main
from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import DeploymentError, RuntimeEngageError
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    trace_from_clock_events,
    validate_chrome_trace,
)
from repro.runtime import (
    MONIT_KEY,
    DeploymentEngine,
    DeploymentJournal,
    JournalEntry,
    ProcessMonitor,
    RetryPolicy,
    add_monitoring,
    provision_partial_spec,
)
from repro.sim import FaultPlan


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


# -- Tracer and metrics units -------------------------------------------


class TestTracer:
    def test_span_and_instant_collection(self):
        tracer = Tracer()
        tracer.span("install", category="action", start=1.0, duration=2.0,
                    lane="host1", instance="a")
        tracer.instant("ready", category="scheduler", timestamp=0.5,
                       lane="host1", instance="b")
        assert len(tracer) == 2
        assert [e.name for e in tracer.sorted_events()] == [
            "ready", "install",
        ]
        assert tracer.spans(category="action")[0].end == 3.0
        assert tracer.instants(category="scheduler")[0].args == {
            "instance": "b",
        }

    def test_instant_defaults_to_clock_now(self):
        infrastructure = standard_infrastructure()
        infrastructure.clock.advance(7.5, "setup")
        tracer = Tracer(clock=infrastructure.clock)
        event = tracer.instant("tick", category="clock")
        assert event.timestamp == 7.5

    def test_seq_breaks_timestamp_ties_deterministically(self):
        tracer = Tracer()
        for name in ("first", "second", "third"):
            tracer.instant(name, category="x", timestamp=1.0)
        assert [e.name for e in tracer.sorted_events()] == [
            "first", "second", "third",
        ]


class TestMetrics:
    def test_counters_and_histograms(self):
        metrics = MetricsRegistry()
        metrics.counter("deploy.actions").inc()
        metrics.counter("deploy.actions").inc(2)
        metrics.histogram("backoff").observe(1.0)
        metrics.histogram("backoff").observe(3.0)
        assert metrics.counter("deploy.actions").value == 3
        hist = metrics.histogram("backoff")
        assert (hist.count, hist.total) == (2, 4.0)
        assert (hist.minimum, hist.maximum, hist.mean) == (1.0, 3.0, 2.0)

    def test_render_and_payload(self):
        metrics = MetricsRegistry()
        metrics.counter("b").inc()
        metrics.counter("a").inc()
        metrics.histogram("h").observe(2.0)
        text = metrics.render()
        assert text.startswith("metrics:\n")
        # Sorted name order, counters then histograms.
        assert text.index("  a ") < text.index("  b ")
        assert "count=1" in text
        payload = metrics.to_payload()
        assert payload["counters"] == {"a": 1, "b": 1}
        assert payload["histograms"]["h"]["count"] == 1


# -- Chrome trace export ------------------------------------------------


class TestChromeExport:
    def test_structure_and_unit_conversion(self):
        tracer = Tracer()
        tracer.span("install", category="action", start=1.5, duration=0.25,
                    lane="host1")
        tracer.instant("fault", category="fault", timestamp=2.0,
                       lane="faults")
        payload = chrome_trace(tracer)
        assert validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"] if e["ph"] == "M"
        }
        assert names == {"engage-sim", "faults", "host1"}
        span = next(e for e in payload["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == 1.5e6 and span["dur"] == 0.25e6
        instant = next(e for e in payload["traceEvents"] if e["ph"] == "i")
        assert instant["s"] == "t" and instant["ts"] == 2.0e6

    def test_metrics_ride_in_other_data(self):
        tracer = Tracer()
        tracer.metrics.counter("n").inc()
        payload = chrome_trace(tracer)
        assert payload["otherData"]["metrics"]["counters"] == {"n": 1}

    def test_validator_rejects_malformed(self):
        assert validate_chrome_trace([]) == [
            "top level must be a JSON object"
        ]
        assert validate_chrome_trace({}) == ["'traceEvents' must be a list"]
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "Z"},
                    {"ph": "X", "name": 3, "pid": "x", "tid": 0,
                     "ts": "soon", "cat": "c", "dur": -1},
                    {"ph": "i", "name": "ok", "pid": 1, "tid": 1,
                     "ts": 0, "cat": "c", "s": "q"},
                ]
            }
        )
        assert any("unknown phase" in p for p in problems)
        assert any("'name' must be a string" in p for p in problems)
        assert any("'dur' must be" in p for p in problems)
        assert any("instant scope" in p for p in problems)


# -- Emission through a real deployment ---------------------------------


def _traced_openmrs_deploy(openmrs_partial, *, jobs=4, chaos=False):
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    tracer = Tracer(clock=infrastructure.clock)
    infrastructure.set_tracer(tracer)
    if chaos:
        infrastructure.set_fault_plan(FaultPlan.seeded(7, 0.6))
    drivers = standard_drivers()
    partial = provision_partial_spec(registry, openmrs_partial, infrastructure)
    engine = ConfigurationEngine(registry, tracer=tracer)
    spec = engine.configure(partial).spec
    deploy = DeploymentEngine(registry, infrastructure, drivers)
    policy = RetryPolicy(max_attempts=4, backoff_base=0.5) if chaos else None
    system = deploy.deploy(spec, jobs=jobs, policy=policy)
    return tracer, system


class TestDeployTracing:
    def test_one_action_span_per_report_record(self, openmrs_partial):
        tracer, system = _traced_openmrs_deploy(openmrs_partial)
        spans = tracer.spans(category="action")
        assert len(spans) == len(system.report.actions)
        recorded = {
            (r.instance_id, r.action, r.attempt)
            for r in system.report.actions
        }
        emitted = {
            (s.args["instance"], s.name, s.args["attempt"]) for s in spans
        }
        assert emitted == recorded

    def test_chaos_emits_faults_retries_and_backoff(self, openmrs_partial):
        tracer, system = _traced_openmrs_deploy(openmrs_partial, chaos=True)
        report = system.report
        assert report.retries > 0  # the seed must actually inject
        metrics = tracer.metrics
        assert metrics.counter("deploy.actions").value == len(report.actions)
        assert metrics.counter("deploy.failed_attempts").value == (
            report.retries
        )
        assert metrics.counter("faults.injected").value == len(
            tracer.instants(category="fault")
        ) > 0
        backoffs = tracer.spans(category="backoff")
        assert len(backoffs) == metrics.histogram(
            "deploy.backoff_seconds"
        ).count
        assert abs(
            sum(s.duration for s in backoffs)
            - report.total_backoff_seconds
        ) < 1e-9

    def test_scheduler_and_config_events(self, openmrs_partial):
        tracer, system = _traced_openmrs_deploy(openmrs_partial)
        dispatches = [
            e for e in tracer.instants(category="scheduler")
            if e.name == "dispatch"
        ]
        assert len(dispatches) == len(system.spec)
        assert tracer.metrics.histogram("scheduler.ready_queue_depth").count
        config_spans = tracer.spans(category="config")
        assert [s.name for s in config_spans] == [
            "configure:graph", "configure:encode",
            "configure:solve", "configure:propagate",
        ]
        journal_instants = tracer.instants(category="journal")
        assert {e.name for e in journal_instants} >= {"record", "completed"}

    def test_golden_chrome_trace(self, openmrs_partial):
        tracer, system = _traced_openmrs_deploy(openmrs_partial)
        payload = chrome_trace(tracer)
        assert validate_chrome_trace(payload) == []
        action_spans = [
            e for e in payload["traceEvents"]
            if e.get("cat") == "action" and e["ph"] == "X"
        ]
        assert len(action_spans) == len(system.report.actions)

    def test_monitor_restart_traced(self, registry, infrastructure,
                                    drivers, openmrs_partial):
        tracer = Tracer(clock=infrastructure.clock)
        infrastructure.set_tracer(tracer)
        partial = provision_partial_spec(
            registry, openmrs_partial, infrastructure
        )
        spec = ConfigurationEngine(registry).configure(partial).spec
        system = DeploymentEngine(registry, infrastructure, drivers).deploy(
            spec
        )
        monitor = ProcessMonitor(system)
        system.driver("mysql").process.fail()
        monitor.poll()
        restarts = tracer.instants(category="monitor")
        assert [e.name for e in restarts] == ["restart"]
        assert restarts[0].args["instance"] == "mysql"
        assert tracer.metrics.counter("monitor.restarts").value == 1


class TestCoordinatorTracing:
    def test_wave_and_slave_spans(self):
        from repro.runtime.coordinator import MasterCoordinator

        registry = standard_registry()
        infrastructure = standard_infrastructure()
        tracer = Tracer(clock=infrastructure.clock)
        infrastructure.set_tracer(tracer)
        partial = PartialInstallSpec(
            [
                PartialInstance("a", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "a"}),
                PartialInstance("b", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "b"}),
                PartialInstance("db", as_key("MySQL 5.1"), inside_id="a"),
                PartialInstance("db2", as_key("MySQL 5.1"), inside_id="b"),
            ]
        )
        partial = provision_partial_spec(registry, partial, infrastructure)
        spec = ConfigurationEngine(registry).configure(partial).spec
        coordinator = MasterCoordinator(
            registry, infrastructure, standard_drivers()
        )
        deployment = coordinator.deploy(spec)
        waves = [
            s for s in tracer.spans(category="coordinator")
            if s.name.startswith("wave-")
        ]
        slaves = [
            s for s in tracer.spans(category="coordinator")
            if s.name.startswith("slave:")
        ]
        assert len(waves) == len(deployment.report.waves)
        assert len(slaves) == sum(len(w) for w in deployment.report.waves)
        assert tracer.metrics.counter("coordinator.waves").value == len(waves)


# -- The zero-overhead contract -----------------------------------------


STACK_DSL = """
resource "MiniCache" 1.0 driver "service" {
  inside "Server" { host -> host }
  input host: { hostname: hostname, ip_address: string,
                os_user_name: string }
  config port: tcp_port = 7070
  output kv: { host: hostname, port: tcp_port } =
    { host = input.host.hostname, port = config.port }
}
"""


@pytest.fixture
def chaos_stack(tmp_path):
    dsl = tmp_path / "stack.engage"
    dsl.write_text(STACK_DSL)
    spec = tmp_path / "spec.json"
    spec.write_text(
        json.dumps(
            [
                {"id": "box", "key": "Ubuntu-Linux 10.04",
                 "config_port": {"hostname": "obscli"}},
                {"id": "cache", "key": "MiniCache 1.0",
                 "inside": {"id": "box"}},
                {"id": "cache2", "key": "MiniCache 1.0",
                 "inside": {"id": "box"},
                 "config_port": {"port": 7171}},
            ]
        )
    )
    return str(dsl), str(spec), tmp_path


def _strip_trace_lines(output):
    return "".join(
        line for line in output.splitlines(keepends=True)
        if not line.startswith("trace written to ")
    )


class TestZeroOverhead:
    def test_traced_chaos_deploy_output_bit_identical(self, chaos_stack):
        dsl, spec, tmp_path = chaos_stack
        argv = ["deploy", "--types", dsl, spec, "--jobs", "4",
                "--chaos-rate", "0.8", "--chaos-seed", "11",
                "--max-retries", "3", "--backoff", "0.5"]
        trace_file = tmp_path / "trace.json"
        code_plain, out_plain = run(argv)
        code_traced, out_traced = run(argv + ["--trace", str(trace_file)])
        assert code_plain == code_traced == 0
        assert _strip_trace_lines(out_traced) == out_plain
        assert f"trace written to {trace_file}" in out_traced
        payload = json.loads(trace_file.read_text())
        assert validate_chrome_trace(payload) == []

    def test_traced_journal_payload_bit_identical(self, chaos_stack):
        dsl, spec, tmp_path = chaos_stack
        payloads = []
        for with_trace in (False, True):
            bundle = tmp_path / f"bundle-{with_trace}.json"
            argv = ["deploy", "--types", dsl, spec, "--jobs", "4",
                    "--chaos-rate", "0.8", "--chaos-seed", "11",
                    "--max-retries", "3", "--save", str(bundle)]
            if with_trace:
                argv += ["--trace", str(tmp_path / "t.json")]
            code, _ = run(argv)
            assert code == 0
            payloads.append(json.loads(bundle.read_text())["state"])
        assert payloads[0] == payloads[1]

    def test_api_report_identical_with_and_without_tracer(
        self, openmrs_partial
    ):
        def actions(traced):
            registry = standard_registry()
            infrastructure = standard_infrastructure()
            if traced:
                infrastructure.set_tracer(Tracer(clock=infrastructure.clock))
            infrastructure.set_fault_plan(FaultPlan.seeded(7, 0.6))
            partial = provision_partial_spec(
                registry, openmrs_partial, infrastructure
            )
            spec = ConfigurationEngine(registry).configure(partial).spec
            system = DeploymentEngine(
                registry, infrastructure, standard_drivers()
            ).deploy(
                spec, jobs=4, policy=RetryPolicy(max_attempts=4,
                                                 backoff_base=0.5)
            )
            return [
                (r.instance_id, r.action, r.attempt, r.outcome,
                 r.started_at, r.duration, r.backoff_seconds)
                for r in system.report.actions
            ]

        assert actions(False) == actions(True)


# -- The ``engage-sim trace`` subcommand --------------------------------


class TestTraceCommand:
    def test_render_saved_bundle(self, chaos_stack):
        dsl, spec, tmp_path = chaos_stack
        bundle = tmp_path / "bundle.json"
        code, _ = run(
            ["deploy", "--types", dsl, spec, "--jobs", "2",
             "--save", str(bundle)]
        )
        assert code == 0
        rendered = tmp_path / "rendered.json"
        code, output = run(["trace", str(bundle), "-o", str(rendered)])
        assert code == 0
        assert f"trace written to {rendered}" in output
        payload = json.loads(rendered.read_text())
        assert validate_chrome_trace(payload) == []
        # Driver actions land on the machine's hostname lane with the
        # instance in args; journal records come along as instants.
        actions = [
            e for e in payload["traceEvents"] if e.get("cat") == "action"
        ]
        assert actions and all(
            e["args"]["instance"] for e in actions
        )
        assert any(
            e.get("cat") == "journal" for e in payload["traceEvents"]
        )

    def test_render_to_stdout(self, chaos_stack):
        dsl, spec, tmp_path = chaos_stack
        bundle = tmp_path / "bundle.json"
        run(["deploy", "--types", dsl, spec, "--save", str(bundle)])
        code, output = run(["trace", str(bundle)])
        assert code == 0
        assert validate_chrome_trace(json.loads(output)) == []

    def test_validate_good_and_bad(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(
            {"traceEvents": [{"ph": "M", "pid": 1, "tid": 0,
                              "name": "process_name",
                              "args": {"name": "x"}}]}
        ))
        code, output = run(["trace", "--validate", str(good)])
        assert code == 0 and "valid Chrome trace: 1 events" in output
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        code, output = run(["trace", "--validate", str(bad)])
        assert code == 1 and "unknown phase" in output
        not_json = tmp_path / "nope.json"
        not_json.write_text("{")
        code, output = run(["trace", "--validate", str(not_json)])
        assert code == 1 and "not JSON" in output

    def test_bundle_required_without_validate(self):
        code, output = run(["trace"])
        assert code == 2
        assert "bundle is required" in output


# -- Satellite regressions ----------------------------------------------


class TestMonitorIdempotency:
    def test_double_augment_is_identity(self, registry, openmrs_partial):
        once = add_monitoring(registry, openmrs_partial)
        twice = add_monitoring(registry, once)
        assert [(i.id, i.key, i.inside_id) for i in twice] == [
            (i.id, i.key, i.inside_id) for i in once
        ]

    def test_existing_monit_instance_respected(self, registry):
        partial = PartialInstallSpec(
            [
                PartialInstance("a", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "a"}),
                PartialInstance("mymonit", MONIT_KEY, inside_id="a"),
            ]
        )
        augmented = add_monitoring(registry, partial)
        monits = [i for i in augmented if i.key.name == MONIT_KEY.name]
        assert [m.id for m in monits] == ["mymonit"]

    def test_id_collision_is_a_hard_error(self, registry):
        partial = PartialInstallSpec(
            [
                PartialInstance("a", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "a"}),
                PartialInstance("monit_a", as_key("MySQL 5.1"),
                                inside_id="a"),
            ]
        )
        with pytest.raises(DeploymentError, match="monit_a"):
            add_monitoring(registry, partial)


class TestRetryPolicyValidation:
    def test_negative_backoff_factor_rejected(self):
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(max_attempts=3, backoff_factor=-2.0)

    def test_backoff_never_negative(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=1.0, backoff_factor=0.0, jitter=0.0
        )
        # factor**0 == 1 for the first wait, 0 after; never below zero.
        assert policy.backoff_seconds(1, "i", "install") == 1.0
        for attempt in (2, 3, 4):
            assert policy.backoff_seconds(attempt, "i", "install") == 0.0


class TestJournalPartitions:
    def _spec(self, registry, infrastructure, openmrs_partial):
        partial = provision_partial_spec(
            registry, openmrs_partial, infrastructure
        )
        return ConfigurationEngine(registry).configure(partial).spec

    def test_mark_failed_discards_completed(
        self, registry, infrastructure, openmrs_partial
    ):
        journal = DeploymentJournal(
            self._spec(registry, infrastructure, openmrs_partial)
        )
        journal.mark_completed("mysql")
        journal.mark_failed("mysql", "boom")
        assert "mysql" not in journal.completed
        assert journal.failed == {"mysql": "boom"}
        payload = journal.to_payload()
        assert payload["completed"] == []
        assert payload["failed"] == {"mysql": "boom"}

    @pytest.mark.parametrize(
        "field,value",
        [
            ("instance_id", None),
            ("action", 3),
            ("source", ["initial"]),
            ("target", {"state": "active"}),
        ],
    )
    def test_from_payload_rejects_non_string_fields(self, field, value):
        payload = {
            "instance_id": "a", "action": "install",
            "source": "initial", "target": "installed", "timestamp": 1.0,
        }
        payload[field] = value
        with pytest.raises(RuntimeEngageError, match="malformed journal"):
            JournalEntry.from_payload(payload)

    def test_malformed_entry_inside_state2_payload(
        self, registry, infrastructure, openmrs_partial
    ):
        spec = self._spec(registry, infrastructure, openmrs_partial)
        with pytest.raises(RuntimeEngageError, match="malformed journal"):
            DeploymentJournal.from_payload(
                spec,
                {
                    "target": "active",
                    "entries": [
                        {"instance_id": None, "action": "install",
                         "source": "initial", "target": "installed",
                         "timestamp": 0.0}
                    ],
                },
            )
