"""Package index, downloads/caching, the OSLPM, and cloud providers."""

import pytest

from repro.core.errors import ProvisioningError, SimulationError
from repro.sim import (
    DownloadService,
    Infrastructure,
    PackageIndex,
    SimClock,
)


@pytest.fixture
def world():
    return Infrastructure()


class TestPackageIndex:
    def test_publish_and_lookup(self, world):
        world.package_index.publish_simple("tomcat", "6.0.18", 1000)
        artifact = world.package_index.lookup("tomcat", "6.0.18")
        assert artifact.size_bytes == 1000
        assert world.package_index.has("tomcat", "6.0.18")

    def test_duplicate_rejected(self, world):
        world.package_index.publish_simple("x", "1", 10)
        with pytest.raises(SimulationError):
            world.package_index.publish_simple("x", "1", 10)

    def test_missing_lookup(self, world):
        with pytest.raises(SimulationError):
            world.package_index.lookup("ghost", "1")


class TestDownloads:
    def test_internet_download_costs_time(self, world):
        world.package_index.publish_simple("big", "1", 10_000_000)
        world.downloads.fetch("big", "1")
        assert world.clock.now > 5  # latency + transfer

    def test_cache_hit_is_much_faster(self, world):
        world.package_index.publish_simple("big", "1", 50_000_000)
        world.downloads.fetch("big", "1")
        first = world.clock.now
        world.downloads.fetch("big", "1")
        second = world.clock.now - first
        assert second < first / 10
        assert world.downloads.cache_hits == 1

    def test_prefetch_warms_cache_for_free(self, world):
        world.package_index.publish_simple("pkg", "1", 50_000_000)
        world.downloads.prefetch("pkg", "1")
        assert world.clock.now == 0
        world.downloads.fetch("pkg", "1")
        assert world.clock.now < 2  # cache speed

    def test_no_cache_mode(self):
        world = Infrastructure(use_cache=False)
        world.package_index.publish_simple("pkg", "1", 10_000_000)
        world.downloads.fetch("pkg", "1")
        first = world.clock.now
        world.downloads.fetch("pkg", "1")
        assert world.clock.now - first == pytest.approx(first)
        assert world.downloads.cache_hits == 0


class TestOslpm:
    def test_install_unpacks_files(self, world):
        machine = world.add_machine("m1")
        world.package_index.publish_simple("tomcat", "6.0.18", 1000)
        pm = world.package_manager(machine)
        pm.install("tomcat", "6.0.18")
        assert pm.is_installed("tomcat")
        assert pm.is_installed("tomcat", "6.0.18")
        assert not pm.is_installed("tomcat", "7.0")
        assert machine.fs.is_file("/opt/tomcat-6.0.18/.manifest")
        assert pm.install_path("tomcat") == "/opt/tomcat-6.0.18"

    def test_reinstall_same_version_idempotent(self, world):
        machine = world.add_machine("m1")
        world.package_index.publish_simple("pkg", "1", 100)
        pm = world.package_manager(machine)
        pm.install("pkg", "1")
        before = world.clock.now
        pm.install("pkg", "1")
        assert world.clock.now == before  # no work repeated

    def test_conflicting_version_rejected(self, world):
        machine = world.add_machine("m1")
        world.package_index.publish_simple("pkg", "1", 100)
        world.package_index.publish_simple("pkg", "2", 100)
        pm = world.package_manager(machine)
        pm.install("pkg", "1")
        with pytest.raises(SimulationError):
            pm.install("pkg", "2")

    def test_prerequisites_enforced(self, world):
        machine = world.add_machine("m1")
        world.package_index.publish_simple("dep", "1", 100)
        world.package_index.publish_simple("main", "1", 100)
        pm = world.package_manager(machine)
        with pytest.raises(SimulationError):
            pm.install("main", "1", prerequisites=["dep"])
        pm.install("dep", "1")
        pm.install("main", "1", prerequisites=["dep"])

    def test_remove_deletes_files(self, world):
        machine = world.add_machine("m1")
        world.package_index.publish_simple("pkg", "1", 100)
        pm = world.package_manager(machine)
        pm.install("pkg", "1")
        pm.remove("pkg")
        assert not pm.is_installed("pkg")
        assert not machine.fs.exists("/opt/pkg-1")

    def test_remove_missing(self, world):
        machine = world.add_machine("m1")
        with pytest.raises(SimulationError):
            world.package_manager(machine).remove("ghost")

    def test_snapshot_restore(self, world):
        machine = world.add_machine("m1")
        world.package_index.publish_simple("pkg", "1", 100)
        pm = world.package_manager(machine)
        pm.install("pkg", "1")
        snap = pm.snapshot()
        pm.remove("pkg")
        pm.restore(snap)
        assert pm.is_installed("pkg", "1")

    def test_package_manager_memoised(self, world):
        machine = world.add_machine("m1")
        assert world.package_manager(machine) is world.package_manager(machine)


class TestCloud:
    def test_provision_creates_machine(self, world):
        provider = world.add_provider("rackspace-sim")
        node = provider.provision("ubuntu-10.04")
        assert world.network.has_machine(node.hostname)
        assert node.os.name == "ubuntu-linux"
        assert world.clock.now >= 55  # provisioning latency

    def test_find_image(self, world):
        provider = world.add_provider("aws-sim")
        image = provider.find_image("mac-osx", "10.6")
        assert image.image_id == "mac-osx-10.6"
        with pytest.raises(ProvisioningError):
            provider.find_image("beos", "5")

    def test_unknown_image(self, world):
        provider = world.add_provider("p")
        with pytest.raises(ProvisioningError):
            provider.provision("atari")

    def test_deprovision(self, world):
        provider = world.add_provider("p")
        node = provider.provision("ubuntu-10.04")
        provider.deprovision(node.hostname)
        assert not world.network.has_machine(node.hostname)
        with pytest.raises(ProvisioningError):
            provider.deprovision(node.hostname)

    def test_explicit_hostname(self, world):
        provider = world.add_provider("p")
        node = provider.provision("ubuntu-10.04", hostname="db1")
        assert node.hostname == "db1"
        with pytest.raises(ProvisioningError):
            provider.provision("ubuntu-10.04", hostname="db1")

    def test_duplicate_provider_rejected(self, world):
        world.add_provider("p")
        with pytest.raises(SimulationError):
            world.add_provider("p")
