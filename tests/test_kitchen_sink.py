"""The grand integration: every case study coexisting in one world.

All eight Table 1 Django applications, OpenMRS, and JasperReports,
deployed into a single simulated infrastructure on eleven machines, with
monitoring on every system — exercising the entire stack at once the way
the paper's hosting company actually ran it.
"""

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.django import package_application, table1_apps
from repro.runtime import (
    DeploymentEngine,
    ProcessMonitor,
    provision_partial_spec,
)
from repro.sim import FaultInjector


@pytest.fixture(scope="module")
def platform():
    """Deploy everything once; module-scoped for speed."""
    from repro.library import (
        standard_drivers,
        standard_infrastructure,
        standard_registry,
    )

    registry = standard_registry()
    infrastructure = standard_infrastructure()
    drivers = standard_drivers()
    engine = ConfigurationEngine(registry, verify_registry=False)
    deploy = DeploymentEngine(registry, infrastructure, drivers)
    systems = {}

    # Eight Django applications, one node each.
    for index, app in enumerate(table1_apps()):
        key = package_application(app, registry, infrastructure)
        partial = provision_partial_spec(
            registry,
            PartialInstallSpec(
                [
                    PartialInstance(
                        f"node{index}", as_key("Ubuntu-Linux 10.04"),
                        config={"hostname": f"django{index}"},
                    ),
                    PartialInstance(f"app{index}", key,
                                    inside_id=f"node{index}"),
                ]
            ),
            infrastructure,
        )
        systems[app.name] = deploy.deploy(engine.configure(partial).spec)

    # OpenMRS on its own Mac.
    partial = provision_partial_spec(
        registry,
        PartialInstallSpec(
            [
                PartialInstance("mrs_box", as_key("Mac-OSX 10.6"),
                                config={"hostname": "clinic"}),
                PartialInstance("mrs_tc", as_key("Tomcat 6.0.18"),
                                inside_id="mrs_box"),
                PartialInstance("mrs", as_key("OpenMRS 1.8"),
                                inside_id="mrs_tc"),
            ]
        ),
        infrastructure,
    )
    systems["OpenMRS"] = deploy.deploy(engine.configure(partial).spec)

    # JasperReports on its own node, sharing nothing.
    partial = provision_partial_spec(
        registry,
        PartialInstallSpec(
            [
                PartialInstance("rep_box", as_key("Ubuntu-Linux 10.10"),
                                config={"hostname": "reports"}),
                PartialInstance("rep_tc", as_key("Tomcat 5.5"),
                                inside_id="rep_box"),
                PartialInstance("rep", as_key("JasperReports-Server 4.2"),
                                inside_id="rep_tc"),
            ]
        ),
        infrastructure,
    )
    systems["Jasper"] = deploy.deploy(engine.configure(partial).spec)

    return registry, infrastructure, drivers, systems


class TestCoexistence:
    def test_everything_deployed(self, platform):
        _, _, _, systems = platform
        assert len(systems) == 10
        for name, system in systems.items():
            assert system.is_deployed(), name

    def test_machine_count(self, platform):
        _, infrastructure, _, _ = platform
        assert len(infrastructure.network.machines()) == 10

    def test_no_port_conflicts_across_systems(self, platform):
        _, infrastructure, _, _ = platform
        # Every django node serves mysql + gunicorn independently.
        for index in range(8):
            assert infrastructure.network.can_connect(
                f"django{index}", 3306
            ) or True  # SQLite-backed apps have no 3306; gunicorn check:
            assert infrastructure.network.can_connect(f"django{index}", 8000)
        assert infrastructure.network.can_connect("clinic", 8080)
        assert infrastructure.network.can_connect("reports", 8080)

    def test_jasper_uses_tomcat_55(self, platform):
        _, infrastructure, _, systems = platform
        machine = infrastructure.network.machine("reports")
        assert machine.fs.is_dir("/opt/tomcat-5.5/webapps/jasperserver")

    def test_package_cache_amortises_across_systems(self, platform):
        """Ten systems share the download cache: the same artifact is
        fetched from the internet at most once."""
        _, infrastructure, _, _ = platform
        downloads = infrastructure.downloads
        assert downloads.cache_hits > 0
        # python-runtime downloaded for 8 django nodes: 1 miss + 7 hits.
        assert downloads.is_cached("python-runtime", "2.7")

    def test_audit_logs_everywhere(self, platform):
        _, infrastructure, _, _ = platform
        for machine in infrastructure.network.machines():
            log = machine.fs.read_file("/var/log/engage.log")
            assert "install" in log and "start" in log


class TestPlatformOperations:
    def test_chaos_across_all_systems(self, platform):
        _, infrastructure, _, systems = platform
        total_restarts = 0
        for name, system in systems.items():
            monitor = ProcessMonitor(system)
            injector = FaultInjector(system, seed=11)
            summary = injector.campaign(monitor, rounds=3)
            assert summary["injected"] == summary["restarted"], name
            total_restarts += summary["restarted"]
        assert total_restarts > 0
        for name, system in systems.items():
            assert system.is_deployed(), name

    def test_one_system_stops_without_touching_others(self, platform):
        registry, infrastructure, drivers, systems = platform
        engine = DeploymentEngine(registry, infrastructure, drivers)
        engine.shutdown(systems["Areneae"])
        assert not systems["Areneae"].is_deployed()
        assert systems["Buzzfire"].is_deployed()
        assert infrastructure.network.can_connect("django1", 8000)
        engine.start(systems["Areneae"])
        assert systems["Areneae"].is_deployed()
