"""The simulated message bus: at-least-once delivery, exactly-once
effect under dedup keys, heartbeat-timeout detection, and byte-identical
seeded replay.

The property harness below is a miniature of the control plane in
:mod:`repro.runtime.coordinator`: a producer retransmits keyed work
items until acked, a consumer applies each key's effect at most once
and re-acks duplicates from a cache.  Under seeded drops, duplicates,
and reorder jitter, the corpus asserts the one invariant everything
above the bus depends on: **delivery is at-least-once, effect is
exactly-once**.
"""

import pytest

from repro.core.errors import SimulationError
from repro.runtime import bus as busmod
from repro.runtime.bus import MessageBus
from repro.sim.clock import SimClock
from repro.sim.faults import LinkFaultPlan

SMOKE_SEEDS = range(20)
CORPUS_SEEDS = range(200)

#: Chaos heavy enough that most corpus runs see drops AND duplicates.
CHAOS = dict(drop=0.25, duplicate=0.2, jitter=3.0)


def make_bus(seed=None, **chaos):
    clock = SimClock()
    faults = LinkFaultPlan(seed, **chaos) if seed is not None else None
    bus = MessageBus(clock, faults=faults)
    bus.register("producer")
    bus.register("consumer")
    return clock, bus


def run_effect_harness(seed, keys=12, retransmit_after=5.0, deadline=3600.0):
    """Retransmit keyed work until acked; apply each effect once.

    Returns (applied_counts, bus) -- the counts say how often each
    key's *effect* ran, regardless of how many copies were delivered.
    """
    clock, bus = make_bus(seed, **CHAOS)
    work = [f"item-{i}" for i in range(keys)]
    attempts = {key: 0 for key in work}
    sent_at = {key: None for key in work}
    acked = set()
    applied = {key: 0 for key in work}
    seen = {}
    ack_attempts = {}
    while len(acked) < len(work):
        now = clock.now
        if now > deadline:
            raise AssertionError(f"seed {seed} did not converge")
        bus.deliver_due(now)
        for envelope in bus.endpoint("consumer").drain():
            key = envelope.dedup_key
            if key not in seen:
                applied[key] += 1  # the effect, exactly here
                seen[key] = {"key": key}
            ack_attempts[key] = ack_attempts.get(key, 0) + 1
            bus.send(
                "consumer", "producer", busmod.ACK, seen[key],
                dedup_key=f"ack:{key}", attempt=ack_attempts[key],
            )
        for envelope in bus.endpoint("producer").drain():
            acked.add(envelope.payload["key"])
        for key in work:
            if key in acked:
                continue
            if sent_at[key] is None or now - sent_at[key] >= retransmit_after:
                attempts[key] += 1
                sent_at[key] = now
                bus.send(
                    "producer", "consumer", busmod.WORK, {"key": key},
                    dedup_key=key, attempt=attempts[key],
                )
        if len(acked) == len(work):
            break
        nxt = bus.next_time()
        retry = min(
            (sent_at[k] + retransmit_after for k in work if k not in acked),
            default=None,
        )
        targets = [t for t in (nxt, retry) if t is not None]
        clock.sync_to(max(min(targets), now + 0.001))
    return applied, bus


def assert_exactly_once(seed):
    applied, bus = run_effect_harness(seed)
    assert all(count == 1 for count in applied.values()), applied
    stats = bus.stats()
    # At-least-once: every key's work was delivered at least once.
    assert stats["delivered"].get("work", 0) >= len(applied)


class TestDelivery:
    def test_latency_defers_delivery(self):
        clock, bus = make_bus()
        bus.send("producer", "consumer", "work", {"n": 1})
        assert bus.deliver_due(clock.now) == 0
        assert bus.next_time() == pytest.approx(0.05)
        assert bus.deliver_due(0.05) == 1
        inbox = bus.endpoint("consumer").drain()
        assert [e.payload["n"] for e in inbox] == [1]

    def test_per_link_latency(self):
        clock, bus = make_bus()
        bus.set_latency("producer", "consumer", 1.5)
        bus.send("producer", "consumer", "work")
        assert bus.next_time() == pytest.approx(1.5)

    def test_same_instant_delivery_is_send_ordered(self):
        clock, bus = make_bus()
        for n in range(5):
            bus.send("producer", "consumer", "work", {"n": n})
        bus.deliver_due(1.0)
        inbox = bus.endpoint("consumer").drain()
        assert [e.payload["n"] for e in inbox] == [0, 1, 2, 3, 4]

    def test_closed_endpoint_discards(self):
        clock, bus = make_bus()
        bus.send("producer", "consumer", "work")
        bus.close("consumer")
        bus.deliver_due(1.0)
        assert bus.endpoint("consumer").inbox == []
        assert bus.log[-1].status == busmod.DEAD_ENDPOINT
        # Re-opened endpoint receives again.
        bus.open("consumer")
        bus.send("producer", "consumer", "work")
        bus.deliver_due(2.0)
        assert len(bus.endpoint("consumer").inbox) == 1

    def test_unknown_endpoint_rejected(self):
        _, bus = make_bus()
        with pytest.raises(SimulationError):
            bus.send("producer", "ghost", "work")

    def test_duplicate_registration_rejected(self):
        _, bus = make_bus()
        with pytest.raises(SimulationError):
            bus.register("producer")

    def test_negative_latency_rejected(self):
        clock = SimClock()
        with pytest.raises(SimulationError):
            MessageBus(clock, default_latency=-1.0)


class TestPartition:
    def test_partition_blocks_send(self):
        clock, bus = make_bus()
        bus.partition(["producer"], ["consumer"])
        bus.send("producer", "consumer", "work")
        assert bus.pending() == 0
        assert bus.log[-1].status == busmod.PARTITIONED

    def test_in_flight_message_lost_at_partition(self):
        """A message sent before the cut but delivered after it is lost
        -- exactly like a packet on a real severed wire."""
        clock, bus = make_bus()
        bus.send("producer", "consumer", "work")
        bus.partition(["producer"], ["consumer"])
        bus.deliver_due(1.0)
        assert bus.endpoint("consumer").inbox == []
        assert bus.log[-1].status == busmod.PARTITIONED
        assert bus.stats()["partition_losses"] == 1

    def test_heal_restores_delivery(self):
        clock, bus = make_bus()
        bus.partition(["producer"], ["consumer"])
        bus.heal()
        bus.send("producer", "consumer", "work")
        bus.deliver_due(1.0)
        assert len(bus.endpoint("consumer").drain()) == 1

    def test_nodes_absent_from_groups_are_singletons(self):
        clock, bus = make_bus()
        bus.register("third")
        bus.partition(["producer", "consumer"])
        assert bus.reachable("producer", "consumer")
        assert not bus.reachable("producer", "third")
        assert bus.reachable("third", "third")


class TestLinkFaultPlan:
    def test_decisions_are_pure_functions_of_site(self):
        plan = LinkFaultPlan(42, **CHAOS)
        site = "work:producer->consumer:item-3"
        assert plan.copies(site, 1) == plan.copies(site, 1)
        # Different attempts draw independently.
        draws = {tuple(plan.copies(site, a)) for a in range(1, 30)}
        assert len(draws) > 1

    def test_include_patterns_scope_chaos(self):
        plan = LinkFaultPlan(0, drop=1.0, include=("work:*",))
        assert plan.copies("work:a->b:k", 1) == []
        assert plan.copies("ack:b->a:k", 1) == [0.0]

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            LinkFaultPlan(0, drop=1.5)
        with pytest.raises(ValueError):
            LinkFaultPlan(0, jitter=-1.0)

    def test_reorder_via_jitter(self):
        """With jitter, a later send can arrive first; the receiver
        sees reordered msg_ids."""
        clock, bus = make_bus(9, jitter=5.0)
        for n in range(30):
            bus.send("producer", "consumer", "work", {"n": n})
        bus.deliver_due(100.0)
        order = [e.payload["n"] for e in bus.endpoint("consumer").drain()]
        assert sorted(order) == list(range(30))
        assert order != list(range(30))


class TestHeartbeatTimeout:
    def test_silent_peer_detected(self):
        """A peer that stops heartbeating is detected after the
        timeout; one that keeps beating never is."""
        clock, bus = make_bus()
        timeout = 15.0
        last_seen = 0.0
        suspected_at = None
        # The consumer heartbeats every 5s until t=20, then goes silent.
        for t in range(0, 20, 5):
            bus.send("consumer", "producer", busmod.HEARTBEAT, at=float(t))
        t = 0.0
        while t < 60.0 and suspected_at is None:
            bus.deliver_due(t)
            for envelope in bus.endpoint("producer").drain():
                last_seen = max(last_seen, envelope.deliver_at)
            if t - last_seen > timeout:
                suspected_at = t
            t += 1.0
        assert suspected_at is not None
        assert suspected_at - last_seen > timeout
        assert suspected_at == pytest.approx(31.0, abs=1.0)


class TestReplay:
    def test_same_seed_byte_identical_log(self):
        _, first = run_effect_harness(seed=123)
        _, second = run_effect_harness(seed=123)
        assert first.delivery_log() == second.delivery_log()
        assert first.delivery_log()  # non-empty

    def test_different_seeds_diverge(self):
        _, a = run_effect_harness(seed=1)
        _, b = run_effect_harness(seed=2)
        assert a.delivery_log() != b.delivery_log()

    def test_log_lines_fixed_precision(self):
        clock, bus = make_bus()
        bus.send("producer", "consumer", "work", dedup_key="k1")
        bus.deliver_due(1.0)
        line = bus.log[-1].line()
        assert line == (
            "0.050000 delivered #1.0 work producer->consumer"
            " key=k1 attempt=1 sent=0.000000"
        )


class TestExactlyOnceSmoke:
    """Tier-1 slice of the corpus (full 200 seeds under the fuzz mark)."""

    @pytest.mark.parametrize("seed", SMOKE_SEEDS)
    def test_exactly_once_effect(self, seed):
        assert_exactly_once(seed)

    def test_chaos_actually_fired(self):
        """The smoke corpus exercises drops AND duplicates somewhere --
        otherwise the exactly-once claim is vacuous."""
        dropped = duplicated = 0
        for seed in SMOKE_SEEDS:
            _, bus = run_effect_harness(seed)
            stats = bus.stats()
            dropped += stats["dropped"]
            duplicated += stats["duplicated"]
        assert dropped > 0
        assert duplicated > 0


@pytest.mark.fuzz
class TestExactlyOnceCorpus:
    """The full 200-seed corpus (CI fuzz job; excluded from tier-1)."""

    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    def test_exactly_once_effect(self, seed):
        assert_exactly_once(seed)

    @pytest.mark.parametrize("seed", range(0, 200, 25))
    def test_replay_byte_identical(self, seed):
        _, a = run_effect_harness(seed)
        _, b = run_effect_harness(seed)
        assert a.delivery_log() == b.delivery_log()
