"""The deployment engine: install/start in order, guards, shutdown."""

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import DeploymentError, GuardError
from repro.config import ConfigurationEngine
from repro.drivers import ACTIVE, INACTIVE, UNINSTALLED
from repro.runtime import DeploymentEngine


@pytest.fixture
def openmrs_spec(registry, openmrs_partial):
    return ConfigurationEngine(registry).configure(openmrs_partial).spec


@pytest.fixture
def deploy(registry, infrastructure, drivers):
    return DeploymentEngine(registry, infrastructure, drivers)


class TestDeploy:
    def test_everything_active(self, deploy, openmrs_spec):
        system = deploy.deploy(openmrs_spec)
        assert system.is_deployed()
        assert set(system.states().values()) == {ACTIVE}

    def test_services_listening(self, deploy, openmrs_spec, infrastructure):
        deploy.deploy(openmrs_spec)
        assert infrastructure.network.can_connect("demotest", 3306)
        assert infrastructure.network.can_connect("demotest", 8080)

    def test_dependency_order_in_report(self, deploy, openmrs_spec):
        system = deploy.deploy(openmrs_spec)
        starts = [
            a.instance_id
            for a in system.report.actions
            if a.action == "start"
        ]
        assert starts.index("mysql") < starts.index("openmrs")
        assert starts.index("tomcat") < starts.index("openmrs")

    def test_makespan_not_more_than_sequential(self, deploy, openmrs_spec):
        system = deploy.deploy(openmrs_spec)
        assert (
            system.report.makespan_seconds
            <= system.report.sequential_seconds + 1e-9
        )
        assert system.report.makespan_seconds > 0

    def test_deploy_is_idempotent(self, deploy, openmrs_spec):
        system = deploy.deploy(openmrs_spec)
        again = deploy.start(system)
        assert again.actions == []  # already active, nothing to do

    def test_machine_auto_created(self, deploy, openmrs_spec, infrastructure):
        assert not infrastructure.network.has_machine("demotest")
        deploy.deploy(openmrs_spec)
        assert infrastructure.network.has_machine("demotest")

    def test_missing_hostname_rejected(self, registry, infrastructure, drivers):
        import dataclasses

        spec = ConfigurationEngine(registry).configure(
            PartialInstallSpec(
                [
                    PartialInstance(
                        "server", as_key("Mac-OSX 10.6"),
                        config={"hostname": "h"},
                    )
                ]
            )
        ).spec
        server = spec["server"]
        broken = dataclasses.replace(
            server, config={**server.config, "hostname": ""}, outputs={}
        )
        from repro.core import InstallSpec

        bad_spec = InstallSpec([broken])
        engine = DeploymentEngine(registry, infrastructure, drivers)
        with pytest.raises(DeploymentError):
            engine.deploy(bad_spec)


class TestShutdown:
    def test_reverse_order(self, deploy, openmrs_spec):
        system = deploy.deploy(openmrs_spec)
        report = deploy.shutdown(system)
        stops = [
            a.instance_id for a in report.actions if a.action == "stop"
        ]
        assert stops.index("openmrs") < stops.index("tomcat")
        assert stops.index("openmrs") < stops.index("mysql")
        assert all(s == INACTIVE for s in system.states().values())

    def test_ports_released(self, deploy, openmrs_spec, infrastructure):
        system = deploy.deploy(openmrs_spec)
        deploy.shutdown(system)
        assert not infrastructure.network.can_connect("demotest", 3306)

    def test_restart_after_shutdown(self, deploy, openmrs_spec):
        system = deploy.deploy(openmrs_spec)
        deploy.shutdown(system)
        deploy.start(system)
        assert system.is_deployed()


class TestUninstall:
    def test_everything_uninstalled(self, deploy, openmrs_spec):
        system = deploy.deploy(openmrs_spec)
        deploy.uninstall(system)
        assert all(s == UNINSTALLED for s in system.states().values())

    def test_packages_removed(self, deploy, openmrs_spec, infrastructure):
        system = deploy.deploy(openmrs_spec)
        machine = infrastructure.network.machine("demotest")
        pm = infrastructure.package_manager(machine)
        assert pm.is_installed("tomcat")
        deploy.uninstall(system)
        assert not pm.is_installed("tomcat")


class TestGuards:
    def test_out_of_order_start_raises_guard_error(self, deploy, openmrs_spec):
        """Manually starting a dependent before its dependencies must be
        caught by the runtime's guard check."""
        machines = deploy._resolve_machines(openmrs_spec)
        drivers = deploy._create_drivers(openmrs_spec, machines)
        from repro.runtime.deploy import DeployedSystem

        system = DeployedSystem(
            openmrs_spec, deploy.registry, deploy.infrastructure,
            drivers, machines,
        )
        # Install everything (unguarded), then try to start openmrs while
        # its upstreams are still inactive.
        for instance in openmrs_spec.topological_order():
            drivers[instance.id].perform("install")
        transition = drivers["openmrs"].transition_for("start")
        with pytest.raises(GuardError):
            deploy._check_guard(system, "openmrs", transition)

    def test_stop_guard_blocks_while_dependents_active(
        self, deploy, openmrs_spec
    ):
        system = deploy.deploy(openmrs_spec)
        transition = system.driver("mysql").transition_for("stop")
        with pytest.raises(GuardError):
            deploy._check_guard(system, "mysql", transition)
