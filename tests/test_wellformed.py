"""Well-formedness of resource-type sets (the S3.1 conditions)."""

import pytest

from repro.core import (
    Dependency,
    DependencyAlternative,
    DependencyKind,
    PortMapping,
    ResourceTypeRegistry,
    STRING,
    TCP_PORT,
    as_key,
    check_registry,
    define,
)
from repro.core.errors import WellFormednessError
from repro.core.wellformed import assert_well_formed


def reg_with(*types):
    return ResourceTypeRegistry(types)


def problems_of(*types):
    return check_registry(reg_with(*types))


MACHINE = define("M", "1").build()


class TestCondition1Pending:
    def test_unregistered_dependency_reported(self):
        t = define("X", "1").inside("Nowhere 9").build()
        problems = problems_of(t)
        assert any("unregistered" in p for p in problems)

    def test_registered_dependency_clean(self):
        t = define("X", "1").inside("M 1").build()
        assert problems_of(MACHINE, t) == []


class TestCondition2Machines:
    def test_machine_with_inputs_reported(self):
        from repro.core.resource_type import ResourceType
        from repro.core.ports import Port

        bad = ResourceType(
            key=as_key("BadMachine 1"),
            input_ports=(Port("x", STRING),),
        )
        problems = problems_of(bad)
        assert any("machine" in p for p in problems)


class TestCondition3Mapping:
    def test_unmapped_input_reported(self):
        t = define("X", "1").inside("M 1").input("lonely", STRING).build()
        problems = problems_of(MACHINE, t)
        assert any("never mapped" in p for p in problems)

    def test_doubly_mapped_input_reported(self):
        provider = (
            define("P", "1").inside("M 1").output("o", STRING, "v").build()
        )
        t = (
            define("X", "1")
            .inside("M 1")
            .env("P 1", o="val")
            .peer("P 1", o="val")
            .input("val", STRING)
            .build()
        )
        problems = problems_of(MACHINE, provider, t)
        assert any("mapped 2 times" in p for p in problems)

    def test_mapping_unknown_input_reported(self):
        provider = (
            define("P", "1").inside("M 1").output("o", STRING, "v").build()
        )
        t = define("X", "1").inside("M 1").env("P 1", o="ghost").build()
        problems = problems_of(MACHINE, provider, t)
        assert any("unknown" in p and "ghost" in p for p in problems)

    def test_mapping_missing_provider_output_reported(self):
        provider = define("P", "1").inside("M 1").build()
        t = (
            define("X", "1")
            .inside("M 1")
            .env("P 1", ghost_output="val")
            .input("val", STRING)
            .build()
        )
        problems = problems_of(MACHINE, provider, t)
        assert any("does not declare" in p for p in problems)

    def test_type_mismatch_reported(self):
        provider = (
            define("P", "1").inside("M 1").output("o", STRING, "v").build()
        )
        t = (
            define("X", "1")
            .inside("M 1")
            .env("P 1", o="val")
            .input("val", TCP_PORT)  # string does not fit tcp_port
            .build()
        )
        problems = problems_of(MACHINE, provider, t)
        assert any("does not fit" in p for p in problems)

    def test_subtype_output_fits_wider_input(self):
        from repro.core import HOSTNAME

        provider = (
            define("P", "1").inside("M 1").output("o", HOSTNAME, "h").build()
        )
        t = (
            define("X", "1")
            .inside("M 1")
            .env("P 1", o="val")
            .input("val", STRING)  # hostname <: string
            .build()
        )
        assert problems_of(MACHINE, provider, t) == []

    def test_abstract_type_may_leave_inputs_unmapped(self):
        t = (
            define("Abs", abstract=True)
            .inside("M 1")
            .input("later", STRING)
            .build()
        )
        assert problems_of(MACHINE, t) == []


class TestCondition4Acyclicity:
    def test_peer_cycle_reported(self):
        a = define("A", "1").inside("M 1").peer("B 1").build()
        b = define("B", "1").inside("M 1").peer("A 1").build()
        problems = problems_of(MACHINE, a, b)
        assert any("cycle" in p for p in problems)

    def test_self_cycle_reported(self):
        a = define("Selfish", "1").inside("M 1").peer("Selfish 1").build()
        problems = problems_of(MACHINE, a)
        assert any("cycle" in p for p in problems)

    def test_diamond_is_fine(self):
        base = define("Base", "1").inside("M 1").build()
        left = define("L", "1").inside("M 1").env("Base 1").build()
        right = define("R", "1").inside("M 1").env("Base 1").build()
        top = define("T", "1").inside("M 1").env("L 1").env("R 1").build()
        assert problems_of(MACHINE, base, left, right, top) == []


class TestStaticPorts:
    def test_static_output_reading_dynamic_config_reported(self):
        from repro.core import config_ref

        t = (
            define("X", "1")
            .inside("M 1")
            .config("dyn", STRING, "v")
            .output("statout", STRING, config_ref("dyn"), static=True)
            .build()
        )
        problems = problems_of(MACHINE, t)
        assert any("static output" in p for p in problems)

    def test_static_output_of_static_config_ok(self):
        from repro.core import config_ref

        t = (
            define("X", "1")
            .inside("M 1")
            .config("stat", STRING, "v", static=True)
            .output("statout", STRING, config_ref("stat"), static=True)
            .build()
        )
        assert problems_of(MACHINE, t) == []


class TestReverseTargets:
    def test_reverse_filled_input_exempt(self):
        container = (
            define("Container", "1")
            .inside("M 1")
            .input("extra", STRING)  # only fillable in reverse
            .output("c", STRING, "x")
            .build()
        )
        servlet_dep = Dependency(
            DependencyKind.INSIDE,
            (
                DependencyAlternative(
                    as_key("Container 1"),
                    PortMapping.of(c="c_in"),
                    PortMapping.of(push="extra"),
                ),
            ),
        )
        servlet = (
            define("Servlet", "1")
            .inside_dep(servlet_dep)
            .input("c_in", STRING)
            .output("push", STRING, "payload", static=True)
            .build()
        )
        assert problems_of(MACHINE, container, servlet) == []

    def test_reverse_mapping_from_dynamic_output_reported(self):
        container = (
            define("Container2", "1")
            .inside("M 1")
            .input("extra", STRING)
            .output("c", STRING, "x")
            .build()
        )
        dep = Dependency(
            DependencyKind.INSIDE,
            (
                DependencyAlternative(
                    as_key("Container2 1"),
                    PortMapping.of(c="c_in"),
                    PortMapping.of(push="extra"),
                ),
            ),
        )
        servlet = (
            define("Servlet2", "1")
            .inside_dep(dep)
            .input("c_in", STRING)
            .output("push", STRING, "payload")  # dynamic!
            .build()
        )
        problems = problems_of(MACHINE, container, servlet)
        assert any("static output port" in p for p in problems)


class TestExpressionTyping:
    """Static type checking of port-value expressions."""

    def test_constant_must_inhabit_type(self):
        t = (
            define("X", "1").inside("M 1")
            .config("port", TCP_PORT, "eighty")
            .build()
        )
        problems = problems_of(MACHINE, t)
        assert any("does not inhabit declared type" in p for p in problems)

    def test_unset_default_allowed(self):
        t = define("X", "1").inside("M 1").config("port", TCP_PORT).build()
        assert problems_of(MACHINE, t) == []

    def test_record_expression_fields_checked(self):
        from repro.core import RecordExpr, RecordType, Lit

        record = RecordType.of(host=STRING, port=TCP_PORT)
        t = (
            define("X", "1").inside("M 1")
            .output("o", record,
                    RecordExpr.of(host=Lit("h"), prot=Lit(80)))
            .build()
        )
        problems = problems_of(MACHINE, t)
        assert any("misses fields ['port']" in p for p in problems)
        assert any("undeclared fields ['prot']" in p for p in problems)

    def test_ref_path_into_scalar_reported(self):
        from repro.core import config_ref

        t = (
            define("X", "1").inside("M 1")
            .config("port", TCP_PORT, 80)
            .output("o", STRING, config_ref("port", "value"))
            .build()
        )
        problems = problems_of(MACHINE, t)
        assert any("drills into field" in p for p in problems)

    def test_ref_unknown_record_field_reported(self):
        from repro.core import Lit, RecordType, input_ref

        machine = (
            define("M2", "1")
            .output("rec", RecordType.of(host=STRING), Lit({"host": "h"}))
            .build()
        )
        from repro.core import ResourceTypeRegistry, check_registry

        t = (
            define("X2", "1").inside("M2 1", rec="rec")
            .input("rec", RecordType.of(host=STRING))
            .output("o", STRING, input_ref("rec", "prot"))
            .build()
        )
        problems = check_registry(ResourceTypeRegistry([machine, t]))
        assert any("unknown field 'prot'" in p for p in problems)

    def test_ref_type_mismatch_reported(self):
        from repro.core import config_ref

        t = (
            define("X", "1").inside("M 1")
            .config("name", STRING, "x")
            .output("o", TCP_PORT, config_ref("name"))
            .build()
        )
        problems = problems_of(MACHINE, t)
        assert any("does not fit declared type" in p for p in problems)

    def test_format_requires_stringlike(self):
        from repro.core import Format, Lit

        t = (
            define("X", "1").inside("M 1")
            .output("o", TCP_PORT, Format.of("{x}", x=Lit(1)))
            .build()
        )
        problems = problems_of(MACHINE, t)
        assert any("produces a string" in p for p in problems)

    def test_list_elements_checked(self):
        from repro.core import ListExpr, ListType, Lit

        t = (
            define("X", "1").inside("M 1")
            .config("xs", ListType(TCP_PORT),
                    ListExpr((Lit(80), Lit("http"))))
            .build()
        )
        problems = problems_of(MACHINE, t)
        assert any("[1]" in p and "does not inhabit" in p for p in problems)

    def test_concrete_unassigned_output_reported(self):
        t = define("X", "1").inside("M 1").output("o", STRING).build()
        problems = problems_of(MACHINE, t)
        assert any("never assigned a value" in p for p in problems)

    def test_abstract_unassigned_output_allowed(self):
        t = (
            define("Abs", abstract=True)
            .inside("M 1")
            .output("o", STRING)
            .build()
        )
        assert problems_of(MACHINE, t) == []

    def test_valid_drilling_accepted(self):
        from repro.core import HOSTNAME, RecordType, RecordExpr, Lit, input_ref

        machine = (
            define("M3", "1")
            .output("host", RecordType.of(hostname=HOSTNAME),
                    Lit({"hostname": "h"}))
            .build()
        )
        t = (
            define("X3", "1").inside("M3 1", host="host")
            .input("host", RecordType.of(hostname=HOSTNAME))
            .output("o", STRING, input_ref("host", "hostname"))
            .build()
        )
        from repro.core import ResourceTypeRegistry, check_registry

        assert check_registry(ResourceTypeRegistry([machine, t])) == []


class TestAssertWellFormed:
    def test_raises_with_all_problems(self):
        t = define("X", "1").inside("Missing 1").input("u", STRING).build()
        with pytest.raises(WellFormednessError) as excinfo:
            assert_well_formed(reg_with(t))
        message = str(excinfo.value)
        assert "unregistered" in message

    def test_clean_passes(self, registry):
        assert_well_formed(registry)  # the standard library is well-formed
