"""CLI fault tolerance: chaos deploys, retry flags, and --resume."""

import io
import json

import pytest

from repro.cli import main

STACK_DSL = """
resource "MiniCache" 1.0 driver "service" {
  inside "Server" { host -> host }
  input host: { hostname: hostname, ip_address: string,
                os_user_name: string }
  config port: tcp_port = 7070
  output kv: { host: hostname, port: tcp_port } =
    { host = input.host.hostname, port = config.port }
}
"""


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def stack(tmp_path):
    dsl = tmp_path / "stack.engage"
    dsl.write_text(STACK_DSL)
    spec = tmp_path / "spec.json"
    spec.write_text(
        json.dumps(
            [
                {"id": "box", "key": "Ubuntu-Linux 10.04",
                 "config_port": {"hostname": "chaoscli"}},
                {"id": "cache", "key": "MiniCache 1.0",
                 "inside": {"id": "box"}},
            ]
        )
    )
    return str(dsl), str(spec), tmp_path


class TestChaosDeploy:
    def test_retries_ride_through_chaos(self, stack):
        dsl, spec, tmp_path = stack
        code, output = run(
            ["deploy", "--types", dsl, spec,
             "--chaos-rate", "1.0", "--chaos-seed", "3",
             "--max-retries", "3", "--backoff", "0.5"]
        )
        assert code == 0
        assert "chaos: injecting faults" in output
        assert "recovered from" in output
        assert "total backoff" in output

    def test_chaos_output_is_deterministic(self, stack):
        dsl, spec, _ = stack
        argv = ["deploy", "--types", dsl, spec,
                "--chaos-rate", "0.8", "--chaos-seed", "11",
                "--max-retries", "3"]
        code_a, out_a = run(argv)
        code_b, out_b = run(argv)
        assert code_a == code_b == 0
        assert out_a == out_b

    def test_chaos_without_retries_fails_resumably(self, stack):
        dsl, spec, tmp_path = stack
        bundle = tmp_path / "bundle.json"
        code, output = run(
            ["deploy", "--types", dsl, spec,
             "--chaos-rate", "1.0", "--chaos-seed", "0",
             "--save", str(bundle)]
        )
        assert code == 1
        assert "deployment FAILED" in output
        assert "completed:" in output and "skipped:" in output
        assert f"deploy --resume {bundle}" in output
        state = json.loads(bundle.read_text())["state"]
        assert state["format"] == "engage-state-2"
        assert "journal" in state

    def test_retry_flags_without_chaos_are_harmless(self, stack):
        dsl, spec, _ = stack
        code, output = run(
            ["deploy", "--types", dsl, spec, "--max-retries", "2",
             "--timeout", "90"]
        )
        assert code == 0
        assert "recovered" not in output


class TestResume:
    def _failed_bundle(self, stack):
        dsl, spec, tmp_path = stack
        bundle = tmp_path / "bundle.json"
        code, _ = run(
            ["deploy", "--types", dsl, spec,
             "--chaos-rate", "1.0", "--chaos-seed", "0",
             "--save", str(bundle)]
        )
        assert code == 1
        return str(bundle)

    def test_resume_completes_deployment(self, stack):
        bundle = self._failed_bundle(stack)
        code, output = run(["deploy", "--resume", bundle])
        assert code == 0
        assert "resuming:" in output
        assert f"bundle saved to {bundle}" in output

        code, output = run(["status", bundle])
        assert code == 0
        assert "active" in output
        assert "uninstalled" not in output

    def test_resume_with_retries_through_fresh_chaos(self, stack):
        bundle = self._failed_bundle(stack)
        code, output = run(
            ["deploy", "--resume", bundle,
             "--chaos-rate", "1.0", "--chaos-seed", "9",
             "--max-retries", "3", "--backoff", "0.2"]
        )
        assert code == 0
        assert "chaos: injecting faults" in output

    def test_resume_requires_journal(self, stack):
        dsl, spec, tmp_path = stack
        bundle = tmp_path / "clean.json"
        code, _ = run(
            ["deploy", "--types", dsl, spec, "--save", str(bundle)]
        )
        assert code == 0
        # A successful deploy leaves a complete journal; strip it to get
        # a v1 bundle, which must be rejected.
        payload = json.loads(bundle.read_text())
        payload["state"].pop("journal", None)
        payload["state"]["format"] = "engage-state-1"
        bundle.write_text(json.dumps(payload))
        code, output = run(["deploy", "--resume", str(bundle)])
        assert code == 2
        assert "no deployment journal" in output

    def test_deploy_without_spec_or_resume_errors(self):
        code, output = run(["deploy"])
        assert code == 2
        assert "partial spec is required" in output


class TestInjectFaultInstanceId:
    def test_output_names_the_instance(self, stack):
        dsl, spec, tmp_path = stack
        bundle = tmp_path / "bundle.json"
        code, _ = run(
            ["deploy", "--types", dsl, spec, "--save", str(bundle)]
        )
        assert code == 0
        code, output = run(["inject-fault", str(bundle), "cache"])
        assert code == 0
        assert "instance 'cache'" in output
