"""Resource instances and installation specifications."""

import pytest

from repro.core import (
    DependencyLink,
    InstallSpec,
    InstanceRef,
    PartialInstallSpec,
    PartialInstance,
    ResourceInstance,
    as_key,
)
from repro.core.errors import CycleError, SpecError


def link(kind, target_id, key="T 1"):
    return DependencyLink(kind, InstanceRef(target_id, as_key(key)))


def machine(instance_id="m"):
    return ResourceInstance(id=instance_id, key=as_key("M 1"))


def hosted(instance_id, container_id, peers=(), env=()):
    return ResourceInstance(
        id=instance_id,
        key=as_key("H 1"),
        inside=link("inside", container_id),
        peers=tuple(link("peer", p) for p in peers),
        environment=tuple(link("environment", e) for e in env),
    )


class TestPartialInstallSpec:
    def test_add_and_lookup(self):
        spec = PartialInstallSpec(
            [PartialInstance("a", as_key("M 1"))]
        )
        assert "a" in spec
        assert spec["a"].key == as_key("M 1")
        assert spec.ids() == ["a"]

    def test_duplicate_rejected(self):
        spec = PartialInstallSpec([PartialInstance("a", as_key("M 1"))])
        with pytest.raises(SpecError):
            spec.add(PartialInstance("a", as_key("M 1")))

    def test_missing_lookup(self):
        with pytest.raises(SpecError):
            PartialInstallSpec()["ghost"]


class TestInstallSpec:
    def test_duplicate_rejected(self):
        spec = InstallSpec([machine()])
        with pytest.raises(SpecError):
            spec.add(machine())

    def test_replace_instance(self):
        spec = InstallSpec([machine()])
        spec.replace_instance(
            ResourceInstance(id="m", key=as_key("M 2"))
        )
        assert spec["m"].key == as_key("M 2")

    def test_replace_missing_rejected(self):
        with pytest.raises(SpecError):
            InstallSpec().replace_instance(machine())

    def test_machines(self):
        spec = InstallSpec([machine(), hosted("h", "m")])
        assert [m.id for m in spec.machines()] == ["m"]

    def test_machine_id_follows_inside_chain(self):
        spec = InstallSpec(
            [machine(), hosted("mid", "m"), hosted("leaf", "mid")]
        )
        assert spec["leaf"].machine_id(spec) == "m"

    def test_instances_on_machine(self):
        spec = InstallSpec(
            [
                machine("m1"),
                machine("m2"),
                hosted("a", "m1"),
                hosted("b", "m2"),
            ]
        )
        assert [i.id for i in spec.instances_on_machine("m1")] == ["m1", "a"]

    def test_downstream_ids(self):
        spec = InstallSpec([machine(), hosted("h", "m")])
        assert spec.downstream_ids("m") == ["h"]
        assert spec.downstream_ids("h") == []


class TestTopologicalOrder:
    def test_dependencies_first(self):
        spec = InstallSpec(
            [
                machine(),
                hosted("db", "m"),
                hosted("app", "m", peers=["db"]),
            ]
        )
        order = [i.id for i in spec.topological_order()]
        assert order.index("m") < order.index("db") < order.index("app")

    def test_cycle_detected(self):
        a = ResourceInstance(
            id="a", key=as_key("X 1"), peers=(link("peer", "b"),)
        )
        b = ResourceInstance(
            id="b", key=as_key("X 1"), peers=(link("peer", "a"),)
        )
        with pytest.raises(CycleError):
            InstallSpec([a, b]).topological_order()

    def test_link_to_missing_instance(self):
        spec = InstallSpec([hosted("h", "ghost")])
        with pytest.raises(SpecError):
            spec.topological_order()

    def test_deterministic(self):
        spec = InstallSpec(
            [machine(), hosted("b", "m"), hosted("a", "m")]
        )
        assert [i.id for i in spec.topological_order()] == [
            i.id for i in spec.topological_order()
        ]


class TestMachineOrder:
    def test_cross_machine_dependency_orders_machines(self):
        spec = InstallSpec(
            [
                machine("app_node"),
                machine("db_node"),
                hosted("db", "db_node"),
                hosted("app", "app_node", peers=["db"]),
            ]
        )
        order = spec.machine_order()
        assert order.index("db_node") < order.index("app_node")

    def test_independent_machines_sorted(self):
        spec = InstallSpec([machine("b"), machine("a")])
        assert spec.machine_order() == ["a", "b"]

    def test_cross_machine_cycle_detected(self):
        a = ResourceInstance(id="ma", key=as_key("M 1"))
        b = ResourceInstance(id="mb", key=as_key("M 1"))
        on_a = ResourceInstance(
            id="xa",
            key=as_key("X 1"),
            inside=link("inside", "ma"),
            peers=(link("peer", "xb"),),
        )
        on_b = ResourceInstance(
            id="xb",
            key=as_key("X 1"),
            inside=link("inside", "mb"),
            peers=(link("peer", "xa"),),
        )
        with pytest.raises(CycleError):
            InstallSpec([a, b, on_a, on_b]).machine_order()


class TestResourceInstance:
    def test_links_ordering(self):
        instance = hosted("h", "m", peers=["p"], env=["e"])
        kinds = [l.kind for l in instance.links()]
        assert kinds == ["inside", "environment", "peer"]

    def test_upstream_ids(self):
        instance = hosted("h", "m", peers=["p"])
        assert instance.upstream_ids() == ["m", "p"]

    def test_is_machine(self):
        assert machine().is_machine()
        assert not hosted("h", "m").is_machine()

    def test_inside_cycle_detected(self):
        a = ResourceInstance(
            id="a", key=as_key("X 1"), inside=link("inside", "b")
        )
        b = ResourceInstance(
            id="b", key=as_key("X 1"), inside=link("inside", "a")
        )
        spec = InstallSpec([a, b])
        with pytest.raises(CycleError):
            a.machine_id(spec)
