"""End-to-end scenarios across all layers."""

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import UnsatisfiableError
from repro.config import ConfigurationEngine
from repro.django import SimDatabase, package_application, table1_apps
from repro.runtime import (
    DeploymentEngine,
    ProcessMonitor,
    add_monitoring,
    provision_partial_spec,
)


class TestOpenMrsEndToEnd:
    """The S2 walkthrough, from Figure 2 to a running system."""

    def test_full_lifecycle(self, registry, infrastructure, drivers,
                            openmrs_partial):
        engine = ConfigurationEngine(registry)
        deploy = DeploymentEngine(registry, infrastructure, drivers)

        result = engine.configure(openmrs_partial)
        system = deploy.deploy(result.spec)
        assert system.is_deployed()
        assert infrastructure.network.can_connect("demotest", 8080)

        # The reverse static mapping materialised in Tomcat's server.xml.
        machine = infrastructure.network.machine("demotest")
        server_xml = machine.fs.read_file("/opt/tomcat-6.0.18/conf/server.xml")
        assert "openmrs.xml" in server_xml

        deploy.shutdown(system)
        assert not infrastructure.network.can_connect("demotest", 8080)
        deploy.start(system)
        assert system.is_deployed()


class TestDjangoPlatform:
    def app_partial(self, key, *, webserver="Gunicorn 0.13",
                    database="MySQL 5.1", extras=()):
        instances = [
            PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "web1"}),
            PartialInstance("app", key, inside_id="node"),
            PartialInstance("web", as_key(webserver), inside_id="node"),
            PartialInstance("db", as_key(database), inside_id="node"),
        ]
        for index, extra in enumerate(extras):
            instances.append(
                PartialInstance(f"extra{index}", as_key(extra),
                                inside_id="node")
            )
        return PartialInstallSpec(instances)

    def test_every_table1_app_deploys_without_custom_code(
        self, registry, infrastructure, drivers
    ):
        """Table 1's headline: zero app-specific deployment code."""
        engine = ConfigurationEngine(registry, verify_registry=False)
        deploy = DeploymentEngine(registry, infrastructure, drivers)
        for index, app in enumerate(table1_apps()):
            key = package_application(app, registry, infrastructure)
            partial = PartialInstallSpec(
                [
                    PartialInstance(
                        f"node{index}", as_key("Ubuntu-Linux 10.04"),
                        config={"hostname": f"host{index}"},
                    ),
                    PartialInstance(f"app{index}", key,
                                    inside_id=f"node{index}"),
                ]
            )
            partial = provision_partial_spec(registry, partial,
                                             infrastructure)
            spec = engine.configure(partial).spec
            system = deploy.deploy(spec)
            assert system.is_deployed(), app.name

    def test_sqlite_configuration(self, registry, infrastructure, drivers):
        app = table1_apps()[0]
        key = package_application(app, registry, infrastructure)
        partial = provision_partial_spec(
            registry,
            self.app_partial(key, database="SQLite 3.7"),
            infrastructure,
        )
        spec = ConfigurationEngine(registry).configure(partial).spec
        assert spec["app"].inputs["database"]["engine"] == "sqlite"
        system = DeploymentEngine(registry, infrastructure, drivers).deploy(
            spec
        )
        assert system.is_deployed()
        machine = infrastructure.network.machine("web1")
        database = SimDatabase(machine.fs, "/var/lib/sqlite/app.json")
        assert "notes" in database.tables()

    def test_apache_configuration(self, registry, infrastructure, drivers):
        app = table1_apps()[0]
        key = package_application(app, registry, infrastructure)
        partial = provision_partial_spec(
            registry,
            self.app_partial(key, webserver="Apache-HTTPD 2.2"),
            infrastructure,
        )
        spec = ConfigurationEngine(registry).configure(partial).spec
        assert spec["app"].inputs["webserver"]["kind"] == "apache"
        assert spec["app"].outputs["url"] == "http://web1:80/"

    def test_conflicting_webserver_pins_unsat(
        self, registry, infrastructure
    ):
        """Pinning both Gunicorn and Apache contradicts the exactly-one
        webserver dependency -- detected statically, before any install."""
        app = table1_apps()[0]
        key = package_application(app, registry, infrastructure)
        partial = self.app_partial(
            key, extras=("Apache-HTTPD 2.2",)
        )  # web (gunicorn) + extra apache
        partial = provision_partial_spec(registry, partial, infrastructure)
        with pytest.raises(UnsatisfiableError):
            ConfigurationEngine(registry).configure(partial)

    def test_monitored_full_stack(self, registry, infrastructure, drivers):
        webapp = next(a for a in table1_apps() if a.name == "WebApp")
        key = package_application(webapp, registry, infrastructure)
        partial = self.app_partial(key)
        partial = provision_partial_spec(registry, partial, infrastructure)
        partial = add_monitoring(registry, partial)
        spec = ConfigurationEngine(registry).configure(partial).spec
        # WebApp pulls redis + memcached + celery + rabbitmq transitively.
        key_names = {i.key.name for i in spec}
        assert {"Redis", "Memcached", "Celery", "RabbitMQ", "Monit"} <= key_names

        system = DeploymentEngine(registry, infrastructure, drivers).deploy(
            spec
        )
        monitor = ProcessMonitor(system)
        monitor.generate_config()
        redis_id = next(i.id for i in spec if i.key.name == "Redis")
        system.driver(redis_id).process.fail()
        events = monitor.poll()
        assert [e.instance_id for e in events] == [redis_id]
        assert system.driver(redis_id).process.is_running()


class TestCostModel:
    def test_cached_install_much_faster(self, registry, drivers):
        """The E4 shape: a cold-internet install takes several times the
        cached install."""
        from repro.library import standard_infrastructure

        def deploy_once(use_cache):
            infrastructure = standard_infrastructure(use_cache=use_cache)
            partial = PartialInstallSpec(
                [
                    PartialInstance("server", as_key("Mac-OSX 10.6"),
                                    config={"hostname": "h"}),
                    PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                                    inside_id="server"),
                    PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                                    inside_id="tomcat"),
                ]
            )
            if use_cache:
                for name, version in (
                    ("jdk", "1.6"), ("jre", "1.6"), ("tomcat", "6.0.18"),
                    ("mysql", "5.1"), ("openmrs", "1.8"),
                ):
                    infrastructure.downloads.prefetch(name, version)
            spec = ConfigurationEngine(registry).configure(partial).spec
            from repro.library import standard_drivers

            DeploymentEngine(
                registry, infrastructure, standard_drivers()
            ).deploy(spec)
            return infrastructure.clock.now

        internet = deploy_once(use_cache=False)
        cached = deploy_once(use_cache=True)
        assert internet > 2.5 * cached
