"""Propagation checked against a hand-rolled reference oracle.

Random dependency *chains* where each service's output appends its own
name to its upstream's value let us predict exactly what must come out
of topological propagation -- any ordering or wiring bug shows up as a
wrong accumulated string.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ConfigurationEngine
from repro.core import (
    Format,
    Lit,
    PartialInstallSpec,
    PartialInstance,
    ResourceTypeRegistry,
    STRING,
    as_key,
    config_ref,
    define,
    input_ref,
)


def chain_registry(names: list[str]) -> ResourceTypeRegistry:
    """S0 <- S1 <- ... each appending "/<name>" to the chain value."""
    registry = ResourceTypeRegistry()
    registry.register(
        define("M", "1", driver="machine")
        .config("hostname", STRING, "m")
        .output("root", STRING, Lit("ROOT"))
        .build()
    )
    previous: str | None = None
    for name in names:
        builder = define(name, "1").inside("M 1")
        if previous is None:
            builder.inside("M 1", root="prev")
        else:
            builder.inside("M 1")
            builder.env(f"{previous} 1", chain="prev")
        builder.input("prev", STRING)
        builder.config("name", STRING, name, static=True)
        builder.output(
            "chain",
            STRING,
            Format.of("{p}/{n}", p=input_ref("prev"), n=config_ref("name")),
        )
        registry.register(builder.build())
        previous = name
    return registry


names_strategy = st.lists(
    st.integers(min_value=0, max_value=99).map(lambda i: f"Svc{i}"),
    min_size=1,
    max_size=10,
    unique=True,
)


@settings(max_examples=50, deadline=None)
@given(names_strategy)
def test_chain_value_accumulates_in_order(names):
    registry = chain_registry(names)
    partial = PartialInstallSpec(
        [
            PartialInstance("m", as_key("M 1")),
            PartialInstance("top", as_key(f"{names[-1]} 1"), inside_id="m"),
        ]
    )
    engine = ConfigurationEngine(registry, verify_registry=False)
    spec = engine.configure(partial).spec
    expected = "ROOT" + "".join(f"/{name}" for name in names)
    assert spec["top"].outputs["chain"] == expected


@settings(max_examples=30, deadline=None)
@given(names_strategy, st.integers(min_value=0, max_value=9))
def test_chain_prefix_observable_at_every_link(names, pick):
    """Every intermediate service's output is the prefix the oracle
    predicts -- not just the chain head."""
    registry = chain_registry(names)
    picked = names[pick % len(names)]
    partial = PartialInstallSpec(
        [
            PartialInstance("m", as_key("M 1")),
            PartialInstance("top", as_key(f"{names[-1]} 1"), inside_id="m"),
            PartialInstance("probe", as_key(f"{picked} 1"), inside_id="m"),
        ]
    )
    engine = ConfigurationEngine(registry, verify_registry=False)
    spec = engine.configure(partial).spec
    index = names.index(picked)
    expected = "ROOT" + "".join(f"/{n}" for n in names[: index + 1])
    assert spec["probe"].outputs["chain"] == expected


def test_fleet_scale_deployment(registry, infrastructure, drivers):
    """A 25-machine fleet, each with its own MySQL, deploys fully and in
    reasonable wall-clock -- a scale smoke test."""
    instances = []
    for index in range(25):
        instances.append(
            PartialInstance(
                f"m{index:02d}", as_key("Ubuntu-Linux 10.04"),
                config={"hostname": f"fleet{index:02d}"},
            )
        )
        instances.append(
            PartialInstance(
                f"db{index:02d}", as_key("MySQL 5.1"),
                inside_id=f"m{index:02d}",
            )
        )
    from repro.runtime import DeploymentEngine

    spec = ConfigurationEngine(registry).configure(
        PartialInstallSpec(instances)
    ).spec
    assert len(spec) == 50
    system = DeploymentEngine(registry, infrastructure, drivers).deploy(spec)
    assert system.is_deployed()
    for index in range(25):
        assert infrastructure.network.can_connect(f"fleet{index:02d}", 3306)
