"""CNF formula construction and name mapping."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sat import CnfFormula


class TestVariables:
    def test_new_var_sequential(self):
        f = CnfFormula()
        assert f.new_var() == 1
        assert f.new_var() == 2
        assert f.num_vars == 2

    def test_named_variables(self):
        f = CnfFormula()
        v = f.var("rsrc(server)")
        assert f.var("rsrc(server)") == v  # memoised
        assert f.name_of(v) == "rsrc(server)"
        assert f.name_of(-v) == "rsrc(server)"
        assert f.has_name("rsrc(server)")

    def test_duplicate_explicit_name_rejected(self):
        f = CnfFormula()
        f.new_var("x")
        with pytest.raises(ConfigurationError):
            f.new_var("x")

    def test_name_of_unnamed(self):
        f = CnfFormula()
        v = f.new_var()
        assert f.name_of(v) is None


class TestClauses:
    def test_add_clause(self):
        f = CnfFormula()
        a, b = f.new_var(), f.new_var()
        f.add_clause([a, -b])
        assert list(f.clauses()) == [(a, -b)]
        assert f.num_clauses == 1

    def test_empty_clause_rejected(self):
        f = CnfFormula()
        with pytest.raises(ConfigurationError):
            f.add_clause([])

    def test_zero_literal_rejected(self):
        f = CnfFormula()
        f.new_var()
        with pytest.raises(ConfigurationError):
            f.add_clause([0])

    def test_out_of_range_literal_rejected(self):
        f = CnfFormula()
        f.new_var()
        with pytest.raises(ConfigurationError):
            f.add_clause([5])

    def test_helpers(self):
        f = CnfFormula()
        a, b, c = f.new_var(), f.new_var(), f.new_var()
        f.add_fact(a)
        f.add_implies(a, b)
        f.add_implies_clause(a, [b, c])
        assert list(f.clauses()) == [(a,), (-a, b), (-a, b, c)]


class TestCopyAndDecode:
    def test_copy_is_independent(self):
        f = CnfFormula()
        a = f.var("a")
        f.add_fact(a)
        g = f.copy()
        g.add_fact(-a)
        assert f.num_clauses == 1
        assert g.num_clauses == 2
        assert g.var("a") == a

    def test_decode_model(self):
        f = CnfFormula()
        a, b = f.var("a"), f.var("b")
        model = {a: True, b: False}
        assert f.decode_model(model) == {"a": True, "b": False}

    def test_decode_missing_defaults_false(self):
        f = CnfFormula()
        f.var("a")
        assert f.decode_model({}) == {"a": False}
