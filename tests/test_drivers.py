"""Generic drivers against the simulated infrastructure."""

import pytest

from repro.core import (
    InstallSpec,
    PartialInstallSpec,
    PartialInstance,
    as_key,
)
from repro.core.errors import DriverError
from repro.config import ConfigurationEngine
from repro.drivers import (
    ACTIVE,
    DriverContext,
    DriverRegistry,
    INACTIVE,
    NullDriver,
    PackageDriver,
    ServiceDriver,
    UNINSTALLED,
    package_slug,
)
from repro.runtime import DeploymentEngine


def make_context(registry, infrastructure, spec, instance_id):
    instance = spec[instance_id]
    machine_iid = instance.machine_id(spec)
    hostname = spec[machine_iid].config["hostname"]
    if not infrastructure.network.has_machine(hostname):
        infrastructure.add_machine(hostname)
    return DriverContext(
        instance=instance,
        resource_type=registry.effective(instance.key),
        machine=infrastructure.network.machine(hostname),
        infrastructure=infrastructure,
        spec=spec,
    )


@pytest.fixture
def openmrs_spec(registry, openmrs_partial):
    return ConfigurationEngine(registry).configure(openmrs_partial).spec


class TestPackageSlug:
    @pytest.mark.parametrize(
        "name, slug",
        [
            ("Tomcat", "tomcat"),
            ("MySQL-JDBC-Connector", "mysql-jdbc-connector"),
            ("JasperReports-Server", "jasperreports-server"),
            ("Python-Runtime", "python-runtime"),
        ],
    )
    def test_slugs(self, name, slug):
        assert package_slug(name) == slug


class TestNullDriver:
    def test_actions_cost_nothing(self, registry, infrastructure, openmrs_spec):
        context = make_context(
            registry, infrastructure, openmrs_spec, "mysql"
        )
        driver = NullDriver(context)
        before = infrastructure.clock.now
        driver.perform("install")
        assert driver.state == INACTIVE
        assert infrastructure.clock.now == before


class TestPackageDriver:
    def test_install_uses_oslpm(self, registry, infrastructure, openmrs_spec):
        java_id = next(
            i.id for i in openmrs_spec if i.key.name in ("JDK", "JRE")
        )
        context = make_context(registry, infrastructure, openmrs_spec, java_id)
        driver = PackageDriver(context)
        driver.perform("install")
        assert context.package_manager.is_installed(
            package_slug(openmrs_spec[java_id].key.name)
        )
        driver.perform("start")
        assert driver.state == ACTIVE

    def test_uninstall_removes_package(
        self, registry, infrastructure, openmrs_spec
    ):
        java_id = next(
            i.id for i in openmrs_spec if i.key.name in ("JDK", "JRE")
        )
        context = make_context(registry, infrastructure, openmrs_spec, java_id)
        driver = PackageDriver(context)
        driver.perform("install")
        driver.perform("uninstall")
        assert driver.state == UNINSTALLED
        assert not context.package_manager.is_installed("jdk")
        assert not context.package_manager.is_installed("jre")

    def test_wrong_state_transition_rejected(
        self, registry, infrastructure, openmrs_spec
    ):
        java_id = next(
            i.id for i in openmrs_spec if i.key.name in ("JDK", "JRE")
        )
        context = make_context(registry, infrastructure, openmrs_spec, java_id)
        driver = PackageDriver(context)
        with pytest.raises(DriverError):
            driver.perform("start")  # not installed yet


class TestServiceDriver:
    def test_start_spawns_process(self, registry, infrastructure, openmrs_spec):
        context = make_context(registry, infrastructure, openmrs_spec, "mysql")
        driver = ServiceDriver(context)
        driver.perform("install")
        driver.perform("start")
        assert driver.process is not None
        assert driver.process.is_running()
        assert infrastructure.network.can_connect("demotest", 3306)

    def test_stop_kills_process(self, registry, infrastructure, openmrs_spec):
        context = make_context(registry, infrastructure, openmrs_spec, "mysql")
        driver = ServiceDriver(context)
        driver.perform("install")
        driver.perform("start")
        driver.perform("stop")
        assert not infrastructure.network.can_connect("demotest", 3306)
        assert driver.state == INACTIVE

    def test_restart(self, registry, infrastructure, openmrs_spec):
        context = make_context(registry, infrastructure, openmrs_spec, "mysql")
        driver = ServiceDriver(context)
        driver.perform("install")
        driver.perform("start")
        first_pid = driver.process.pid
        driver.perform("restart")
        assert driver.process.pid != first_pid
        assert infrastructure.network.can_connect("demotest", 3306)

    def test_unreachable_dependency_fails_startup(
        self, registry, infrastructure, drivers, openmrs_spec
    ):
        """The paper's intermittent-failure hazard: starting OpenMRS
        before MySQL accepts connections must fail loudly."""
        deploy = DeploymentEngine(registry, infrastructure, drivers)
        machines = deploy._resolve_machines(openmrs_spec)
        all_drivers = deploy._create_drivers(openmrs_spec, machines)
        # Install everything but start nothing.
        for instance in openmrs_spec.topological_order():
            all_drivers[instance.id].perform("install")
        with pytest.raises(DriverError):
            all_drivers["openmrs"].perform("start")


class TestDriverRegistry:
    def test_register_and_create(self, registry, infrastructure, openmrs_spec):
        driver_registry = DriverRegistry()
        driver_registry.register("svc", ServiceDriver)
        context = make_context(registry, infrastructure, openmrs_spec, "mysql")
        driver = driver_registry.create("svc", context)
        assert isinstance(driver, ServiceDriver)

    def test_duplicate_name_rejected(self):
        driver_registry = DriverRegistry()
        driver_registry.register("svc", ServiceDriver)
        with pytest.raises(DriverError):
            driver_registry.register("svc", NullDriver)

    def test_unknown_name(self, registry, infrastructure, openmrs_spec):
        driver_registry = DriverRegistry()
        context = make_context(registry, infrastructure, openmrs_spec, "mysql")
        with pytest.raises(DriverError):
            driver_registry.create("ghost", context)

    def test_standard_names(self, drivers):
        for name in ("machine", "package", "archive", "service", "tomcat",
                     "mysql", "django-app", "monit", "gunicorn"):
            assert drivers.has(name)
