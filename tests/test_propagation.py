"""Port-value propagation and the configuration engine end-to-end."""

import pytest

from repro.core import (
    PartialInstallSpec,
    PartialInstance,
    as_key,
)
from repro.core.errors import (
    ConfigurationError,
    PortError,
    PortTypeError,
    UnsatisfiableError,
)
from repro.config import ConfigurationEngine


@pytest.fixture
def engine(registry):
    return ConfigurationEngine(registry)


@pytest.fixture
def result(engine, openmrs_partial):
    return engine.configure(openmrs_partial)


class TestValueFlow:
    def test_machine_outputs_from_config(self, result):
        server = result.spec["server"]
        assert server.outputs["host"]["hostname"] == "demotest"
        assert server.outputs["host"]["os_user_name"] == "root"

    def test_host_flows_into_tomcat(self, result):
        tomcat = result.spec["tomcat"]
        assert tomcat.inputs["host"]["hostname"] == "demotest"

    def test_config_default_applied(self, result):
        assert result.spec["tomcat"].config["manager_port"] == 8080

    def test_output_computed_from_input_and_config(self, result):
        tomcat = result.spec["tomcat"]
        assert tomcat.outputs["tomcat"]["hostname"] == "demotest"
        assert tomcat.outputs["tomcat"]["port"] == 8080

    def test_database_record_reaches_openmrs(self, result):
        openmrs = result.spec["openmrs"]
        database = openmrs.inputs["database"]
        assert database["engine"] == "mysql"
        assert database["host"] == "demotest"
        assert database["port"] == 3306

    def test_format_output(self, result):
        assert (
            result.spec["openmrs"].outputs["url"]
            == "http://demotest:8080/openmrs"
        )

    def test_explicit_config_override(self, engine, registry):
        partial = PartialInstallSpec(
            [
                PartialInstance(
                    "server", as_key("Mac-OSX 10.6"),
                    config={"hostname": "prod"},
                ),
                PartialInstance(
                    "tomcat",
                    as_key("Tomcat 6.0.18"),
                    inside_id="server",
                    config={"manager_port": 9090},
                ),
            ]
        )
        spec = engine.configure(partial).spec
        assert spec["tomcat"].config["manager_port"] == 9090
        assert spec["tomcat"].outputs["tomcat"]["port"] == 9090

    def test_unknown_config_name_rejected(self, engine):
        partial = PartialInstallSpec(
            [
                PartialInstance(
                    "server", as_key("Mac-OSX 10.6"),
                    config={"hostnam": "typo"},
                )
            ]
        )
        with pytest.raises(PortError):
            engine.configure(partial)

    def test_type_error_rejected(self, engine):
        partial = PartialInstallSpec(
            [
                PartialInstance(
                    "server", as_key("Mac-OSX 10.6"),
                    config={"hostname": "h"},
                ),
                PartialInstance(
                    "tomcat",
                    as_key("Tomcat 6.0.18"),
                    inside_id="server",
                    config={"manager_port": "eighty-eighty"},
                ),
            ]
        )
        with pytest.raises(PortTypeError):
            engine.configure(partial)


class TestStaticReverseFlow:
    def test_reverse_value_in_container_inputs(self, result):
        """OpenMRS's static webapp_config flows backwards into Tomcat."""
        tomcat = result.spec["tomcat"]
        assert (
            tomcat.inputs["extra_config"]
            == "conf/Catalina/localhost/openmrs.xml"
        )

    def test_neutral_when_no_dependent(self, engine):
        partial = PartialInstallSpec(
            [
                PartialInstance(
                    "server", as_key("Mac-OSX 10.6"),
                    config={"hostname": "h"},
                ),
                PartialInstance(
                    "tomcat", as_key("Tomcat 6.0.18"), inside_id="server"
                ),
            ]
        )
        spec = engine.configure(partial).spec
        assert spec["tomcat"].inputs["extra_config"] == ""


class TestLinks:
    def test_inside_links(self, result):
        assert result.spec["tomcat"].inside.target.id == "server"
        assert result.spec["openmrs"].inside.target.id == "tomcat"

    def test_peer_link(self, result):
        assert [l.target.id for l in result.spec["openmrs"].peers] == ["mysql"]

    def test_exactly_one_java_deployed(self, result):
        java_nodes = [
            i.id
            for i in result.spec
            if i.key.name in ("JDK", "JRE")
        ]
        assert len(java_nodes) == 1

    def test_environment_links_resolved(self, result):
        env_targets = [l.target.id for l in result.spec["tomcat"].environment]
        assert len(env_targets) == 1
        assert env_targets[0] in ("jdk", "jre")


class TestUnsat:
    def test_pinning_both_java_runtimes_is_unsat(self, engine, openmrs_partial):
        """Tomcat's env dep says exactly one Java runtime: pinning both in
        the partial spec yields contradictory exactly-one constraints."""
        openmrs_partial.add(
            PartialInstance("jdk_pin", as_key("JDK 1.6"), inside_id="server")
        )
        openmrs_partial.add(
            PartialInstance("jre_pin", as_key("JRE 1.6"), inside_id="server")
        )
        with pytest.raises(UnsatisfiableError):
            engine.configure(openmrs_partial)


class TestEngineOptions:
    def test_dpll_backend_agrees(self, registry, openmrs_partial):
        cdcl = ConfigurationEngine(registry, solver="cdcl").configure(
            openmrs_partial
        )
        dpll = ConfigurationEngine(
            registry, solver="dpll", verify_registry=False
        ).configure(openmrs_partial)
        assert set(cdcl.deployed_ids) == set(dpll.deployed_ids) or (
            # Both must at least deploy the mandatory instances.
            {"server", "tomcat", "openmrs", "mysql"}
            <= set(cdcl.deployed_ids) & set(dpll.deployed_ids)
        )

    def test_stats_exposed(self, result):
        assert result.constraint_stats.variables >= 6
        assert result.constraint_stats.clauses > 0
        assert result.solver_stats.propagations > 0
