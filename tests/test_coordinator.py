"""Multi-host coordination: per-node specs, waves, master/slave."""

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.config import ConfigurationEngine
from repro.runtime import (
    MasterCoordinator,
    machine_waves,
    provision_partial_spec,
    split_spec,
)


@pytest.fixture
def two_node_spec(registry, infrastructure):
    """App node (tomcat + openmrs) with MySQL on a dedicated db node."""
    partial = PartialInstallSpec(
        [
            PartialInstance("appnode", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "app1"}),
            PartialInstance("dbnode", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "db1"}),
            PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                            inside_id="appnode"),
            PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                            inside_id="tomcat"),
            PartialInstance("db", as_key("MySQL 5.1"), inside_id="dbnode"),
        ]
    )
    partial = provision_partial_spec(registry, partial, infrastructure)
    return ConfigurationEngine(registry).configure(partial).spec


class TestSplitSpec:
    def test_instances_grouped_by_machine(self, two_node_spec):
        per_node = split_spec(two_node_spec)
        assert set(per_node) == {"appnode", "dbnode"}
        app_ids = set(per_node["appnode"].ids())
        assert {"appnode", "tomcat", "openmrs"} <= app_ids
        assert "db" in per_node["dbnode"].ids()

    def test_cross_machine_links_dropped(self, two_node_spec):
        per_node = split_spec(two_node_spec)
        openmrs = per_node["appnode"]["openmrs"]
        assert all(
            link.target.id in per_node["appnode"]
            for link in openmrs.links()
        )

    def test_local_links_kept(self, two_node_spec):
        per_node = split_spec(two_node_spec)
        openmrs = per_node["appnode"]["openmrs"]
        assert openmrs.inside.target.id == "tomcat"

    def test_port_values_survive_split(self, two_node_spec):
        per_node = split_spec(two_node_spec)
        openmrs = per_node["appnode"]["openmrs"]
        assert openmrs.inputs["database"]["host"] == "db1"

    def test_sub_specs_are_valid_dags(self, two_node_spec):
        for sub in split_spec(two_node_spec).values():
            sub.topological_order()  # must not raise


class TestWaves:
    def test_db_before_app(self, two_node_spec):
        waves = machine_waves(two_node_spec)
        assert waves == [["dbnode"], ["appnode"]]

    def test_independent_machines_share_wave(self, registry, infrastructure):
        partial = PartialInstallSpec(
            [
                PartialInstance("a", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "a"}),
                PartialInstance("b", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "b"}),
                PartialInstance("db_a", as_key("MySQL 5.1"), inside_id="a"),
                PartialInstance("db_b", as_key("MySQL 5.1"), inside_id="b"),
            ]
        )
        partial = provision_partial_spec(registry, partial, infrastructure)
        spec = ConfigurationEngine(registry).configure(partial).spec
        assert machine_waves(spec) == [["a", "b"]]


class TestMasterCoordinator:
    def test_deploys_everything(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        deployment = coordinator.deploy(two_node_spec)
        assert deployment.is_deployed()
        assert set(deployment.states()) == set(two_node_spec.ids())

    def test_cross_machine_service_reachable(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        coordinator.deploy(two_node_spec)
        # OpenMRS on app1 talked to MySQL on db1 during startup; both live.
        assert infrastructure.network.can_connect("db1", 3306)
        assert infrastructure.network.can_connect("app1", 8080)

    def test_report_costs(self, registry, infrastructure, drivers, two_node_spec):
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        deployment = coordinator.deploy(two_node_spec)
        report = deployment.report
        assert set(report.per_machine_seconds) == {"appnode", "dbnode"}
        assert report.sequential_seconds == pytest.approx(
            sum(report.per_machine_seconds.values())
        )
        assert (
            report.parallel_makespan_seconds
            <= report.sequential_seconds + 1e-9
        )

    def test_slave_agent_installed_per_host(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        """S5.2: a slave instance of Engage runs on each target host --
        the coordinator installs the agent package before deploying."""
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        deployment = coordinator.deploy(two_node_spec)
        assert sorted(deployment.report.agents_installed) == ["app1", "db1"]
        for hostname in ("app1", "db1"):
            machine = infrastructure.network.machine(hostname)
            manager = infrastructure.package_manager(machine)
            assert manager.is_installed("engage-agent")

    def test_agent_install_idempotent(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        first = coordinator.deploy(two_node_spec)
        coordinator.shutdown(first)
        # Redeploy on the same machines: agents already present.
        second = coordinator.deploy(two_node_spec)
        assert second.report.agents_installed == []

    def test_shutdown_reverse_waves(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        deployment = coordinator.deploy(two_node_spec)
        coordinator.shutdown(deployment)
        from repro.drivers import INACTIVE

        assert set(deployment.states().values()) == {INACTIVE}
