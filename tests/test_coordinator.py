"""Multi-host coordination: per-node specs, waves, master/slave."""

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.config import ConfigurationEngine
from repro.runtime import (
    MasterCoordinator,
    machine_waves,
    provision_partial_spec,
    split_spec,
)


@pytest.fixture
def two_node_spec(registry, infrastructure):
    """App node (tomcat + openmrs) with MySQL on a dedicated db node."""
    partial = PartialInstallSpec(
        [
            PartialInstance("appnode", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "app1"}),
            PartialInstance("dbnode", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "db1"}),
            PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                            inside_id="appnode"),
            PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                            inside_id="tomcat"),
            PartialInstance("db", as_key("MySQL 5.1"), inside_id="dbnode"),
        ]
    )
    partial = provision_partial_spec(registry, partial, infrastructure)
    return ConfigurationEngine(registry).configure(partial).spec


class TestSplitSpec:
    def test_instances_grouped_by_machine(self, two_node_spec):
        per_node = split_spec(two_node_spec)
        assert set(per_node) == {"appnode", "dbnode"}
        app_ids = set(per_node["appnode"].ids())
        assert {"appnode", "tomcat", "openmrs"} <= app_ids
        assert "db" in per_node["dbnode"].ids()

    def test_cross_machine_links_dropped(self, two_node_spec):
        per_node = split_spec(two_node_spec)
        openmrs = per_node["appnode"]["openmrs"]
        assert all(
            link.target.id in per_node["appnode"]
            for link in openmrs.links()
        )

    def test_local_links_kept(self, two_node_spec):
        per_node = split_spec(two_node_spec)
        openmrs = per_node["appnode"]["openmrs"]
        assert openmrs.inside.target.id == "tomcat"

    def test_port_values_survive_split(self, two_node_spec):
        per_node = split_spec(two_node_spec)
        openmrs = per_node["appnode"]["openmrs"]
        assert openmrs.inputs["database"]["host"] == "db1"

    def test_sub_specs_are_valid_dags(self, two_node_spec):
        for sub in split_spec(two_node_spec).values():
            sub.topological_order()  # must not raise

    def test_instance_without_machine_context_is_own_group(
        self, registry, infrastructure
    ):
        """A top-level instance with no ``inside`` link *is* its machine
        context: it must land in its own sub-spec, keyed by its id."""
        partial = PartialInstallSpec(
            [
                PartialInstance(
                    "lonely", as_key("Ubuntu-Linux 10.04"),
                    config={"hostname": "solo"},
                ),
            ]
        )
        partial = provision_partial_spec(registry, partial, infrastructure)
        spec = ConfigurationEngine(registry).configure(partial).spec
        per_node = split_spec(spec)
        assert set(per_node) == {"lonely"}
        assert set(per_node["lonely"].ids()) == set(spec.ids())

    def test_cross_machine_links_dropped_exactly_once(self, two_node_spec):
        """Each cross-machine link disappears from exactly one side (its
        source); local links all survive, none are duplicated."""
        machine_of = {
            inst.id: inst.machine_id(two_node_spec)
            for inst in two_node_spec
        }
        cross = sum(
            1
            for inst in two_node_spec
            for link in inst.links()
            if machine_of[link.target.id] != machine_of[inst.id]
        )
        assert cross > 0  # openmrs -> db spans machines
        total_before = sum(
            len(list(inst.links())) for inst in two_node_spec
        )
        total_after = sum(
            len(list(inst.links()))
            for sub in split_spec(two_node_spec).values()
            for inst in sub
        )
        assert total_after == total_before - cross

    def test_single_machine_spec_round_trips_unchanged(
        self, registry, openmrs_partial
    ):
        """Splitting a single-machine spec must return that spec's
        instances verbatim -- links, inputs and outputs untouched."""
        spec = ConfigurationEngine(registry).configure(openmrs_partial).spec
        per_node = split_spec(spec)
        assert set(per_node) == {"server"}
        sub = per_node["server"]
        assert list(sub.ids()) == list(spec.ids())
        for instance in spec:
            assert sub[instance.id] == instance


class TestWaves:
    def test_db_before_app(self, two_node_spec):
        waves = machine_waves(two_node_spec)
        assert waves == [["dbnode"], ["appnode"]]

    def test_independent_machines_share_wave(self, registry, infrastructure):
        partial = PartialInstallSpec(
            [
                PartialInstance("a", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "a"}),
                PartialInstance("b", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "b"}),
                PartialInstance("db_a", as_key("MySQL 5.1"), inside_id="a"),
                PartialInstance("db_b", as_key("MySQL 5.1"), inside_id="b"),
            ]
        )
        partial = provision_partial_spec(registry, partial, infrastructure)
        spec = ConfigurationEngine(registry).configure(partial).spec
        assert machine_waves(spec) == [["a", "b"]]


class TestMasterCoordinator:
    def test_deploys_everything(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        deployment = coordinator.deploy(two_node_spec)
        assert deployment.is_deployed()
        assert set(deployment.states()) == set(two_node_spec.ids())

    def test_cross_machine_service_reachable(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        coordinator.deploy(two_node_spec)
        # OpenMRS on app1 talked to MySQL on db1 during startup; both live.
        assert infrastructure.network.can_connect("db1", 3306)
        assert infrastructure.network.can_connect("app1", 8080)

    def test_report_costs(self, registry, infrastructure, drivers, two_node_spec):
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        deployment = coordinator.deploy(two_node_spec)
        report = deployment.report
        assert set(report.per_machine_seconds) == {"appnode", "dbnode"}
        assert report.sequential_seconds == pytest.approx(
            sum(report.per_machine_seconds.values())
        )
        assert (
            report.parallel_makespan_seconds
            <= report.sequential_seconds + 1e-9
        )

    def test_slave_agent_installed_per_host(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        """S5.2: a slave instance of Engage runs on each target host --
        the coordinator installs the agent package before deploying."""
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        deployment = coordinator.deploy(two_node_spec)
        assert sorted(deployment.report.agents_installed) == ["app1", "db1"]
        for hostname in ("app1", "db1"):
            machine = infrastructure.network.machine(hostname)
            manager = infrastructure.package_manager(machine)
            assert manager.is_installed("engage-agent")

    def test_agent_install_idempotent(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        first = coordinator.deploy(two_node_spec)
        coordinator.shutdown(first)
        # Redeploy on the same machines: agents already present.
        second = coordinator.deploy(two_node_spec)
        assert second.report.agents_installed == []

    def test_same_wave_machines_deploy_concurrently(
        self, registry, infrastructure, drivers
    ):
        """Two independent machines share a wave, so the measured
        multi-host makespan beats the per-machine sum."""
        partial = PartialInstallSpec(
            [
                PartialInstance("a", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "a"}),
                PartialInstance("b", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "b"}),
                PartialInstance("db_a", as_key("MySQL 5.1"), inside_id="a"),
                PartialInstance("db_b", as_key("MySQL 5.1"), inside_id="b"),
            ]
        )
        partial = provision_partial_spec(registry, partial, infrastructure)
        spec = ConfigurationEngine(registry).configure(partial).spec
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        started = infrastructure.clock.now
        deployment = coordinator.deploy(spec)
        report = deployment.report
        assert deployment.is_deployed()
        assert (
            report.parallel_makespan_seconds
            < report.sequential_seconds - 1e-6
        )
        # The wall clock advanced by the parallel makespan, not the sum.
        assert infrastructure.clock.now - started == pytest.approx(
            report.parallel_makespan_seconds, abs=1e-6
        )

    def test_jobs_forwarded_to_slaves(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        """Intra-machine parallelism composes with machine waves: the
        slaves' reports carry the forwarded worker bound."""
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        deployment = coordinator.deploy(two_node_spec, jobs=4)
        assert deployment.is_deployed()
        for slave in deployment.slaves.values():
            assert slave.report.jobs == 4

    def test_shutdown_reverse_waves(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        deployment = coordinator.deploy(two_node_spec)
        coordinator.shutdown(deployment)
        from repro.drivers import INACTIVE

        assert set(deployment.states().values()) == {INACTIVE}


class TestWaveFailureKeepsSiblings:
    """Regression: a slave failing mid-wave used to raise the bare
    :class:`DeploymentFailure` out of the wave loop, discarding every
    sibling slave's journal and system -- the caller could not tell
    what the fleet had actually done, let alone resume it."""

    def test_failed_wave_preserves_completed_siblings(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        from repro.runtime import MultiHostDeploymentFailure
        from repro.sim import FaultPlan, FaultyWorld

        FaultyWorld(
            infrastructure,
            FaultPlan().on("driver:openmrs:install", times=100),
        )
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        with pytest.raises(MultiHostDeploymentFailure) as exc_info:
            coordinator.deploy(two_node_spec)
        failure = exc_info.value
        assert failure.failed_machine == "appnode"
        assert failure.unstarted == []
        # Wave 1's slave survived intact: its journal is complete and
        # its system is still in the fleet view.
        deployment = failure.deployment
        assert "dbnode" in deployment.slaves
        assert deployment.slaves["dbnode"].journal.is_complete()
        assert deployment.states()["db"] == "active"
        # The failing slave's partial frontier is there too, so a
        # resume can pick up exactly where the fleet stopped.
        assert "appnode" in deployment.slaves
        merged = deployment.merged_journal()
        ids = {entry.instance_id for entry in merged.entries}
        assert "db" in ids and "openmrs" not in ids

    def test_wave_one_failure_reports_unstarted_machines(
        self, registry, infrastructure, drivers, two_node_spec
    ):
        from repro.runtime import MultiHostDeploymentFailure
        from repro.sim import FaultPlan, FaultyWorld

        FaultyWorld(
            infrastructure,
            FaultPlan().on("driver:db:install", times=100),
        )
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        with pytest.raises(MultiHostDeploymentFailure) as exc_info:
            coordinator.deploy(two_node_spec)
        failure = exc_info.value
        assert failure.failed_machine == "dbnode"
        assert failure.unstarted == ["appnode"]
