"""The deployment engine's partial operations (prepare / stop_instances /
uninstall_instances / activate), used by in-place upgrades."""

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.drivers import ACTIVE, INACTIVE, UNINSTALLED
from repro.runtime import DeploymentEngine


@pytest.fixture
def spec(registry, openmrs_partial):
    return ConfigurationEngine(registry).configure(openmrs_partial).spec


@pytest.fixture
def engine(registry, infrastructure, drivers):
    return DeploymentEngine(registry, infrastructure, drivers)


class TestPrepare:
    def test_prepare_performs_no_actions(self, engine, spec, infrastructure):
        before = infrastructure.clock.now
        system = engine.prepare(spec)
        assert infrastructure.clock.now == before
        assert set(system.states().values()) == {UNINSTALLED}

    def test_prepare_reuses_drivers(self, engine, spec):
        original = engine.deploy(spec)
        mysql_driver = original.driver("mysql")
        rebuilt = engine.prepare(
            spec, reuse_drivers={"mysql": mysql_driver}
        )
        assert rebuilt.driver("mysql") is mysql_driver
        assert rebuilt.state_of("mysql") == ACTIVE
        assert rebuilt.state_of("tomcat") == UNINSTALLED

    def test_reuse_ignores_unknown_ids(self, engine, spec):
        original = engine.deploy(spec)
        rebuilt = engine.prepare(
            spec, reuse_drivers={"ghost": original.driver("mysql")}
        )
        assert "ghost" not in rebuilt.drivers


class TestStopInstances:
    def test_stops_only_requested(self, engine, spec):
        system = engine.deploy(spec)
        engine.stop_instances(system, {"openmrs"})
        assert system.state_of("openmrs") == INACTIVE
        assert system.state_of("tomcat") == ACTIVE
        assert system.state_of("mysql") == ACTIVE

    def test_respects_reverse_order(self, engine, spec):
        system = engine.deploy(spec)
        report = engine.stop_instances(system, {"openmrs", "tomcat"})
        stops = [a.instance_id for a in report.actions
                 if a.action == "stop"]
        assert stops == ["openmrs", "tomcat"]

    def test_guard_violation_when_closure_incomplete(self, engine, spec):
        from repro.core.errors import GuardError

        system = engine.deploy(spec)
        # Stopping tomcat alone violates down(inactive): openmrs active.
        with pytest.raises(GuardError):
            engine.stop_instances(system, {"tomcat"})

    def test_report_has_makespan(self, engine, spec):
        system = engine.deploy(spec)
        report = engine.stop_instances(system, {"openmrs", "tomcat"})
        assert report.makespan_seconds > 0.0
        assert report.makespan_seconds <= report.sequential_seconds


class TestUninstallInstances:
    def test_report_has_makespan(self, engine, spec):
        system = engine.deploy(spec)
        engine.stop_instances(system, {"openmrs"})
        report = engine.uninstall_instances(system, {"openmrs"})
        assert report.makespan_seconds > 0.0
        assert report.makespan_seconds <= report.sequential_seconds

    def test_selected_removal(self, engine, spec, infrastructure):
        system = engine.deploy(spec)
        engine.stop_instances(system, {"openmrs"})
        engine.uninstall_instances(system, {"openmrs"})
        assert system.state_of("openmrs") == UNINSTALLED
        machine = infrastructure.network.machine("demotest")
        manager = infrastructure.package_manager(machine)
        assert not manager.is_installed("openmrs")
        assert manager.is_installed("tomcat")


class TestActivate:
    def test_reactivates_stopped_subset(self, engine, spec):
        system = engine.deploy(spec)
        engine.stop_instances(system, {"openmrs"})
        report = engine.activate(system)
        assert system.is_deployed()
        # Only openmrs needed a start.
        starts = [a.instance_id for a in report.actions
                  if a.action == "start"]
        assert starts == ["openmrs"]

    def test_activate_on_fresh_system_deploys(self, engine, spec):
        system = engine.prepare(spec)
        engine.activate(system)
        assert system.is_deployed()
        assert system.report is not None
