"""The per-machine audit log and the status report."""

import pytest

from repro.config import ConfigurationEngine
from repro.runtime import DeploymentEngine


@pytest.fixture
def world(registry, infrastructure, drivers, openmrs_partial):
    spec = ConfigurationEngine(registry).configure(openmrs_partial).spec
    engine = DeploymentEngine(registry, infrastructure, drivers)
    system = engine.deploy(spec)
    return engine, system, infrastructure


class TestAuditLog:
    def test_every_action_logged(self, world):
        engine, system, infrastructure = world
        machine = infrastructure.network.machine("demotest")
        log = machine.fs.read_file("/var/log/engage.log")
        for instance_id in ("mysql", "tomcat", "openmrs"):
            assert f"{instance_id}: install" in log
            assert f"{instance_id}: start" in log

    def test_transitions_recorded(self, world):
        engine, system, infrastructure = world
        machine = infrastructure.network.machine("demotest")
        log = machine.fs.read_file("/var/log/engage.log")
        assert "install (uninstalled -> inactive)" in log
        assert "start (inactive -> active)" in log

    def test_order_in_log_matches_dependency_order(self, world):
        engine, system, infrastructure = world
        machine = infrastructure.network.machine("demotest")
        log = machine.fs.read_file("/var/log/engage.log")
        assert log.index("mysql: start") < log.index("openmrs: start")

    def test_shutdown_appends(self, world):
        engine, system, infrastructure = world
        engine.shutdown(system)
        machine = infrastructure.network.machine("demotest")
        log = machine.fs.read_file("/var/log/engage.log")
        assert "openmrs: stop" in log

    def test_failed_action_logged_as_failed(
        self, registry, infrastructure, drivers, openmrs_partial
    ):
        spec = ConfigurationEngine(registry).configure(openmrs_partial).spec
        engine = DeploymentEngine(registry, infrastructure, drivers)
        machines = engine._resolve_machines(spec)
        all_drivers = engine._create_drivers(spec, machines)
        for instance in spec.topological_order():
            all_drivers[instance.id].perform("install")
        with pytest.raises(Exception):
            all_drivers["openmrs"].perform("start")  # deps down
        machine = infrastructure.network.machine("demotest")
        log = machine.fs.read_file("/var/log/engage.log")
        assert "openmrs: start (inactive -> FAILED)" in log


class TestDescribe:
    def test_contains_all_instances(self, world):
        engine, system, infrastructure = world
        text = system.describe()
        for instance_id in system.spec.ids():
            assert instance_id in text
        assert "active" in text
        assert "5 instances on 1 machine(s)" in text

    def test_reflects_state_changes(self, world):
        engine, system, infrastructure = world
        engine.shutdown(system)
        text = system.describe()
        assert "inactive" in text
        assert "0 running process(es)" in text
