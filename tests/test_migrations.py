"""The simulated database and the South-style migration engine."""

import pytest

from repro.django import (
    APPLIED_TABLE,
    Migration,
    MigrationEngine,
    MigrationError,
    Operation,
    SimDatabase,
    migrations_from_json,
    migrations_to_json,
)
from repro.sim import VirtualFilesystem


@pytest.fixture
def db():
    return SimDatabase(VirtualFilesystem(), "/var/lib/mysql/app.json")


class TestSimDatabase:
    def test_create_and_insert(self, db):
        db.create_table("users", ["id", "name"])
        db.insert("users", {"id": 1, "name": "ada"})
        assert db.rows("users") == [{"id": 1, "name": "ada"}]
        assert db.count("users") == 1

    def test_missing_columns_default_none(self, db):
        db.create_table("users", ["id", "name"])
        db.insert("users", {"id": 2})
        assert db.rows("users") == [{"id": 2, "name": None}]

    def test_unknown_columns_rejected(self, db):
        db.create_table("users", ["id"])
        with pytest.raises(MigrationError):
            db.insert("users", {"ghost": 1})

    def test_duplicate_table_rejected(self, db):
        db.create_table("t", ["a"])
        with pytest.raises(MigrationError):
            db.create_table("t", ["a"])

    def test_add_column_backfills(self, db):
        db.create_table("t", ["a"])
        db.insert("t", {"a": 1})
        db.add_column("t", "b", default="x")
        assert db.rows("t") == [{"a": 1, "b": "x"}]
        assert db.columns("t") == ["a", "b"]

    def test_add_existing_column_rejected(self, db):
        db.create_table("t", ["a"])
        with pytest.raises(MigrationError):
            db.add_column("t", "a")

    def test_drop_table(self, db):
        db.create_table("t", ["a"])
        db.drop_table("t")
        assert db.tables() == []
        with pytest.raises(MigrationError):
            db.rows("t")

    def test_operations_on_missing_table(self, db):
        for call in (
            lambda: db.insert("ghost", {}),
            lambda: db.rows("ghost"),
            lambda: db.columns("ghost"),
            lambda: db.add_column("ghost", "c"),
            lambda: db.drop_table("ghost"),
        ):
            with pytest.raises(MigrationError):
                call()

    def test_persistence_across_handles(self):
        fs = VirtualFilesystem()
        first = SimDatabase(fs, "/data/app.json")
        first.create_table("t", ["a"])
        first.insert("t", {"a": 1})
        second = SimDatabase(fs, "/data/app.json")
        assert second.rows("t") == [{"a": 1}]


class TestOperations:
    def test_json_roundtrip(self):
        migration = Migration(
            "0001_initial",
            (
                Operation("create_table", table="t", columns=("a", "b")),
                Operation("insert", table="t", row={"a": 1, "b": 2}),
                Operation("add_column", table="t", column="c", default=0),
            ),
        )
        text = migrations_to_json([migration])
        again = migrations_from_json(text)
        assert again == [migration]

    def test_unknown_op_rejected(self, db):
        with pytest.raises(MigrationError):
            Operation("truncate", table="t").apply(db)

    def test_fail_op(self, db):
        with pytest.raises(MigrationError, match="boom"):
            Operation("fail", message="boom").apply(db)


class TestMigrationEngine:
    def simple_migrations(self):
        return [
            Migration(
                "0001_initial",
                (Operation("create_table", table="t", columns=("a",)),),
            ),
            Migration(
                "0002_add_b",
                (Operation("add_column", table="t", column="b",
                           default="d"),),
            ),
        ]

    def test_applies_in_order(self, db):
        engine = MigrationEngine(db)
        applied = engine.migrate(self.simple_migrations())
        assert applied == ["0001_initial", "0002_add_b"]
        assert db.columns("t") == ["a", "b"]
        assert engine.applied() == ["0001_initial", "0002_add_b"]

    def test_idempotent(self, db):
        engine = MigrationEngine(db)
        engine.migrate(self.simple_migrations())
        assert engine.migrate(self.simple_migrations()) == []

    def test_incremental(self, db):
        engine = MigrationEngine(db)
        migrations = self.simple_migrations()
        engine.migrate(migrations[:1])
        db.insert("t", {"a": 1})
        applied = engine.migrate(migrations)
        assert applied == ["0002_add_b"]
        assert db.rows("t") == [{"a": 1, "b": "d"}]

    def test_failure_stops_midway(self, db):
        engine = MigrationEngine(db)
        migrations = self.simple_migrations() + [
            Migration("0003_bad", (Operation("fail", message="nope"),)),
        ]
        with pytest.raises(MigrationError):
            engine.migrate(migrations)
        # First two applied and recorded; the failed one is not.
        assert engine.applied() == ["0001_initial", "0002_add_b"]

    def test_applied_empty_on_fresh_db(self, db):
        assert MigrationEngine(db).applied() == []
