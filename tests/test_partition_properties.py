"""Component-partitioned configuration equals the monolithic pipeline.

The tentpole property: for every partial installation specification,
``configure(partition=True)`` -- engine or session -- produces the same
full specification, named model, deployed set, and aggregate constraint
sizes as the monolithic path, byte for byte; and on unsatisfiable input
both paths raise :class:`UnsatisfiableError` with the *same* minimal
conflict diagnosis.

Exercised three ways: direct partitioner unit tests, the checked-in
example stacks, and a seeded random fleet corpus (the ``fuzz``-marked
classes run the full ≥200-case corpus; the unmarked smoke subsets keep
tier-1 coverage).
"""

from __future__ import annotations

import pytest

from repro.config import ConfigurationEngine, ConfigurationSession
from repro.config.hypergraph import generate_graph
from repro.config.partition import merge_component_specs, partition_graph
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import ConfigurationError, UnsatisfiableError
from repro.dsl import full_to_json, partial_from_json
from repro.library import standard_registry
from repro.library.fleet import FleetTopology, fleet_partial

from tests.test_fuzz import conflict_mutant, random_fleet_partial

REGISTRY = standard_registry()

SMOKE_SEEDS = list(range(20))
CORPUS_SEEDS = list(range(200))
MUTANT_SMOKE_SEEDS = list(range(5))
MUTANT_CORPUS_SEEDS = list(range(40))


def assert_equivalent(partial: PartialInstallSpec) -> None:
    """Partitioned output (engine, cold session, warm session) is
    bit-identical to the monolithic engine's."""
    mono = ConfigurationEngine(REGISTRY).configure(partial)
    part = ConfigurationEngine(REGISTRY, partition=True).configure(partial)
    expected = full_to_json(mono.spec)

    assert full_to_json(part.spec) == expected
    assert part.model == mono.model
    assert part.deployed_ids == mono.deployed_ids
    assert part.formula is None
    assert part.partition is not None
    assert part.solver_stats.components == part.partition.count
    assert part.constraint_stats.variables == mono.constraint_stats.variables
    assert part.constraint_stats.clauses == mono.constraint_stats.clauses
    assert part.constraint_stats.hyperedges == (
        mono.constraint_stats.hyperedges
    )

    session = ConfigurationSession(REGISTRY, partition=True)
    cold = session.configure(partial)
    warm = session.configure(partial)
    assert full_to_json(cold.spec) == expected
    assert full_to_json(warm.spec) == expected
    assert cold.model == warm.model == mono.model
    assert warm.cache.graph_hit and warm.cache.solver_reused


def assert_same_diagnosis(partial: PartialInstallSpec) -> None:
    """Both paths refuse with the same Theorem 1 message/diagnosis."""
    with pytest.raises(UnsatisfiableError) as mono_exc:
        ConfigurationEngine(REGISTRY).configure(partial)
    with pytest.raises(UnsatisfiableError) as part_exc:
        ConfigurationEngine(REGISTRY, partition=True).configure(partial)
    with pytest.raises(UnsatisfiableError) as session_exc:
        ConfigurationSession(REGISTRY, partition=True).configure(partial)
    assert str(part_exc.value) == str(mono_exc.value)
    assert str(session_exc.value) == str(mono_exc.value)


def figure2():
    return PartialInstallSpec([
        PartialInstance("server", as_key("Mac-OSX 10.6"),
                        config={"hostname": "demotest"}),
        PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                        inside_id="server"),
        PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                        inside_id="tomcat"),
    ])


class TestPartitioner:
    """partition_graph: a true partition, machine-aligned on fleets."""

    def test_single_stack_is_one_component(self):
        graph = generate_graph(REGISTRY, figure2())
        parts = partition_graph(graph)
        assert len(parts) == 1
        assert set(parts.components[0].node_ids) == {
            node.instance_id for node in graph.nodes()
        }

    def test_fleet_has_one_component_per_machine(self):
        partial = fleet_partial(FleetTopology(replicas=6, machines=3))
        graph = generate_graph(REGISTRY, partial)
        parts = partition_graph(graph)
        assert len(parts) == 3
        for component in parts.components:
            machines = {
                graph.machine_of(node_id) for node_id in component.node_ids
            }
            assert len(machines) == 1

    def test_components_partition_nodes_and_edges(self):
        partial = fleet_partial(FleetTopology(replicas=5, machines=2))
        graph = generate_graph(REGISTRY, partial)
        parts = partition_graph(graph)
        all_ids = [
            node_id
            for component in parts.components
            for node_id in component.node_ids
        ]
        assert len(all_ids) == len(set(all_ids)) == len(graph)
        assert sum(
            len(component.graph.edges()) for component in parts.components
        ) == len(graph.edges())
        for component in parts.components:
            members = set(component.node_ids)
            for edge in component.graph.edges():
                assert edge.source_id in members
                assert set(edge.targets) <= members

    def test_component_of_covers_every_node(self):
        partial = fleet_partial(FleetTopology(replicas=4, machines=4))
        graph = generate_graph(REGISTRY, partial)
        parts = partition_graph(graph)
        for node in graph.nodes():
            index = parts.component_of[node.instance_id]
            assert node.instance_id in parts.components[index].node_ids

    def test_components_numbered_by_first_appearance(self):
        partial = fleet_partial(FleetTopology(replicas=4, machines=2))
        graph = generate_graph(REGISTRY, partial)
        parts = partition_graph(graph)
        seen: list[int] = []
        for node in graph.nodes():
            index = parts.component_of[node.instance_id]
            if index not in seen:
                seen.append(index)
        assert seen == sorted(seen)

    def test_pinned_sets_are_component_local(self):
        partial = fleet_partial(FleetTopology(replicas=6, machines=3))
        graph = generate_graph(REGISTRY, partial)
        parts = partition_graph(graph)
        pinned = {
            node.instance_id
            for node in graph.nodes()
            if node.from_partial
        }
        assert set().union(
            *(component.pinned for component in parts.components)
        ) == pinned


class TestMergeDeterminism:
    def test_merge_reproduces_global_topological_order(self):
        """The k-way merge of per-component orders equals the global
        Kahn order -- the id sequence of the monolithic spec."""
        partial = fleet_partial(FleetTopology(replicas=6, machines=3))
        mono = ConfigurationEngine(REGISTRY).configure(partial)
        part = ConfigurationEngine(
            REGISTRY, partition=True
        ).configure(partial)
        assert [i.id for i in part.spec] == [i.id for i in mono.spec]

    def test_merge_of_empty_input_is_empty(self):
        assert len(merge_component_specs([])) == 0


class TestEngineContract:
    def test_partition_with_dpll_is_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfigurationEngine(REGISTRY, solver="dpll", partition=True)
        with pytest.raises(ConfigurationError):
            ConfigurationSession(REGISTRY, solver="dpll", partition=True)
        engine = ConfigurationEngine(REGISTRY, solver="dpll")
        with pytest.raises(ConfigurationError):
            engine.configure(figure2(), partition=True)

    def test_per_call_override_beats_constructor_mode(self):
        engine = ConfigurationEngine(REGISTRY, partition=True)
        result = engine.configure(figure2(), partition=False)
        assert result.partition is None
        assert result.formula is not None
        forced = ConfigurationEngine(REGISTRY).configure(
            figure2(), partition=True
        )
        assert forced.partition is not None

    def test_partition_info_shape(self):
        partial = fleet_partial(FleetTopology(replicas=6, machines=3))
        result = ConfigurationEngine(
            REGISTRY, partition=True
        ).configure(partial)
        info = result.partition
        assert info.count == 3
        assert info.largest == max(c.nodes for c in info.components)
        assert sum(c.nodes for c in info.components) == len(result.graph)
        assert all(c.decisions >= 0 for c in info.components)
        assert result.timings.partition_ms >= 0.0


class TestExampleEquivalence:
    def test_figure2_openmrs(self):
        assert_equivalent(figure2())

    def test_checked_in_fleet_example(self):
        with open("examples/stacks/fleet.json", encoding="utf-8") as handle:
            assert_equivalent(partial_from_json(handle.read()))

    def test_fleet_example_matches_generator(self):
        """The checked-in example is exactly the default generator
        output (regenerate with ``python -m repro.library.fleet``)."""
        from repro.library.fleet import fleet_spec_json

        with open("examples/stacks/fleet.json", encoding="utf-8") as handle:
            assert handle.read() == fleet_spec_json(FleetTopology())


class TestCorpusSmoke:
    """A tier-1-sized slice of the seeded corpus."""

    def test_generator_covers_both_shapes(self):
        counts = set()
        for seed in range(50):
            graph = generate_graph(REGISTRY, random_fleet_partial(seed))
            counts.add(len(partition_graph(graph)))
        assert 1 in counts
        assert max(counts) >= 3

    @pytest.mark.parametrize("seed", SMOKE_SEEDS)
    def test_equivalent(self, seed):
        assert_equivalent(random_fleet_partial(seed))

    @pytest.mark.parametrize("seed", MUTANT_SMOKE_SEEDS)
    def test_same_diagnosis(self, seed):
        assert_same_diagnosis(conflict_mutant(seed))


@pytest.mark.fuzz
class TestCorpusFull:
    """The full seeded corpus (CI fuzz job; excluded from tier-1)."""

    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    def test_equivalent(self, seed):
        assert_equivalent(random_fleet_partial(seed))

    @pytest.mark.parametrize("seed", MUTANT_CORPUS_SEEDS)
    def test_same_diagnosis(self, seed):
        assert_same_diagnosis(conflict_mutant(seed))
