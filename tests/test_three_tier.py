"""A three-tier topology: web node, worker node, database node.

Exercises cross-machine peer dependencies in both directions (the app
talks to MySQL and RabbitMQ; Celery on its own node talks to RabbitMQ on
the web node), machine wave ordering, and the monitor across machines.
"""

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.django import package_application, table1_apps
from repro.runtime import (
    MasterCoordinator,
    ProcessMonitor,
    machine_waves,
    provision_partial_spec,
)


@pytest.fixture
def three_tier(registry, infrastructure):
    webapp = next(a for a in table1_apps() if a.name == "WebApp")
    key = package_application(webapp, registry, infrastructure)
    partial = PartialInstallSpec(
        [
            PartialInstance("webnode", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "web"}),
            PartialInstance("worknode", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "work"}),
            PartialInstance("dbnode", as_key("Ubuntu-Linux 10.04"),
                            config={"hostname": "db"}),
            PartialInstance("app", key, inside_id="webnode"),
            PartialInstance("web", as_key("Gunicorn 0.13"),
                            inside_id="webnode"),
            PartialInstance("queue", as_key("RabbitMQ 2.7"),
                            inside_id="worknode"),
            PartialInstance("worker", as_key("Celery 2.4"),
                            inside_id="worknode"),
            PartialInstance("db", as_key("MySQL 5.1"),
                            inside_id="dbnode"),
        ]
    )
    partial = provision_partial_spec(registry, partial, infrastructure)
    return ConfigurationEngine(
        registry, verify_registry=False
    ).configure(partial).spec


class TestTopology:
    def test_worker_uses_pinned_celery(self, three_tier):
        """The app's Celery peer dependency matches the pinned worker on
        the worker node (peer deps cross machines)."""
        app = three_tier["app"]
        celery_targets = [
            l.target.id for l in app.peers
            if l.target.key.name == "Celery"
        ]
        assert celery_targets == ["worker"]

    def test_worker_brokers_locally(self, three_tier):
        worker = three_tier["worker"]
        assert worker.inputs["broker"]["host"] == "work"

    def test_app_db_on_db_node(self, three_tier):
        assert three_tier["app"].inputs["database"]["host"] == "db"

    def test_wave_structure(self, three_tier):
        waves = machine_waves(three_tier)
        flat = [m for wave in waves for m in wave]
        # dbnode and worknode have no cross-machine prerequisites; the
        # web node depends on both (app -> db, app -> worker).
        assert set(waves[0]) == {"dbnode", "worknode"}
        assert flat[-1] == "webnode"

    def test_instance_order(self, three_tier):
        order = [i.id for i in three_tier.topological_order()]
        assert order.index("queue") < order.index("worker")
        assert order.index("worker") < order.index("app")
        assert order.index("db") < order.index("app")


class TestDeployment:
    def test_full_three_tier_deploys(
        self, registry, infrastructure, drivers, three_tier
    ):
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        deployment = coordinator.deploy(three_tier)
        assert deployment.is_deployed()
        # Agents on all three hosts.
        assert sorted(deployment.report.agents_installed) == [
            "db", "web", "work",
        ]
        # Cross-machine connectivity in every direction used.
        assert infrastructure.network.can_connect("db", 3306)
        assert infrastructure.network.can_connect("work", 5672)
        assert infrastructure.network.can_connect("web", 8000)

    def test_monitor_spans_machines(
        self, registry, infrastructure, drivers, three_tier
    ):
        coordinator = MasterCoordinator(registry, infrastructure, drivers)
        deployment = coordinator.deploy(three_tier)
        # One monitor per slave system; fail the db and restart it.
        db_system = deployment.slaves["dbnode"]
        monitor = ProcessMonitor(db_system)
        db_system.driver("db").process.fail()
        events = monitor.poll()
        assert [e.instance_id for e in events] == ["db"]
        assert infrastructure.network.can_connect("db", 3306)

    def test_machine_cycle_refused(self, registry, infrastructure, drivers):
        """The paper's documented limitation: if two machines depend on
        each other, the coordinator refuses rather than deadlocking."""
        from repro.core.errors import DeploymentError
        from repro.django import package_application, table1_apps

        webapp = next(a for a in table1_apps() if a.name == "WebApp")
        key = package_application(webapp, registry, infrastructure)
        partial = PartialInstallSpec(
            [
                PartialInstance("m1", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "c1"}),
                PartialInstance("m2", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "c2"}),
                PartialInstance("app", key, inside_id="m1"),
                PartialInstance("web", as_key("Gunicorn 0.13"),
                                inside_id="m1"),
                # The broker on m2 while the worker sits on... m2 needs
                # nothing from m1 -- build the cycle explicitly instead:
                # app(m1) -> worker(m2), worker(m2) -> queue(m1).
                PartialInstance("queue", as_key("RabbitMQ 2.7"),
                                inside_id="m1"),
                PartialInstance("worker", as_key("Celery 2.4"),
                                inside_id="m2"),
                PartialInstance("db", as_key("MySQL 5.1"),
                                inside_id="m1"),
            ]
        )
        partial = provision_partial_spec(registry, partial, infrastructure)
        spec = ConfigurationEngine(
            registry, verify_registry=False
        ).configure(partial).spec
        with pytest.raises(DeploymentError):
            machine_waves(spec)
