"""Saving and re-adopting deployed systems (persistent state)."""

import json

import pytest

from repro.config import ConfigurationEngine
from repro.core.errors import RuntimeEngageError
from repro.drivers import ACTIVE, INACTIVE
from repro.runtime import (
    DeploymentEngine,
    ProcessMonitor,
    load_system,
    save_system,
)


@pytest.fixture
def world(registry, infrastructure, drivers, openmrs_partial):
    spec = ConfigurationEngine(registry).configure(openmrs_partial).spec
    engine = DeploymentEngine(registry, infrastructure, drivers)
    system = engine.deploy(spec)
    return engine, system


class TestSaveLoad:
    def test_roundtrip_states(self, world, registry, infrastructure,
                              drivers):
        engine, system = world
        text = save_system(system)
        adopted = load_system(registry, infrastructure, drivers, text)
        assert adopted.states() == system.states()
        assert adopted.spec.ids() == system.spec.ids()

    def test_adopted_drivers_hold_live_processes(
        self, world, registry, infrastructure, drivers
    ):
        engine, system = world
        adopted = load_system(
            registry, infrastructure, drivers, save_system(system)
        )
        mysql = adopted.driver("mysql")
        assert mysql.process is not None
        assert mysql.process.is_running()
        assert mysql.process is system.driver("mysql").process

    def test_adopted_system_can_be_shut_down(
        self, world, registry, infrastructure, drivers
    ):
        engine, system = world
        adopted = load_system(
            registry, infrastructure, drivers, save_system(system)
        )
        fresh_engine = DeploymentEngine(registry, infrastructure, drivers)
        fresh_engine.shutdown(adopted)
        assert set(adopted.states().values()) == {INACTIVE}
        assert not infrastructure.network.can_connect("demotest", 3306)

    def test_monitor_works_on_adopted_system(
        self, world, registry, infrastructure, drivers
    ):
        engine, system = world
        adopted = load_system(
            registry, infrastructure, drivers, save_system(system)
        )
        monitor = ProcessMonitor(adopted)
        adopted.driver("tomcat").process.fail()
        events = monitor.poll()
        assert [e.instance_id for e in events] == ["tomcat"]
        assert infrastructure.network.can_connect("demotest", 8080)

    def test_saving_stopped_system(self, world, registry, infrastructure,
                                   drivers):
        engine, system = world
        engine.shutdown(system)
        adopted = load_system(
            registry, infrastructure, drivers, save_system(system)
        )
        assert set(adopted.states().values()) == {INACTIVE}
        # And it can be started again.
        DeploymentEngine(registry, infrastructure, drivers).start(adopted)
        assert adopted.is_deployed()


class TestValidation:
    def test_malformed_json(self, registry, infrastructure, drivers):
        with pytest.raises(RuntimeEngageError):
            load_system(registry, infrastructure, drivers, "{nope")

    def test_wrong_format_marker(self, world, registry, infrastructure,
                                 drivers):
        engine, system = world
        payload = json.loads(save_system(system))
        payload["format"] = "engage-state-99"
        with pytest.raises(RuntimeEngageError):
            load_system(
                registry, infrastructure, drivers, json.dumps(payload)
            )

    def test_missing_state_entry(self, world, registry, infrastructure,
                                 drivers):
        engine, system = world
        payload = json.loads(save_system(system))
        del payload["states"]["mysql"]
        with pytest.raises(RuntimeEngageError):
            load_system(
                registry, infrastructure, drivers, json.dumps(payload)
            )

    def test_invalid_state_name(self, world, registry, infrastructure,
                                drivers):
        engine, system = world
        payload = json.loads(save_system(system))
        payload["states"]["mysql"] = "warming_up"
        with pytest.raises(RuntimeEngageError):
            load_system(
                registry, infrastructure, drivers, json.dumps(payload)
            )

    def test_dead_process_adopted_for_repair(
        self, world, registry, infrastructure, drivers
    ):
        """The state file says active but the process has died: the
        failed process is adopted as-is so the monitor can repair it
        (the `engage-sim watch` flow)."""
        engine, system = world
        text = save_system(system)
        system.driver("mysql").process.fail()
        adopted = load_system(registry, infrastructure, drivers, text)
        assert not adopted.driver("mysql").process.is_running()
        monitor = ProcessMonitor(adopted)
        events = monitor.poll()
        assert [e.instance_id for e in events] == ["mysql"]
        assert infrastructure.network.can_connect("demotest", 3306)

    def test_missing_process_record_refused(
        self, world, registry, infrastructure, drivers
    ):
        """No process record at all contradicts the state file."""
        import json as json_module

        engine, system = world
        text = save_system(system)
        # Simulate a divergent world: a fresh machine with no processes.
        payload = json_module.loads(text)
        infrastructure.network.unregister_machine("demotest")
        infrastructure.add_machine("demotest", "mac-osx", "10.6")
        with pytest.raises(RuntimeEngageError):
            load_system(registry, infrastructure, drivers,
                        json_module.dumps(payload))
