"""Versions, version ranges, and resource keys."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    ResourceKey,
    UNVERSIONED,
    Version,
    VersionRange,
    select_versions,
)
from repro.core.errors import ResourceModelError

versions = st.lists(
    st.integers(min_value=0, max_value=99), min_size=1, max_size=4
).map(lambda parts: Version(tuple(parts)))


class TestVersion:
    def test_parse_simple(self):
        assert Version.parse("6.0.18").parts == (6, 0, 18)

    def test_parse_single_component(self):
        assert Version.parse("7").parts == (7,)

    def test_parse_strips_whitespace(self):
        assert Version.parse(" 1.2 ") == Version((1, 2))

    @pytest.mark.parametrize("bad", ["", "a.b", "1.", ".5", "1..2", "1.2-rc1"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ResourceModelError):
            Version.parse(bad)

    def test_ordering(self):
        assert Version.parse("5.5") < Version.parse("6.0.18")
        assert Version.parse("6.0.18") < Version.parse("6.0.29")
        assert Version.parse("6.0.29") < Version.parse("6.1")

    def test_trailing_zeros_equal(self):
        assert Version.parse("6.0") == Version.parse("6.0.0")
        assert hash(Version.parse("6.0")) == hash(Version.parse("6.0.0"))

    def test_padding_in_comparison(self):
        assert Version.parse("6.0") < Version.parse("6.0.18")
        assert not Version.parse("6.0.18") < Version.parse("6.0")

    def test_str_roundtrip(self):
        assert str(Version.parse("10.04")) == "10.4"  # integers, not text

    def test_unversioned(self):
        assert UNVERSIONED.is_unversioned()
        assert not Version.parse("1").is_unversioned()

    @given(versions, versions)
    def test_total_order(self, a, b):
        assert (a < b) + (b < a) + (a == b) == 1

    @given(versions, versions, versions)
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(versions)
    def test_hash_consistent_with_eq(self, v):
        padded = Version(v.parts + (0, 0))
        assert v == padded
        assert hash(v) == hash(padded)


class TestVersionRange:
    def test_default_half_open(self):
        r = VersionRange(Version.parse("5.5"), Version.parse("6.0.29"))
        assert r.contains(Version.parse("5.5"))
        assert r.contains(Version.parse("6.0.18"))
        assert not r.contains(Version.parse("6.0.29"))
        assert not r.contains(Version.parse("5.4"))

    def test_unbounded_low(self):
        r = VersionRange(hi=Version.parse("2.0"))
        assert r.contains(Version.parse("0.1"))
        assert not r.contains(Version.parse("2.0"))

    def test_unbounded_high(self):
        r = VersionRange(lo=Version.parse("2.0"))
        assert r.contains(Version.parse("99"))
        assert r.contains(Version.parse("2.0"))

    def test_exclusive_low(self):
        r = VersionRange(lo=Version.parse("1.0"), lo_inclusive=False)
        assert not r.contains(Version.parse("1.0"))
        assert r.contains(Version.parse("1.0.1"))

    def test_inclusive_high(self):
        r = VersionRange(hi=Version.parse("1.0"), hi_inclusive=True)
        assert r.contains(Version.parse("1.0"))

    def test_str(self):
        r = VersionRange(Version.parse("5.5"), Version.parse("6.0.29"))
        assert str(r) == "[5.5, 6.0.29)"

    @given(versions, versions, versions)
    def test_containment_consistent_with_order(self, lo, hi, v):
        r = VersionRange(lo=lo, hi=hi)
        if r.contains(v):
            assert not v < lo
            assert v < hi


class TestSelectVersions:
    def test_filters_and_sorts(self):
        pool = [Version.parse(t) for t in ["6.1", "5.5", "6.0.18", "6.0.29"]]
        r = VersionRange(Version.parse("5.5"), Version.parse("6.0.29"))
        assert select_versions(pool, r) == [
            Version.parse("5.5"),
            Version.parse("6.0.18"),
        ]

    def test_deduplicates(self):
        pool = [Version.parse("1.0"), Version.parse("1.0.0")]
        r = VersionRange(lo=Version.parse("0.1"))
        assert len(select_versions(pool, r)) == 1


class TestResourceKey:
    def test_parse_name_and_version(self):
        key = ResourceKey.parse("Tomcat 6.0.18")
        assert key.name == "Tomcat"
        assert key.version == Version.parse("6.0.18")

    def test_parse_name_with_spaces(self):
        key = ResourceKey.parse("Jasper Reports Server 4.2")
        assert key.name == "Jasper Reports Server"
        assert key.version == Version.parse("4.2")

    def test_parse_unversioned(self):
        key = ResourceKey.parse("Server")
        assert key.name == "Server"
        assert key.version.is_unversioned()

    def test_parse_trailing_word_not_version(self):
        key = ResourceKey.parse("Feature Collector")
        assert key.name == "Feature Collector"
        assert key.version.is_unversioned()

    def test_display_roundtrip(self):
        for text in ["Tomcat 6.0.18", "Server", "Mac-OSX 10.6"]:
            assert ResourceKey.parse(text).display() == text

    def test_empty_rejected(self):
        with pytest.raises(ResourceModelError):
            ResourceKey.parse("  ")

    def test_keys_are_ordered(self):
        a = ResourceKey.parse("Tomcat 5.5")
        b = ResourceKey.parse("Tomcat 6.0.18")
        assert a < b

    def test_keys_hashable(self):
        assert len({ResourceKey.parse("A 1"), ResourceKey.parse("A 1")}) == 1
