"""The DSL parser."""

import pytest

from repro.core.errors import ParseError
from repro.dsl import (
    FormatAst,
    ListAst,
    ListTypeAst,
    LitAst,
    RecordAst,
    RecordTypeAst,
    RefAst,
    ScalarTypeAst,
    parse_module,
)


def single(source):
    module = parse_module(source)
    assert len(module.resources) == 1
    return module.resources[0]


class TestResourceHeader:
    def test_minimal(self):
        r = single('resource "X" 1.0 {}')
        assert r.name == "X"
        assert r.version == "1.0"
        assert not r.abstract

    def test_abstract_unversioned(self):
        r = single('abstract resource "Server" {}')
        assert r.abstract
        assert r.version is None

    def test_extends_and_driver(self):
        r = single('resource "Mac" 10.6 extends "Server" driver "machine" {}')
        assert r.extends.name == "Server"
        assert r.driver == "machine"

    def test_multiple_resources(self):
        module = parse_module('resource "A" 1 {}\nresource "B" 2 {}')
        assert [r.name for r in module.resources] == ["A", "B"]

    def test_missing_name(self):
        with pytest.raises(ParseError):
            parse_module("resource 1.0 {}")

    def test_unclosed_body(self):
        with pytest.raises(ParseError):
            parse_module('resource "X" 1 {')


class TestPorts:
    def test_config_with_default(self):
        r = single('resource "X" 1 { config port: tcp_port = 8080 }')
        port = r.ports[0]
        assert port.kind == "config"
        assert port.name == "port"
        assert port.type == ScalarTypeAst("tcp_port")
        assert port.value == LitAst(8080)

    def test_input_no_value(self):
        r = single('resource "X" 1 { input host: hostname }')
        assert r.ports[0].kind == "input"
        assert r.ports[0].value is None

    def test_static_output(self):
        r = single('resource "X" 1 { static output s: string = "v" }')
        assert r.ports[0].static
        assert r.ports[0].kind == "output"

    def test_record_type(self):
        r = single(
            'resource "X" 1 { input db: { host: hostname, port: tcp_port } }'
        )
        assert r.ports[0].type == RecordTypeAst(
            (("host", ScalarTypeAst("hostname")),
             ("port", ScalarTypeAst("tcp_port")))
        )

    def test_list_type(self):
        r = single('resource "X" 1 { config xs: list[string] = [] }')
        assert r.ports[0].type == ListTypeAst(ScalarTypeAst("string"))

    def test_missing_colon(self):
        with pytest.raises(ParseError):
            parse_module('resource "X" 1 { config port tcp_port }')


class TestExpressions:
    def test_literals(self):
        r = single(
            'resource "X" 1 {\n'
            '  config a: string = "s"\n'
            "  config b: int = 5\n"
            "  config c: float = 2.5\n"
            "  config d: bool = true\n"
            "  config e: bool = false\n"
            "}"
        )
        values = [p.value for p in r.ports]
        assert values == [
            LitAst("s"), LitAst(5), LitAst(2.5), LitAst(True), LitAst(False)
        ]

    def test_refs(self):
        r = single(
            'resource "X" 1 { output o: string = input.db.host }'
        )
        assert r.ports[0].value == RefAst("input", "db", ("host",))

    def test_config_ref(self):
        r = single('resource "X" 1 { output o: int = config.port }')
        assert r.ports[0].value == RefAst("config", "port", ())

    def test_record_expr(self):
        r = single(
            'resource "X" 1 { output o: { a: int } = { a = 1 } }'
        )
        assert r.ports[0].value == RecordAst((("a", LitAst(1)),))

    def test_list_expr(self):
        r = single('resource "X" 1 { config o: list[int] = [1, 2] }')
        assert r.ports[0].value == ListAst((LitAst(1), LitAst(2)))

    def test_format_expr(self):
        r = single(
            'resource "X" 1 {\n'
            '  output url: string = format("http://{h}", h = input.host)\n'
            "}"
        )
        assert r.ports[0].value == FormatAst(
            "http://{h}", (("h", RefAst("input", "host", ())),)
        )

    def test_version_literal_in_expr_rejected(self):
        with pytest.raises(ParseError):
            parse_module('resource "X" 1 { config v: string = 6.0.18 }')


class TestDependencies:
    def test_inside_with_mapping(self):
        r = single(
            'resource "X" 1 { inside "Server" { host -> my_host } }'
        )
        dep = r.dependencies[0]
        assert dep.kind == "inside"
        assert dep.targets[0].name == "Server"
        assert dep.mapping == (("host", "my_host"),)

    def test_versioned_target(self):
        r = single('resource "X" 1 { peer "MySQL" 5.1 }')
        target = r.dependencies[0].targets[0]
        assert target.name == "MySQL"
        assert target.version == "5.1"

    def test_disjunction(self):
        r = single('resource "X" 1 { env "JDK" 1.6 | "JRE" 1.6 }')
        assert [t.name for t in r.dependencies[0].targets] == ["JDK", "JRE"]

    def test_version_range(self):
        r = single('resource "X" 1 { inside "Tomcat" [5.5, 6.0.29) }')
        vr = r.dependencies[0].targets[0].version_range
        assert (vr.lo, vr.hi) == ("5.5", "6.0.29")
        assert vr.lo_inclusive and not vr.hi_inclusive

    def test_unbounded_range(self):
        r = single('resource "X" 1 { env "Java" [1.5, *] }')
        vr = r.dependencies[0].targets[0].version_range
        assert vr.lo == "1.5" and vr.hi is None and vr.hi_inclusive

    def test_reverse_mapping(self):
        r = single(
            'resource "X" 1 {\n'
            '  inside "Tomcat" 6.0.18 { tomcat -> tomcat }'
            " reverse { conf -> extra }\n"
            "}"
        )
        dep = r.dependencies[0]
        assert dep.reverse == (("conf", "extra"),)

    def test_bad_range_close(self):
        with pytest.raises(ParseError):
            parse_module('resource "X" 1 { env "Y" [1, 2} }')


class TestErrors:
    def test_stray_keyword_in_body(self):
        with pytest.raises(ParseError):
            parse_module('resource "X" 1 { resource }')

    def test_garbage_toplevel(self):
        with pytest.raises(ParseError):
            parse_module("bananas")

    def test_error_mentions_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_module('resource "X" 1 {\n  config : int\n}')
        assert excinfo.value.line == 2
