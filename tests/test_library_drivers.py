"""Behaviour of the concrete library drivers against the simulation."""

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.config import ConfigurationEngine
from repro.django import SimDatabase, package_application, table1_apps
from repro.runtime import DeploymentEngine, provision_partial_spec


def deployed(registry, infrastructure, drivers, partial):
    partial = provision_partial_spec(registry, partial, infrastructure)
    spec = ConfigurationEngine(
        registry, verify_registry=False
    ).configure(partial).spec
    system = DeploymentEngine(registry, infrastructure, drivers).deploy(spec)
    return spec, system


class TestTomcatDriver:
    @pytest.fixture
    def world(self, registry, infrastructure, drivers):
        partial = PartialInstallSpec(
            [
                PartialInstance("server", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "tc"}),
                PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                                inside_id="server",
                                config={"manager_port": 9090}),
            ]
        )
        return deployed(registry, infrastructure, drivers, partial)

    def test_server_xml_reflects_config(self, world, infrastructure):
        machine = infrastructure.network.machine("tc")
        content = machine.fs.read_file("/opt/tomcat-6.0.18/conf/server.xml")
        assert '<Server port="9090">' in content
        assert "Context" not in content  # no servlet pushed config

    def test_webapps_directory_created(self, world, infrastructure):
        machine = infrastructure.network.machine("tc")
        assert machine.fs.is_dir("/opt/tomcat-6.0.18/webapps")

    def test_listens_on_configured_port(self, world, infrastructure):
        assert infrastructure.network.can_connect("tc", 9090)
        assert not infrastructure.network.can_connect("tc", 8080)


class TestWebappDriver:
    def test_connection_properties_written(
        self, registry, infrastructure, drivers, openmrs_partial
    ):
        spec, system = deployed(
            registry, infrastructure, drivers, openmrs_partial
        )
        machine = infrastructure.network.machine("demotest")
        props = machine.fs.read_file(
            "/opt/tomcat-6.0.18/webapps/openmrs/WEB-INF/connection.properties"
        )
        assert "jdbc:mysql://demotest:3306/app" in props
        assert "db.user=root" in props


class TestJasperDriver:
    def test_jdbc_jar_linked_into_tomcat(
        self, registry, infrastructure, drivers
    ):
        partial = PartialInstallSpec(
            [
                PartialInstance("server", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "rep"}),
                PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                                inside_id="server"),
                PartialInstance("jasper",
                                as_key("JasperReports-Server 4.2"),
                                inside_id="tomcat"),
            ]
        )
        spec, system = deployed(registry, infrastructure, drivers, partial)
        machine = infrastructure.network.machine("rep")
        link = machine.fs.read_file(
            "/opt/tomcat-6.0.18/lib/mysql-connector.link"
        )
        assert "mysql-connector-java.jar" in link
        # The connector itself was downloaded and extracted.
        manager = infrastructure.package_manager(machine)
        assert manager.is_installed("mysql-jdbc-connector", "5.1.17")


class TestApacheDriver:
    def test_httpd_conf(self, registry, infrastructure, drivers):
        partial = PartialInstallSpec(
            [
                PartialInstance("server", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "www"}),
                PartialInstance("apache", as_key("Apache-HTTPD 2.2"),
                                inside_id="server"),
            ]
        )
        spec, system = deployed(registry, infrastructure, drivers, partial)
        machine = infrastructure.network.machine("www")
        assert machine.fs.read_file("/etc/httpd.conf") == "Listen 80\n"
        assert infrastructure.network.can_connect("www", 80)


class TestPostgresDriver:
    def test_django_app_on_postgres(self, registry, infrastructure, drivers):
        app = table1_apps()[0]
        key = package_application(app, registry, infrastructure)
        partial = PartialInstallSpec(
            [
                PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "pg"}),
                PartialInstance("app", key, inside_id="node"),
                PartialInstance("web", as_key("Gunicorn 0.13"),
                                inside_id="node"),
                PartialInstance("db", as_key("PostgreSQL 8.4"),
                                inside_id="node"),
            ]
        )
        spec, system = deployed(registry, infrastructure, drivers, partial)
        assert spec["app"].inputs["database"]["engine"] == "postgres"
        assert spec["app"].inputs["database"]["port"] == 5432
        assert infrastructure.network.can_connect("pg", 5432)
        machine = infrastructure.network.machine("pg")
        database = SimDatabase(machine.fs, "/var/lib/postgresql/app.json")
        assert "notes" in database.tables()

    def test_data_survives_uninstall(self, registry, infrastructure, drivers):
        partial = PartialInstallSpec(
            [
                PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "pg2"}),
                PartialInstance("db", as_key("PostgreSQL 8.4"),
                                inside_id="node"),
            ]
        )
        spec, system = deployed(registry, infrastructure, drivers, partial)
        machine = infrastructure.network.machine("pg2")
        database = SimDatabase(machine.fs, "/var/lib/postgresql/keep.json")
        database.create_table("t", ["a"])
        DeploymentEngine(registry, infrastructure, drivers).uninstall(system)
        assert database.tables() == ["t"]  # data dir kept


class TestCeleryDriver:
    def test_worker_requires_broker(self, registry, infrastructure, drivers):
        partial = PartialInstallSpec(
            [
                PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "work"}),
                PartialInstance("celery", as_key("Celery 2.4"),
                                inside_id="node"),
            ]
        )
        spec, system = deployed(registry, infrastructure, drivers, partial)
        # RabbitMQ materialised automatically and started first.
        rabbit_id = next(
            i.id for i in spec if i.key.name == "RabbitMQ"
        )
        starts = [
            a.instance_id for a in system.report.actions
            if a.action == "start"
        ]
        assert starts.index(rabbit_id) < starts.index("celery")
        worker = system.driver("celery").process
        assert worker.is_running()
        assert worker.listen_ports == ()


class TestPipPackageDriver:
    def test_installs_into_site_packages(
        self, registry, infrastructure, drivers
    ):
        app = table1_apps()[0]  # Areneae: depends on simplejson
        key = package_application(app, registry, infrastructure)
        partial = PartialInstallSpec(
            [
                PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "py"}),
                PartialInstance("app", key, inside_id="node"),
            ]
        )
        spec, system = deployed(registry, infrastructure, drivers, partial)
        machine = infrastructure.network.machine("py")
        manager = infrastructure.package_manager(machine)
        assert manager.is_installed("pypi-simplejson", "2.1")
        assert manager.install_path("pypi-simplejson").startswith(
            "/opt/python-runtime-2.7/lib/python2.7/site-packages"
        )


class TestDjangoAppDriverDetails:
    def test_settings_file_reflects_stack(
        self, registry, infrastructure, drivers
    ):
        app = table1_apps()[0]
        key = package_application(app, registry, infrastructure)
        partial = PartialInstallSpec(
            [
                PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "dj"}),
                PartialInstance("app", key, inside_id="node",
                                config={"debug": True,
                                        "secret_key": "s3cret"}),
                PartialInstance("web", as_key("Apache-HTTPD 2.2"),
                                inside_id="node"),
                PartialInstance("db", as_key("SQLite 3.7"),
                                inside_id="node"),
            ]
        )
        spec, system = deployed(registry, infrastructure, drivers, partial)
        machine = infrastructure.network.machine("dj")
        settings = machine.fs.read_file(
            "/opt/django-app-areneae-1.0/settings.py"
        )
        assert "DEBUG = True" in settings
        assert "SECRET_KEY = 's3cret'" in settings
        assert "DATABASE_ENGINE = 'sqlite'" in settings
        assert "SERVED_BY = 'apache'" in settings

    def test_sqlite_app_has_no_database_endpoint_check(
        self, registry, infrastructure, drivers
    ):
        app = table1_apps()[0]
        key = package_application(app, registry, infrastructure)
        partial = PartialInstallSpec(
            [
                PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                config={"hostname": "lite"}),
                PartialInstance("app", key, inside_id="node"),
                PartialInstance("db", as_key("SQLite 3.7"),
                                inside_id="node"),
            ]
        )
        spec, system = deployed(registry, infrastructure, drivers, partial)
        driver = system.driver("app")
        assert driver.upstream_endpoints() == []
