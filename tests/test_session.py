"""Incremental configuration sessions and partial-spec fingerprints."""

import pytest

from repro.config import (
    ConfigurationEngine,
    ConfigurationSession,
    canonical_form,
    fingerprint_partial,
)
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import UnsatisfiableError
from repro.dsl import full_to_json, load_resources
from repro.library import standard_registry


def figure2(hostname="demotest"):
    return PartialInstallSpec([
        PartialInstance("server", as_key("Mac-OSX 10.6"),
                        config={"hostname": hostname}),
        PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                        inside_id="server"),
        PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                        inside_id="tomcat"),
    ])


def conflict():
    return PartialInstallSpec([
        PartialInstance("server", as_key("Mac-OSX 10.6"),
                        config={"hostname": "h"}),
        PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                        inside_id="server"),
        PartialInstance("jdk_pin", as_key("JDK 1.6"), inside_id="server"),
        PartialInstance("jre_pin", as_key("JRE 1.6"), inside_id="server"),
    ])


class TestFingerprint:
    def test_instance_order_is_irrelevant(self):
        a = figure2()
        b = PartialInstallSpec(reversed(list(figure2())))
        assert list(a.ids()) != list(b.ids())
        assert fingerprint_partial(a) == fingerprint_partial(b)

    def test_config_key_order_is_irrelevant(self):
        a = PartialInstallSpec([
            PartialInstance("s", as_key("Mac-OSX 10.6"),
                            config={"hostname": "h", "os_user_name": "u"}),
        ])
        b = PartialInstallSpec([
            PartialInstance("s", as_key("Mac-OSX 10.6"),
                            config={"os_user_name": "u", "hostname": "h"}),
        ])
        assert fingerprint_partial(a) == fingerprint_partial(b)

    def test_config_value_changes_hash(self):
        assert (fingerprint_partial(figure2("a"))
                != fingerprint_partial(figure2("b")))

    def test_pinned_key_changes_hash(self):
        a = figure2()
        b = PartialInstallSpec([
            PartialInstance("server", as_key("Mac-OSX 10.5"),
                            config={"hostname": "demotest"}),
            *list(figure2())[1:],
        ])
        assert fingerprint_partial(a) != fingerprint_partial(b)

    def test_instance_id_changes_hash(self):
        a = PartialInstallSpec([PartialInstance("s1", as_key("Redis 2.4"))])
        b = PartialInstallSpec([PartialInstance("s2", as_key("Redis 2.4"))])
        assert fingerprint_partial(a) != fingerprint_partial(b)

    def test_inside_link_changes_hash(self):
        a = PartialInstallSpec([
            PartialInstance("m", as_key("Mac-OSX 10.6"),
                            config={"hostname": "h"}),
            PartialInstance("r", as_key("Redis 2.4"), inside_id="m"),
        ])
        b = PartialInstallSpec([
            PartialInstance("m", as_key("Mac-OSX 10.6"),
                            config={"hostname": "h"}),
            PartialInstance("r", as_key("Redis 2.4")),
        ])
        assert fingerprint_partial(a) != fingerprint_partial(b)

    @pytest.mark.parametrize("left,right", [
        (1, True), (1, 1.0), (1, "1"), (0, False), (0, None),
    ])
    def test_value_types_stay_distinct(self, left, right):
        a = PartialInstallSpec([
            PartialInstance("s", as_key("Mac-OSX 10.6"),
                            config={"hostname": left}),
        ])
        b = PartialInstallSpec([
            PartialInstance("s", as_key("Mac-OSX 10.6"),
                            config={"hostname": right}),
        ])
        assert fingerprint_partial(a) != fingerprint_partial(b)

    def test_canonical_form_sorted_by_id(self):
        form = canonical_form(PartialInstallSpec(reversed(list(figure2()))))
        assert [entry[0] for entry in form] == ["openmrs", "server", "tomcat"]


class TestSession:
    def test_results_match_engine_bit_for_bit(self):
        registry = standard_registry()
        engine = ConfigurationEngine(registry)
        session = ConfigurationSession(registry)
        for partial_fn in (figure2, lambda: figure2("other-host")):
            expected = engine.configure(partial_fn())
            for _ in range(2):  # cold, then warm
                got = session.configure(partial_fn())
                assert full_to_json(got.spec) == full_to_json(expected.spec)
                assert got.deployed_ids == expected.deployed_ids

    def test_warm_call_hits_every_cache(self):
        session = ConfigurationSession(standard_registry())
        cold = session.configure(figure2())
        assert cold.cache is not None
        assert not cold.cache.graph_hit
        assert not cold.cache.solver_reused
        warm = session.configure(figure2())
        assert warm.cache.graph_hit
        assert warm.cache.cnf_hit
        assert warm.cache.solver_reused
        assert warm.cache.typecheck_skipped
        assert warm.cache.fingerprint == cold.cache.fingerprint
        assert warm.solver_stats.solve_calls == 2  # one persistent solver
        stats = session.stats
        assert stats.configure_calls == 2
        assert (stats.graph_hits, stats.graph_misses) == (1, 1)
        assert (stats.cnf_hits, stats.cnf_misses) == (1, 1)
        assert (stats.solver_builds, stats.solver_reuses) == (1, 1)
        assert (stats.typecheck_runs, stats.typecheck_skips) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_warm_timings_skip_cached_phases(self):
        session = ConfigurationSession(standard_registry())
        session.configure(figure2())
        warm = session.configure(figure2())
        assert warm.timings.graph_ms == 0.0
        assert warm.timings.encode_ms == 0.0
        assert warm.timings.total_ms > 0.0

    def test_warm_specs_are_independent_containers(self):
        session = ConfigurationSession(standard_registry())
        first = session.configure(figure2())
        second = session.configure(figure2())
        assert first.spec is not second.spec
        first.spec.replace_instance(second.spec["server"])
        assert len(session.configure(figure2()).spec) == len(second.spec)

    def test_registry_mutation_flushes_caches(self):
        registry = standard_registry()
        session = ConfigurationSession(registry)
        session.configure(figure2())
        assert len(session) == 1
        load_resources(
            'resource "Fresh-Widget" 1.0 driver "null" {\n'
            '  inside "Server" { host -> host }\n'
            '  input host: { hostname: hostname, ip_address: string,\n'
            '                os_user_name: string }\n'
            "}\n",
            registry,
        )
        result = session.configure(figure2())
        assert not result.cache.graph_hit
        assert session.stats.invalidations == 1
        assert session.stats.graph_misses == 2

    def test_lru_eviction_bounds_the_cache(self):
        session = ConfigurationSession(standard_registry(), max_entries=1)
        session.configure(figure2("a"))
        session.configure(figure2("b"))
        assert len(session) == 1
        assert session.stats.evictions == 1
        # "a" was evicted: configuring it again is a miss.
        session.configure(figure2("a"))
        assert session.stats.graph_misses == 3

    def test_recently_used_entry_survives_eviction(self):
        session = ConfigurationSession(standard_registry(), max_entries=2)
        session.configure(figure2("a"))
        session.configure(figure2("b"))
        session.configure(figure2("a"))  # refresh "a"
        session.configure(figure2("c"))  # evicts "b", not "a"
        result = session.configure(figure2("a"))
        assert result.cache.graph_hit

    def test_unsat_raises_and_does_not_poison_the_session(self):
        session = ConfigurationSession(standard_registry())
        with pytest.raises(UnsatisfiableError):
            session.configure(conflict())
        result = session.configure(figure2())
        assert "openmrs" in result.spec
        with pytest.raises(UnsatisfiableError):
            session.configure(conflict())  # warm unsat still unsat

    def test_dpll_mode_matches_engine(self):
        registry = standard_registry()
        expected = ConfigurationEngine(registry, solver="dpll").configure(
            figure2()
        )
        session = ConfigurationSession(registry, solver="dpll")
        for _ in range(2):
            got = session.configure(figure2())
            assert full_to_json(got.spec) == full_to_json(expected.spec)

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            ConfigurationSession(standard_registry(), max_entries=0)


class TestPartitionCacheKeys:
    """Partitioned and monolithic runs of the *same* partial spec cache
    under distinct keys: the encodings differ (per-component CNFs vs one
    global formula), so sharing an entry would replay the wrong one."""

    def test_mode_flip_creates_two_entries(self):
        session = ConfigurationSession(standard_registry())
        mono = session.configure(figure2())
        part = session.configure(figure2(), partition=True)
        assert len(session) == 2
        assert not part.cache.graph_hit
        assert not part.cache.cnf_hit
        assert full_to_json(part.spec) == full_to_json(mono.spec)
        assert mono.partition is None and mono.formula is not None
        assert part.partition is not None and part.formula is None

    def test_each_mode_warms_its_own_entry(self):
        session = ConfigurationSession(standard_registry())
        for _ in range(2):
            session.configure(figure2())
            session.configure(figure2(), partition=True)
        assert len(session) == 2
        warm_mono = session.configure(figure2())
        warm_part = session.configure(figure2(), partition=True)
        assert warm_mono.cache.cnf_hit and warm_mono.cache.solver_reused
        assert warm_part.cache.cnf_hit and warm_part.cache.solver_reused
        assert full_to_json(warm_mono.spec) == full_to_json(warm_part.spec)

    def test_mode_flip_does_not_evict_the_other_mode(self):
        session = ConfigurationSession(standard_registry(), max_entries=2)
        session.configure(figure2())
        session.configure(figure2(), partition=True)
        assert session.configure(figure2()).cache.cnf_hit
        assert session.configure(
            figure2(), partition=True
        ).cache.cnf_hit
