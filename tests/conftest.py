"""Shared fixtures: the standard library world and the S2 OpenMRS spec."""

from __future__ import annotations

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)


@pytest.fixture
def registry():
    """A fresh copy of the standard resource library."""
    return standard_registry()


@pytest.fixture
def infrastructure():
    """A fresh simulation world with artifacts published and a cloud."""
    return standard_infrastructure()

@pytest.fixture
def drivers():
    """A driver registry covering the whole library."""
    return standard_drivers()


@pytest.fixture
def openmrs_partial():
    """The Figure 2 partial installation specification."""
    return PartialInstallSpec(
        [
            PartialInstance(
                "server",
                as_key("Mac-OSX 10.6"),
                config={"hostname": "demotest", "os_user_name": "root"},
            ),
            PartialInstance(
                "tomcat", as_key("Tomcat 6.0.18"), inside_id="server"
            ),
            PartialInstance(
                "openmrs", as_key("OpenMRS 1.8"), inside_id="tomcat"
            ),
        ]
    )
