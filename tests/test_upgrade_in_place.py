"""The in-place upgrade strategy (the paper's stated future work)."""

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import UpgradeError
from repro.config import ConfigurationEngine
from repro.django import (
    SimDatabase,
    fa_broken_snapshot,
    fa_snapshots,
    package_application,
)
from repro.runtime import (
    DeploymentEngine,
    UpgradeEngine,
    provision_partial_spec,
)


@pytest.fixture
def world(registry, infrastructure, drivers):
    fa_v1, fa_v2 = fa_snapshots()
    key_v1 = package_application(fa_v1, registry, infrastructure)
    key_v2 = package_application(fa_v2, registry, infrastructure)
    config_engine = ConfigurationEngine(registry, verify_registry=False)
    deploy_engine = DeploymentEngine(registry, infrastructure, drivers)

    def partial_for(key):
        return provision_partial_spec(
            registry,
            PartialInstallSpec(
                [
                    PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                    config={"hostname": "prod"}),
                    PartialInstance("app", key, inside_id="node"),
                    PartialInstance("web", as_key("Gunicorn 0.13"),
                                    inside_id="node"),
                    PartialInstance("db", as_key("MySQL 5.1"),
                                    inside_id="node"),
                ]
            ),
            infrastructure,
        )

    system = deploy_engine.deploy(
        config_engine.configure(partial_for(key_v1)).spec
    )
    machine = infrastructure.network.machine("prod")
    database = SimDatabase(machine.fs, "/var/lib/mysql/app.json")
    database.insert("applicants", {"id": 1, "name": "Ada", "area": "PL"})
    return {
        "system": system,
        "database": database,
        "partial_for": partial_for,
        "key_v2": key_v2,
        "upgrader": UpgradeEngine(config_engine, deploy_engine),
        "infrastructure": infrastructure,
        "registry": registry,
    }


class TestInPlace:
    def test_succeeds_and_migrates(self, world):
        result = world["upgrader"].upgrade(
            world["system"],
            world["partial_for"](world["key_v2"]),
            strategy="in_place",
        )
        assert result.succeeded
        assert result.system.is_deployed()
        assert "decision" in world["database"].columns("applicants")
        assert world["database"].count("applicants") == 1

    def test_untouched_services_never_stop(self, world):
        """MySQL and Gunicorn are unchanged AND not downstream of the
        app, so in-place leaves their processes running."""
        mysql_pid = world["system"].driver("db").process.pid
        web_pid = world["system"].driver("web").process.pid
        result = world["upgrader"].upgrade(
            world["system"],
            world["partial_for"](world["key_v2"]),
            strategy="in_place",
        )
        assert result.system.driver("db").process.pid == mysql_pid
        assert result.system.driver("web").process.pid == web_pid

    def test_changed_app_is_replaced(self, world):
        old_process = world["system"].driver("app").process
        result = world["upgrader"].upgrade(
            world["system"],
            world["partial_for"](world["key_v2"]),
            strategy="in_place",
        )
        new_process = result.system.driver("app").process
        assert new_process is not old_process
        assert str(result.system.spec["app"].key.version) == "2.0"

    def test_much_faster_than_replace(self, world):
        """The whole point: a small diff should cost far less simulated
        time than the worst-case replace strategy."""
        infrastructure = world["infrastructure"]
        before = infrastructure.clock.now
        result = world["upgrader"].upgrade(
            world["system"],
            world["partial_for"](world["key_v2"]),
            strategy="in_place",
        )
        in_place_seconds = infrastructure.clock.now - before
        assert result.succeeded

        # Fresh world for the replace baseline.
        from repro.library import (
            standard_drivers,
            standard_infrastructure,
            standard_registry,
        )

        registry = standard_registry()
        infra2 = standard_infrastructure()
        fa_v1, fa_v2 = fa_snapshots()
        k1 = package_application(fa_v1, registry, infra2)
        k2 = package_application(fa_v2, registry, infra2)
        ce = ConfigurationEngine(registry, verify_registry=False)
        de = DeploymentEngine(registry, infra2, standard_drivers())

        def pf(key):
            return provision_partial_spec(
                registry,
                PartialInstallSpec(
                    [
                        PartialInstance("node",
                                        as_key("Ubuntu-Linux 10.04"),
                                        config={"hostname": "prod"}),
                        PartialInstance("app", key, inside_id="node"),
                        PartialInstance("web", as_key("Gunicorn 0.13"),
                                        inside_id="node"),
                        PartialInstance("db", as_key("MySQL 5.1"),
                                        inside_id="node"),
                    ]
                ),
                infra2,
            )

        system = de.deploy(ce.configure(pf(k1)).spec)
        before = infra2.clock.now
        UpgradeEngine(ce, de).upgrade(system, pf(k2), strategy="replace")
        replace_seconds = infra2.clock.now - before

        assert in_place_seconds < replace_seconds / 3

    def test_failure_still_rolls_back(self, world):
        key_bad = package_application(
            fa_broken_snapshot(), world["registry"],
            world["infrastructure"],
        )
        result = world["upgrader"].upgrade(
            world["system"],
            world["partial_for"](key_bad),
            strategy="in_place",
        )
        assert not result.succeeded
        assert result.rolled_back
        assert result.system.is_deployed()
        assert str(result.system.spec["app"].key.version) == "1.0"
        assert world["database"].count("applicants") == 1

    def test_unknown_strategy_rejected(self, world):
        with pytest.raises(UpgradeError):
            world["upgrader"].upgrade(
                world["system"],
                world["partial_for"](world["key_v2"]),
                strategy="yolo",
            )
