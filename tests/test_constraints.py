"""Constraint generation (S4, Theorem 1) and the S2 example."""

import pytest

from repro.config import generate_constraints, generate_graph, selected_nodes
from repro.sat import CdclSolver, ExactlyOneEncoding


@pytest.fixture
def graph(registry, openmrs_partial):
    return generate_graph(registry, openmrs_partial)


class TestGeneration:
    def test_s2_constraint_census(self, graph):
        """The S2 example lists 3 facts, 2 exactly-one hyperedge
        constraints, 1 single-target peer implication, and 5 inside
        implications."""
        formula, stats = generate_constraints(graph)
        assert stats.facts == 3
        assert stats.hyperedges == 8
        assert stats.variables >= 6

        clauses = list(formula.clauses())
        units = [c for c in clauses if len(c) == 1]
        assert len(units) == 3
        # Each two-target env edge contributes one at-least-one clause of
        # width 3 (guard + two targets) and one guarded at-most-one.
        wide = [c for c in clauses if len(c) == 3]
        assert len(wide) == 4  # 2 edges x (ALO + AMO)

    def test_satisfiable(self, graph):
        formula, _ = generate_constraints(graph)
        assert CdclSolver(formula).solve()

    def test_model_matches_paper_shape(self, graph):
        """A model must deploy server/tomcat/openmrs/mysql and exactly one
        of {jdk, jre} -- the paper's example solution picks jdk=true,
        jre=false; either choice satisfies."""
        formula, _ = generate_constraints(graph)
        solver = CdclSolver(formula)
        assert solver.solve()
        model = {
            str(name): value
            for name, value in formula.decode_model(solver.model()).items()
        }
        for required in ("server", "tomcat", "openmrs", "mysql"):
            assert model[required] is True
        assert model["jdk"] != model["jre"]

    def test_sequential_encoding_equisatisfiable(self, graph):
        f1, s1 = generate_constraints(graph, ExactlyOneEncoding.PAIRWISE)
        f2, s2 = generate_constraints(graph, ExactlyOneEncoding.SEQUENTIAL)
        assert CdclSolver(f1).solve() == CdclSolver(f2).solve()
        assert s1.hyperedges == s2.hyperedges


class TestSelectedNodes:
    def test_closure_from_partial(self, graph):
        formula, _ = generate_constraints(graph)
        solver = CdclSolver(formula)
        solver.solve()
        model = {
            str(name): value
            for name, value in formula.decode_model(solver.model()).items()
        }
        deployed, choices = selected_nodes(graph, model)
        assert {"server", "tomcat", "openmrs", "mysql"} <= deployed
        # Exactly one java runtime deployed.
        assert len(deployed & {"jdk", "jre"}) == 1
        # Every edge of a deployed node has a chosen target.
        for node_id in deployed:
            for index, _ in enumerate(graph.edges_from(node_id)):
                assert (node_id, index) in choices

    def test_spurious_true_variables_pruned(self, graph):
        """Even if the model sets an unneeded node true, the closure
        drops anything unreachable from the partial spec."""
        formula, _ = generate_constraints(graph)
        solver = CdclSolver(formula)
        solver.solve()
        model = {
            str(name): value
            for name, value in formula.decode_model(solver.model()).items()
        }
        # Force both java nodes true in the decoded dict (simulating a
        # sloppier solver); the closure keeps just the chosen one per edge.
        model["jdk"] = True
        model["jre"] = True
        deployed, _ = selected_nodes(graph, model)
        # Both are now reachable picks, but each edge chooses exactly one
        # deterministically, so at most both-if-distinct-edges-pick-differently.
        # The key invariant: every deployed node is reachable.
        assert "server" in deployed
