"""Fleet deployment outcomes are invariant to execution knobs.

The partitioned configuration path feeds the *same* full specification
to the deployment layer as the monolithic one, so everything observable
downstream -- deploy reports, journal frontiers, trace event sequences,
chaos outcomes -- must be identical across ``--partition`` modes, and
(as PR 2 established for a single stack) across worker counts.
"""

from __future__ import annotations

import itertools

import pytest

from repro.config import ConfigurationEngine
from repro.core.errors import DeploymentFailure
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.library.fleet import FleetTopology, fleet_partial
from repro.obs import Tracer
from repro.runtime import DeploymentEngine, DeploymentJournal, RetryPolicy
from repro.sim import FaultPlan, FaultyWorld

TOPOLOGY = FleetTopology(replicas=3, machines=3)


def fleet_spec(partition: bool):
    registry = standard_registry()
    engine = ConfigurationEngine(registry, partition=partition)
    return registry, engine.configure(fleet_partial(TOPOLOGY)).spec


def healthy_outcome(jobs, partition: bool):
    """(final states, journal states, schedule) of a fault-free deploy."""
    registry, spec = fleet_spec(partition)
    infrastructure = standard_infrastructure()
    engine = DeploymentEngine(
        registry, infrastructure, standard_drivers()
    )
    journal = DeploymentJournal(spec)
    system = engine.deploy(spec, journal=journal, jobs=jobs)
    assert system.is_deployed()
    report = system.report
    schedule = (
        tuple(
            (a.instance_id, a.action, a.attempt, a.started_at, a.duration)
            for a in report.actions
        )
        if report is not None and report.actions
        else None
    )
    return (
        tuple(sorted(system.states().items())),
        tuple(sorted(journal.states().items())),
        schedule,
    )


def chaos_outcome(jobs, partition: bool, seed: int, rate: float):
    """Outcome under a seeded fault plan (scheduler chaos-parity shape)."""
    registry, spec = fleet_spec(partition)
    infrastructure = standard_infrastructure()
    FaultyWorld(infrastructure, FaultPlan.seeded(seed, rate, max_failures=2))
    engine = DeploymentEngine(
        registry, infrastructure, standard_drivers()
    )
    policy = RetryPolicy(max_attempts=2, backoff_base=0.1)
    try:
        system = engine.deploy(spec, policy=policy, jobs=jobs)
        return ("deployed", tuple(sorted(system.states().items())), None)
    except DeploymentFailure as failure:
        frontier = (
            frozenset(failure.completed),
            frozenset(failure.failed),
            frozenset(failure.skipped),
        )
        return (
            "failed", frontier, tuple(sorted(failure.journal.states().items()))
        )


def trace_sequence(jobs, partition: bool):
    """Deployment trace events, as comparable tuples."""
    registry, spec = fleet_spec(partition)
    infrastructure = standard_infrastructure()
    tracer = Tracer(clock=infrastructure.clock)
    infrastructure.set_tracer(tracer)
    engine = DeploymentEngine(
        registry, infrastructure, standard_drivers()
    )
    system = engine.deploy(spec, jobs=jobs)
    assert system.is_deployed()
    return tuple(
        (e.name, e.category, e.phase, e.timestamp, e.duration, e.lane)
        for e in tracer.sorted_events()
    )


class TestConfiguredSpecParity:
    def test_partition_modes_feed_identical_specs(self):
        from repro.dsl import full_to_json

        _, mono = fleet_spec(False)
        _, part = fleet_spec(True)
        assert full_to_json(mono) == full_to_json(part)


class TestHealthyDeployInvariance:
    def test_serial_baseline_across_partition_modes(self):
        assert healthy_outcome(None, False) == healthy_outcome(None, True)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_parallel_across_partition_modes(self, jobs):
        assert healthy_outcome(jobs, False) == healthy_outcome(jobs, True)

    @pytest.mark.slow
    def test_full_jobs_matrix(self):
        """States and journal frontiers agree across every worker count
        and both partition modes (schedules legitimately differ between
        serial and parallel engines, so compare states only)."""
        outcomes = {
            (jobs, partition): healthy_outcome(jobs, partition)[:2]
            for jobs, partition in itertools.product(
                [None, 1, 4, 0], [False, True]
            )
        }
        baseline = outcomes[(None, False)]
        assert all(value == baseline for value in outcomes.values())


class TestTraceInvariance:
    def test_trace_sequence_across_partition_modes(self):
        assert trace_sequence(4, False) == trace_sequence(4, True)

    @pytest.mark.slow
    def test_trace_sequence_serial(self):
        assert trace_sequence(None, False) == trace_sequence(None, True)


class TestChaosInvariance:
    @pytest.mark.parametrize("seed,rate", [(1, 0.25), (3, 0.6)])
    def test_partition_modes_agree_under_chaos(self, seed, rate):
        assert chaos_outcome(4, True, seed, rate) == chaos_outcome(
            4, False, seed, rate
        )

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "seed,rate", list(itertools.product([1, 2, 3, 5], [0.25, 0.6]))
    )
    def test_full_chaos_matrix(self, seed, rate):
        """Worker count x partition mode, all four corners equal."""
        corners = {
            (jobs, partition): chaos_outcome(jobs, partition, seed, rate)
            for jobs, partition in itertools.product([1, 4], [False, True])
        }
        baseline = corners[(1, False)]
        assert all(value == baseline for value in corners.values())
