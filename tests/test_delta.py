"""The delta deployment planner: spec-to-spec transitions for live
fleets.

The central property mirrors the chaos matrix: for seeded
(old, new) goal pairs, ``plan_delta`` + ``execute_delta`` must land the
world in the same place as a fresh fault-free ``deploy(new_spec)`` --
same driver states, same running processes (modulo pid: surviving
services keep the pids they already had, which a fresh world cannot
reproduce), same package databases, same machines on the network --
including when a fault interrupts the transition and it finishes
through ``resume``.  Two *identical* delta runs must be bit-identical
down to the persisted world and state files.
"""

from __future__ import annotations

import json

import pytest

from repro.config import ConfigurationEngine, ConfigurationSession
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import (
    ConfigurationError,
    DeploymentFailure,
    RuntimeEngageError,
)
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.library.fleet import (
    FleetTopology,
    fleet_partial,
    fleet_spec_entries,
)
from repro.runtime import (
    DeploymentEngine,
    DeploymentJournal,
    RepairOp,
    SpecTransition,
    UpgradeEngine,
    detect_drift,
    diff_specs,
    execute_delta,
    load_system_and_journal,
    plan_delta,
    save_system,
)
from repro.runtime.upgrade import _describe_exception
from repro.sim import FaultInjector, FaultPlan, FaultyWorld
from repro.sim.persistence import save_world

#: Single-stack fleets keep replica placement stable under growth:
#: replica ``i`` stays on ``host{i % machines}`` as long as the machine
#: count is fixed, so grow/shrink diffs touch only the edge replicas.
TOPOLOGY = FleetTopology(replicas=6, machines=3, stacks=("django",))


def build(partial):
    """Deploy ``partial`` on a fresh world; return the moving parts."""
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    config = ConfigurationEngine(
        registry, partition=True, verify_registry=False
    )
    spec = config.configure(partial).spec
    engine = DeploymentEngine(registry, infrastructure, standard_drivers())
    system = engine.deploy(spec, journal=DeploymentJournal(spec))
    assert system.is_deployed()
    return engine, infrastructure, system, spec


def configure(partial):
    return (
        ConfigurationEngine(
            standard_registry(), partition=True, verify_registry=False
        )
        .configure(partial)
        .spec
    )


def live_fingerprint(system, infrastructure):
    """What must match a fresh deploy of the same spec, modulo pid.

    Stopped process corpses are deliberately excluded: the simulator
    keeps them in the process table (like a real OS keeps log lines),
    and a transition that stopped something a fresh world never started
    is not a divergence.
    """
    machines = sorted(
        set(system.machines.values()), key=lambda m: m.hostname
    )
    return {
        "states": dict(sorted(system.states().items())),
        "running": {
            machine.hostname: sorted(
                (p.name, tuple(p.listen_ports), p.instance_id)
                for p in machine.processes()
                if p.state.value == "running"
            )
            for machine in machines
        },
        "packages": {
            machine.hostname: sorted(
                (record.name, record.version)
                for record in infrastructure.package_manager(
                    machine
                ).installed()
            )
            for machine in machines
        },
        "network": sorted(
            machine.hostname
            for machine in infrastructure.network.machines()
        ),
    }


def fresh_fingerprint(partial):
    """The fault-free reference: deploy ``partial`` on a fresh world."""
    _, infrastructure, system, _ = build(partial)
    return live_fingerprint(system, infrastructure)


# --------------------------------------------------------------------
# Goal mutations: each takes the base topology and returns the new
# partial spec.  These are the corpus generators.
# --------------------------------------------------------------------

def grow(topology, replicas=2):
    return fleet_partial(
        FleetTopology(
            replicas=topology.replicas + replicas,
            machines=topology.machines,
            stacks=topology.stacks,
        )
    )


def shrink(topology, replicas=2):
    return fleet_partial(
        FleetTopology(
            replicas=topology.replicas - replicas,
            machines=topology.machines,
            stacks=topology.stacks,
        )
    )


def reconfigure(topology, index=0):
    """Bump one replica's pinned cache port: a config-only change."""
    entries = fleet_spec_entries(topology)
    for entry in entries:
        if entry.id == f"cache{index:03d}":
            entry.config["port"] += 1000
            break
    else:
        raise AssertionError(f"no cache{index:03d} in fleet")
    return PartialInstallSpec(entries)


def move(topology, index=1):
    """Relocate one whole replica to the next machine over."""
    import dataclasses

    old_host = f"host{index % topology.machines:03d}"
    new_host = f"host{(index + 1) % topology.machines:03d}"
    entries = []
    moved = 0
    for entry in fleet_spec_entries(topology):
        if entry.inside_id == old_host and entry.id.endswith(f"{index:03d}"):
            entry = dataclasses.replace(entry, inside_id=new_host)
            moved += 1
        entries.append(entry)
    assert moved > 0
    return PartialInstallSpec(entries)


MUTATIONS = {
    "grow": grow,
    "shrink": shrink,
    "reconfigure": reconfigure,
    "move": move,
}


class TestPlanning:
    def test_identical_goal_is_a_noop(self):
        _, _, system, spec = build(fleet_partial(TOPOLOGY))
        delta = plan_delta(system, spec)
        assert delta.is_noop
        assert len(delta) == 0
        assert delta.stop_down == []
        assert delta.uninstall_down == []
        assert delta.retire_hostnames == []
        assert delta.up == []
        payload = delta.to_payload()
        assert payload["noop"] is True
        assert payload["diff"]["added"] == []

    def test_grow_plans_only_installs(self):
        _, _, system, spec = build(fleet_partial(TOPOLOGY))
        new_spec = configure(grow(TOPOLOGY))
        delta = plan_delta(system, new_spec)
        assert not delta.is_noop
        assert set(delta.plan.by_op()) == {"install"}
        added = set(new_spec.ids()) - set(spec.ids())
        assert set(delta.plan.instances(RepairOp.INSTALL)) == added
        assert len(delta) == len(added)
        # Growth never touches the live fleet.
        assert delta.stop_down == []
        assert delta.uninstall_down == []
        assert delta.retire_hostnames == []
        # The plan scales with the diff, not the fleet.
        assert len(delta) < len(new_spec) / 2

    def test_shrink_plans_uninstalls_in_reverse_order(self):
        _, _, system, spec = build(fleet_partial(TOPOLOGY))
        new_spec = configure(shrink(TOPOLOGY))
        delta = plan_delta(system, new_spec)
        removed = set(spec.ids()) - set(new_spec.ids())
        assert set(delta.plan.instances(RepairOp.UNINSTALL)) == removed
        assert set(delta.uninstall_down) == removed
        # Reverse dependency order: every instance uninstalls before
        # anything it depends on.
        position = {iid: i for i, iid in enumerate(delta.uninstall_down)}
        for iid in removed:
            for dependency in spec[iid].upstream_ids():
                if dependency in removed:
                    assert position[iid] < position[dependency]
        # Machines all survive a replica-only shrink.
        assert delta.retire_hostnames == []

    def test_machine_removal_plans_retire(self):
        old_partial = two_host_partial("hostA", "hostB")
        engine, infrastructure, system, _ = build(old_partial)
        new_spec = configure(one_host_partial("hostA"))
        delta = plan_delta(system, new_spec)
        assert delta.retire_hostnames == ["beta"]
        assert RepairOp.RETIRE.value in delta.plan.by_op()
        result = execute_delta(engine, system, delta)
        assert result.system.is_deployed()
        assert not infrastructure.network.has_machine("beta")
        assert infrastructure.network.has_machine("alpha")

    def test_lost_machine_refuses_delta(self):
        _, _, system, _ = build(fleet_partial(TOPOLOGY))
        FaultInjector(system, seed=1).crash_machines(1)
        new_spec = configure(grow(TOPOLOGY))
        with pytest.raises(RuntimeEngageError, match="reconcile"):
            plan_delta(system, new_spec)

    def test_detect_drift_allow_new_reports_additions(self):
        _, _, system, spec = build(fleet_partial(TOPOLOGY))
        new_spec = configure(grow(TOPOLOGY))
        drift = detect_drift(system, goal=new_spec, allow_new=True)
        added = set(new_spec.ids()) - set(spec.ids())
        assert added <= set(drift.missing_instances)
        # The strict default still refuses a grown goal.
        with pytest.raises(RuntimeEngageError, match="upgrade"):
            detect_drift(system, goal=new_spec)

    def test_session_revalidation_guards_the_goal(self):
        registry = standard_registry()
        session = ConfigurationSession(
            registry, partition=True, verify_registry=False
        )
        partial = fleet_partial(TOPOLOGY)
        spec = session.configure(partial).spec
        infrastructure = standard_infrastructure()
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        system = engine.deploy(spec, journal=DeploymentJournal(spec))
        new_partial = grow(TOPOLOGY)
        new_spec = session.configure(new_partial).spec
        delta = plan_delta(
            system, new_spec, session=session, new_partial=new_partial
        )
        # Revalidation re-derives whole components, so it covers at
        # least every instance the plan deploys.
        assert delta.revalidated >= len(delta.up)
        # A goal that no longer matches its own partial is refused:
        # hand-editing the configured spec is exactly the drift the
        # warm solver re-derivation catches.
        drifted = session.configure(new_partial).spec
        drifted["cache006"].config["port"] = 9
        with pytest.raises(ConfigurationError, match="goal drift"):
            plan_delta(
                system, drifted, session=session, new_partial=new_partial
            )
        # Half a revalidation request is a usage error.
        with pytest.raises(RuntimeEngageError, match="revalidation"):
            plan_delta(system, new_spec, session=session)


# --------------------------------------------------------------------
# Small hand-built worlds for the relocation / retirement cases.
# --------------------------------------------------------------------

def two_host_partial(*hosts, db_host=None):
    names = {"hostA": ("alpha", "10.0.0.1"), "hostB": ("beta", "10.0.0.2")}
    entries = [
        PartialInstance(
            host,
            as_key("Ubuntu-Linux 10.4"),
            config={
                "hostname": names[host][0],
                "ip_address": names[host][1],
            },
        )
        for host in hosts
    ]
    entries.append(
        PartialInstance(
            "db",
            as_key("MySQL 5.1"),
            inside_id=db_host or hosts[0],
            config={"database_name": "app", "port": 13306},
        )
    )
    return PartialInstallSpec(entries)


def one_host_partial(host):
    return two_host_partial(host)


class TestMovedInstances:
    """Regression: a changed ``inside`` link with identical key and
    config used to diff as *unchanged*, leaving the service running on
    the old machine forever."""

    def test_diff_classifies_relocation_as_moved(self):
        old = configure(two_host_partial("hostA", "hostB"))
        new = configure(
            two_host_partial("hostA", "hostB", db_host="hostB")
        )
        diff = diff_specs(old, new)
        assert diff.moved == ["db"]
        assert diff.upgraded == []
        assert diff.reconfigured == []
        assert "db" not in diff.unchanged
        assert diff.to_payload()["moved"] == ["db"]

    def running_hosts(self, infrastructure):
        return {
            machine.hostname: [
                p.name
                for p in machine.processes()
                if p.state.value == "running"
            ]
            for machine in infrastructure.network.machines()
        }

    def test_delta_relocates_the_process(self):
        engine, infrastructure, system, _ = build(
            two_host_partial("hostA", "hostB")
        )
        new_spec = configure(
            two_host_partial("hostA", "hostB", db_host="hostB")
        )
        delta = plan_delta(system, new_spec)
        upgrades = [
            step
            for step in delta.plan.steps
            if step.op is RepairOp.UPGRADE
        ]
        assert [step.instance_id for step in upgrades] == ["db"]
        assert "moved" in upgrades[0].reason
        result = execute_delta(engine, system, delta)
        assert result.system.is_deployed()
        running = self.running_hosts(infrastructure)
        assert running["alpha"] == []
        assert running["beta"] == ["mysqld-db"]

    def test_in_place_upgrade_relocates_the_process(self):
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        config = ConfigurationEngine(registry, verify_registry=False)
        spec = config.configure(two_host_partial("hostA", "hostB")).spec
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        system = engine.deploy(spec)
        upgrader = UpgradeEngine(config, engine)
        result = upgrader.upgrade(
            system,
            two_host_partial("hostA", "hostB", db_host="hostB"),
            strategy="in_place",
        )
        assert result.succeeded, result.error
        assert result.diff.moved == ["db"]
        running = self.running_hosts(infrastructure)
        assert running["alpha"] == []
        assert running["beta"] == ["mysqld-db"]


class TestRollbackGhostHosts:
    """Regression: machines first registered by a failed new-spec
    deploy survived rollback as ghost hosts on the network."""

    #: The rollback redeploy restarts services, so pids and the host
    #: activity log legitimately advance; everything else must restore
    #: to the bit.
    LOG = "/var/log/engage.log"

    def infrastructure_snapshot(self, infrastructure):
        result = {}
        for machine in infrastructure.network.machines():
            snap = machine.snapshot()
            fs = snap["fs"]
            fs["files"] = {
                path: text
                for path, text in fs["files"].items()
                if path != self.LOG
            }
            result[machine.hostname] = {
                "fs": fs,
                "processes": sorted(
                    (name, command, ports, state.value)
                    for name, command, ports, state in snap[
                        "processes"
                    ].values()
                    if state.value == "running"
                ),
                "packages": infrastructure.package_manager(
                    machine
                ).snapshot(),
            }
        return result

    @pytest.mark.parametrize("strategy", ["replace", "in_place", "delta"])
    def test_failed_grow_upgrade_leaves_no_ghosts(self, strategy):
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        config = ConfigurationEngine(registry, verify_registry=False)
        spec = config.configure(one_host_partial("hostA")).spec
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        system = engine.deploy(spec)
        before = self.infrastructure_snapshot(infrastructure)

        # The new goal adds hostB and a database on it; the database
        # install always fails, so hostB exists only because the failed
        # upgrade registered it.
        new_partial = two_host_partial("hostA", "hostB")
        new_partial.add(
            PartialInstance(
                "db2",
                as_key("MySQL 5.1"),
                inside_id="hostB",
                config={"database_name": "app2", "port": 13307},
            )
        )
        FaultyWorld(
            infrastructure,
            FaultPlan().on("driver:db2:install", times=100),
        )
        upgrader = UpgradeEngine(config, engine)
        result = upgrader.upgrade(system, new_partial, strategy=strategy)
        assert not result.succeeded
        assert result.rolled_back
        assert result.system.is_deployed()
        assert not infrastructure.network.has_machine("beta")
        assert self.infrastructure_snapshot(infrastructure) == before


class TestErrorReporting:
    """Regression: ``UpgradeResult.error`` was ``str(exc)`` -- empty for
    bare exceptions and typeless either way."""

    def test_describe_exception_never_empty(self):
        assert _describe_exception(RuntimeError()) == "RuntimeError"
        assert (
            _describe_exception(ValueError("boom")) == "ValueError: boom"
        )

    def test_failed_upgrade_names_the_exception_class(self):
        registry = standard_registry()
        infrastructure = standard_infrastructure()
        config = ConfigurationEngine(registry, verify_registry=False)
        spec = config.configure(one_host_partial("hostA")).spec
        engine = DeploymentEngine(
            registry, infrastructure, standard_drivers()
        )
        system = engine.deploy(spec)
        # One fault: it fails the upgrade's deploy pass and is spent by
        # the time the rollback redeploys the old system.
        FaultyWorld(
            infrastructure,
            FaultPlan().on("driver:db:start", times=1),
        )
        new = one_host_partial("hostA")
        new["db"].config["port"] = 14306
        result = UpgradeEngine(config, engine).upgrade(system, new)
        assert not result.succeeded
        assert result.error
        assert result.exception is not None
        assert result.error.startswith(type(result.exception).__name__)
        assert type(result.exception).__name__ in result.error


class TestEquivalenceCorpus:
    """delta-plan -> execute must land where a fresh deploy lands."""

    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_delta_matches_fresh_deploy(self, mutation):
        engine, infrastructure, system, _ = build(fleet_partial(TOPOLOGY))
        new_partial = MUTATIONS[mutation](TOPOLOGY)
        new_spec = configure(new_partial)
        delta = plan_delta(system, new_spec)
        result = execute_delta(engine, system, delta)
        assert result.system.is_deployed()
        assert result.journal.is_complete()
        assert result.journal.transition is None
        assert live_fingerprint(
            result.system, infrastructure
        ) == fresh_fingerprint(new_partial)

    @pytest.mark.parametrize(
        "seed,mutations",
        [
            (1, ("grow", "reconfigure")),
            (2, ("move", "grow")),
            (3, ("shrink", "reconfigure")),
        ],
    )
    def test_chained_deltas_match_fresh_deploy(self, seed, mutations):
        """Several transitions in sequence stay equivalent; the seed
        varies which replica each mutation touches."""
        engine, infrastructure, system, _ = build(fleet_partial(TOPOLOGY))
        topology = TOPOLOGY
        new_partial = None
        for step, name in enumerate(mutations):
            kwargs = {}
            if name == "reconfigure":
                kwargs["index"] = (seed + step) % topology.replicas
            if name == "move":
                kwargs["index"] = (seed + step) % topology.replicas
            new_partial = MUTATIONS[name](topology, **kwargs)
            new_spec = configure(new_partial)
            result = execute_delta(
                engine, system, plan_delta(system, new_spec)
            )
            system = result.system
            if name == "grow":
                topology = FleetTopology(
                    replicas=topology.replicas + 2,
                    machines=topology.machines,
                    stacks=topology.stacks,
                )
            if name == "shrink":
                topology = FleetTopology(
                    replicas=topology.replicas - 2,
                    machines=topology.machines,
                    stacks=topology.stacks,
                )
        assert live_fingerprint(
            system, infrastructure
        ) == fresh_fingerprint(new_partial)

    def test_identical_runs_are_bit_identical(self):
        """Same world, same goal, twice: the persisted world and state
        files must match byte for byte."""
        def run():
            engine, infrastructure, system, _ = build(
                fleet_partial(TOPOLOGY)
            )
            new_spec = configure(grow(TOPOLOGY))
            result = execute_delta(
                engine, system, plan_delta(system, new_spec)
            )
            return (
                save_world(infrastructure),
                save_system(result.system, result.journal),
            )

        assert run() == run()

    def test_crashed_unchanged_service_is_restarted(self):
        """The live drift report folds into the plan: an unchanged
        service found crashed is bounced as part of the transition."""
        engine, infrastructure, system, _ = build(fleet_partial(TOPOLOGY))
        cache = next(
            iid for iid in sorted(system.drivers)
            if iid.startswith("cache")
        )
        system.drivers[cache].process.fail()
        new_spec = configure(grow(TOPOLOGY))
        delta = plan_delta(system, new_spec)
        assert cache in delta.restart
        restart_steps = {
            step.instance_id
            for step in delta.plan.steps
            if step.op is RepairOp.RESTART
        }
        assert cache in restart_steps
        result = execute_delta(engine, system, delta)
        assert result.system.is_deployed()
        assert result.system.state_of(cache) == "active"


class TestFaultedTransitions:
    """A fault mid-transition leaves a resumable journal; ``resume``
    finishes the transition and the equivalence still holds."""

    def test_down_phase_fault_resumes_through_state_file(self):
        engine, infrastructure, system, spec = build(
            fleet_partial(TOPOLOGY)
        )
        new_partial = shrink(TOPOLOGY)
        new_spec = configure(new_partial)
        # web004 belongs to a removed replica: its stop is down-phase
        # work, and the single fault makes that stop fail fatally.
        FaultyWorld(
            infrastructure, FaultPlan().on("driver:web004:stop", times=1)
        )
        with pytest.raises(DeploymentFailure) as excinfo:
            execute_delta(engine, system, plan_delta(system, new_spec))
        failure = excinfo.value
        assert failure.journal is not None
        transition = failure.journal.transition
        assert transition is not None
        assert "web004" in transition.stop
        # The failure bundle speaks the *new* spec's language.
        assert set(failure.system.spec.ids()) == set(new_spec.ids())

        # Round-trip through the persisted state file, then resume.
        text = save_system(failure.system, failure.journal)
        registry = standard_registry()
        drivers = standard_drivers()
        _, journal = load_system_and_journal(
            registry, infrastructure, drivers, text
        )
        assert journal.transition is not None
        engine2 = DeploymentEngine(registry, infrastructure, drivers)
        resumed = engine2.resume(journal)
        assert resumed.is_deployed()
        assert journal.is_complete()
        assert journal.transition is None
        assert live_fingerprint(
            resumed, infrastructure
        ) == fresh_fingerprint(new_partial)

    def test_up_phase_fault_resumes(self):
        engine, infrastructure, system, _ = build(fleet_partial(TOPOLOGY))
        new_partial = grow(TOPOLOGY)
        new_spec = configure(new_partial)
        FaultyWorld(
            infrastructure,
            FaultPlan().on("driver:web006:install", times=1),
        )
        with pytest.raises(DeploymentFailure) as excinfo:
            execute_delta(engine, system, plan_delta(system, new_spec))
        failure = excinfo.value
        # A pure grow has no down phase, so no transition record.
        assert failure.journal.transition is None
        resumed = engine.resume(failure.journal)
        assert resumed.is_deployed()
        assert live_fingerprint(
            resumed, infrastructure
        ) == fresh_fingerprint(new_partial)

    def test_mixed_transition_fault_then_resume_is_equivalent(self):
        """Shrink + reconfigure with a down-phase fault: resume must
        finish the old spec's teardown *and* the new spec's rollout."""
        engine, infrastructure, system, _ = build(fleet_partial(TOPOLOGY))
        entries = fleet_spec_entries(
            FleetTopology(
                replicas=TOPOLOGY.replicas - 2,
                machines=TOPOLOGY.machines,
                stacks=TOPOLOGY.stacks,
            )
        )
        for entry in entries:
            if entry.id == "cache000":
                entry.config["port"] += 1000
        new_partial = PartialInstallSpec(entries)
        new_spec = configure(new_partial)
        FaultyWorld(
            infrastructure,
            FaultPlan().on("driver:broker005:stop", times=1),
        )
        with pytest.raises(DeploymentFailure) as excinfo:
            execute_delta(engine, system, plan_delta(system, new_spec))
        journal = excinfo.value.journal
        assert journal.transition is not None
        resumed = engine.resume(journal)
        assert resumed.is_deployed()
        assert journal.transition is None
        fresh = fresh_fingerprint(new_partial)
        assert live_fingerprint(resumed, infrastructure) == fresh


class TestTransitionJournal:
    def test_transition_survives_the_state_file(self):
        old_spec = configure(two_host_partial("hostA", "hostB"))
        new_spec = configure(one_host_partial("hostA"))
        journal = DeploymentJournal(new_spec)
        journal.begin_transition(
            SpecTransition(
                from_spec=old_spec,
                pending=["db", "hostB"],
                stop=["db"],
                retire=["beta"],
            )
        )
        payload = journal.to_payload()
        loaded = DeploymentJournal.from_payload(new_spec, payload)
        assert loaded.transition is not None
        assert loaded.transition.pending == ["db", "hostB"]
        assert loaded.transition.stop == ["db"]
        assert loaded.transition.retire == ["beta"]
        assert set(loaded.transition.from_spec.ids()) == set(
            old_spec.ids()
        )

    def test_one_transition_at_a_time(self):
        spec = configure(one_host_partial("hostA"))
        journal = DeploymentJournal(spec)
        transition = SpecTransition(
            from_spec=spec, pending=[], stop=[], retire=[]
        )
        journal.begin_transition(transition)
        with pytest.raises(RuntimeEngageError, match="transition"):
            journal.begin_transition(transition)

    def test_finish_purges_old_spec_ids(self):
        old_spec = configure(two_host_partial("hostA", "hostB"))
        new_spec = configure(one_host_partial("hostA"))
        journal = DeploymentJournal(new_spec)
        journal.begin_transition(
            SpecTransition(
                from_spec=old_spec,
                pending=["hostB"],
                stop=[],
                retire=["beta"],
            )
        )
        from repro.runtime import JournalEntry

        journal.record(
            JournalEntry("hostB", "observe:adopted", "active", "active", 0.0)
        )
        journal.finish_transition()
        assert journal.transition is None
        assert all(
            entry.instance_id in set(new_spec.ids())
            for entry in journal.entries
        )
        payload = journal.to_payload()
        assert "transition" not in payload


# --------------------------------------------------------------------
# CLI: `engage-sim plan` and `deploy --delta` / `deploy --resume`.
# --------------------------------------------------------------------

CACHE_DSL = """
resource "MiniCache" 1.0 driver "service" {
  inside "Server" { host -> host }
  input host: { hostname: hostname, ip_address: string,
                os_user_name: string }
  config port: tcp_port = 7070
  output kv: { host: hostname, port: tcp_port } =
    { host = input.host.hostname, port = config.port }
}
"""


def run_cli(argv):
    import io

    from repro.cli import main

    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def cli_spec_json(caches):
    return json.dumps(
        [{"id": "box", "key": "Ubuntu-Linux 10.04",
          "config_port": {"hostname": "day2"}}]
        + [
            {"id": name, "key": "MiniCache 1.0",
             "inside": {"id": "box"}, "config_port": {"port": port}}
            for name, port in caches
        ]
    )


@pytest.fixture
def cli_bundle(tmp_path):
    dsl = tmp_path / "stack.engage"
    dsl.write_text(CACHE_DSL)
    spec = tmp_path / "spec.json"
    spec.write_text(cli_spec_json([("cache", 7070)]))
    bundle_path = tmp_path / "bundle.json"
    code, _ = run_cli(
        ["deploy", "--types", str(dsl), str(spec), "--save",
         str(bundle_path)]
    )
    assert code == 0
    return tmp_path, str(bundle_path)


class TestCli:
    def test_plan_is_a_dry_run(self, cli_bundle):
        directory, bundle_path = cli_bundle
        goal = directory / "goal.json"
        goal.write_text(
            cli_spec_json([("cache", 7070), ("cache2", 7071)])
        )
        code, output = run_cli(["plan", bundle_path, str(goal)])
        assert code == 0
        payload = json.loads(output)
        assert payload["noop"] is False
        assert payload["diff"]["added"] == ["cache2"]
        assert payload["bundle"] == bundle_path
        assert [
            step["instance_id"] for step in payload["plan"]["steps"]
        ] == ["cache2"]
        # Dry: the deployed system is untouched.
        code, output = run_cli(["status", bundle_path])
        assert code == 0
        assert "cache2" not in output

    def test_deploy_delta_grows_the_bundle(self, cli_bundle):
        directory, bundle_path = cli_bundle
        goal = directory / "goal.json"
        goal.write_text(
            cli_spec_json([("cache", 7070), ("cache2", 7071)])
        )
        code, output = run_cli(
            ["deploy", "--delta", bundle_path, str(goal)]
        )
        assert code == 0, output
        assert "delta plan: 1 step(s)" in output
        code, output = run_cli(["status", bundle_path])
        assert code == 0
        assert "cache2" in output

    def test_deploy_delta_requires_a_goal(self, cli_bundle):
        _, bundle_path = cli_bundle
        code, output = run_cli(["deploy", "--delta", bundle_path])
        assert code == 2
        assert "partial spec" in output

    def test_faulted_delta_resumes_from_the_saved_bundle(
        self, cli_bundle
    ):
        directory, bundle_path = cli_bundle
        goal = directory / "goal.json"
        goal.write_text(cli_spec_json([("cache2", 7071)]))
        # Full-rate chaos fails the transition on its first action --
        # the stop of the replaced cache, i.e. mid down phase.
        code, output = run_cli(
            ["deploy", "--delta", bundle_path, str(goal),
             "--chaos-rate", "1.0", "--chaos-seed", "3"]
        )
        assert code == 1
        assert "resumable bundle saved" in output
        # The clean resume finishes the transition.
        code, output = run_cli(["deploy", "--resume", bundle_path])
        assert code == 0, output
        code, output = run_cli(["status", bundle_path])
        assert code == 0
        assert "cache2" in output
        assert "cache " not in output
