"""Hypergraph generation: GraphGen(R, I), Lemma 1, Figure 5."""

import pytest

from repro.core import (
    PartialInstallSpec,
    PartialInstance,
    as_key,
    define,
    ResourceTypeRegistry,
    STRING,
)
from repro.core.errors import (
    ConfigurationError,
    MissingInsideError,
    SpecError,
)
from repro.core.resource_type import DependencyKind
from repro.config import generate_graph, lower_alternatives


class TestOpenMrsGraph:
    """The Figure 5 structure, built from the Figure 2 partial spec."""

    @pytest.fixture
    def graph(self, registry, openmrs_partial):
        return generate_graph(registry, openmrs_partial)

    def test_six_nodes(self, graph):
        ids = {n.instance_id for n in graph.nodes()}
        assert ids == {"server", "tomcat", "openmrs", "jdk", "jre", "mysql"}

    def test_partial_nodes_marked(self, graph):
        marked = {n.instance_id for n in graph.nodes() if n.from_partial}
        assert marked == {"server", "tomcat", "openmrs"}

    def test_inside_edges(self, graph):
        inside = {
            (e.source_id, e.targets[0])
            for e in graph.edges()
            if e.kind == DependencyKind.INSIDE
        }
        assert inside == {
            ("tomcat", "server"),
            ("openmrs", "tomcat"),
            ("jdk", "server"),
            ("jre", "server"),
            ("mysql", "server"),
        }

    def test_java_hyperedges(self, graph):
        env_edges = [
            e for e in graph.edges() if e.kind == DependencyKind.ENVIRONMENT
        ]
        java_edges = [
            e for e in env_edges if set(e.targets) == {"jdk", "jre"}
        ]
        assert {e.source_id for e in java_edges} == {"tomcat", "openmrs"}

    def test_peer_edge(self, graph):
        peers = [e for e in graph.edges() if e.kind == DependencyKind.PEER]
        assert [(e.source_id, e.targets) for e in peers] == [
            ("openmrs", ("mysql",))
        ]

    def test_lemma1_every_node_reachable(self, graph, registry):
        # Every non-partial node is (transitively) depended on by some
        # partial-spec node.
        reachable = set()
        frontier = [n.instance_id for n in graph.nodes() if n.from_partial]
        while frontier:
            current = frontier.pop()
            if current in reachable:
                continue
            reachable.add(current)
            for edge in graph.edges_from(current):
                frontier.extend(edge.targets)
        assert reachable == {n.instance_id for n in graph.nodes()}

    def test_machine_of(self, graph):
        for node in graph.nodes():
            assert graph.machine_of(node.instance_id) == "server"

    def test_nodes_on_machine(self, graph):
        assert len(graph.nodes_on_machine("server")) == 6


class TestErrors:
    def test_abstract_in_partial_rejected(self, registry):
        partial = PartialInstallSpec(
            [PartialInstance("s", as_key("Server"))]
        )
        with pytest.raises(SpecError):
            generate_graph(registry, partial)

    def test_unresolved_inside_rejected(self, registry):
        partial = PartialInstallSpec(
            [PartialInstance("tomcat", as_key("Tomcat 6.0.18"))]
        )
        with pytest.raises(MissingInsideError):
            generate_graph(registry, partial)

    def test_unknown_inside_reference_rejected(self, registry):
        partial = PartialInstallSpec(
            [
                PartialInstance(
                    "tomcat", as_key("Tomcat 6.0.18"), inside_id="ghost"
                )
            ]
        )
        with pytest.raises(SpecError):
            generate_graph(registry, partial)

    def test_incompatible_container_rejected(self, registry):
        partial = PartialInstallSpec(
            [
                PartialInstance(
                    "server", as_key("Mac-OSX 10.6"),
                    config={"hostname": "h"},
                ),
                PartialInstance(
                    "mysql", as_key("MySQL 5.1"), inside_id="server"
                ),
                # OpenMRS must live inside Tomcat, not directly in a server.
                PartialInstance(
                    "openmrs", as_key("OpenMRS 1.8"), inside_id="server"
                ),
            ]
        )
        with pytest.raises(ConfigurationError):
            generate_graph(registry, partial)

    def test_machine_with_container_rejected(self, registry):
        partial = PartialInstallSpec(
            [
                PartialInstance("a", as_key("Mac-OSX 10.6"),
                                config={"hostname": "a"}),
                PartialInstance(
                    "b", as_key("Mac-OSX 10.6"), inside_id="a"
                ),
            ]
        )
        with pytest.raises(SpecError):
            generate_graph(registry, partial)


class TestMatchingRules:
    def test_pinned_instance_reused(self, registry, openmrs_partial):
        # Pin a MySQL instance; the peer dependency must reuse it instead
        # of materialising a new node.
        openmrs_partial.add(
            PartialInstance("mydb", as_key("MySQL 5.1"), inside_id="server")
        )
        graph = generate_graph(registry, openmrs_partial)
        mysql_nodes = [
            n for n in graph.nodes() if n.key == as_key("MySQL 5.1")
        ]
        assert [n.instance_id for n in mysql_nodes] == ["mydb"]

    def test_environment_requires_same_machine(self, registry):
        # Java on another machine must NOT satisfy Tomcat's env dep.
        partial = PartialInstallSpec(
            [
                PartialInstance("m1", as_key("Mac-OSX 10.6"),
                                config={"hostname": "m1"}),
                PartialInstance("m2", as_key("Mac-OSX 10.6"),
                                config={"hostname": "m2"}),
                PartialInstance("jdk_far", as_key("JDK 1.6"),
                                inside_id="m2"),
                PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                                inside_id="m1"),
            ]
        )
        graph = generate_graph(registry, partial)
        tomcat_env = [
            e
            for e in graph.edges_from("tomcat")
            if e.kind == DependencyKind.ENVIRONMENT
        ][0]
        assert "jdk_far" not in tomcat_env.targets
        # A fresh JDK was materialised on m1 instead.
        new_jdk = [t for t in tomcat_env.targets if t != "jdk_far"]
        for target in new_jdk:
            assert graph.machine_of(target) == "m1"

    def test_peer_may_cross_machines(self, registry):
        partial = PartialInstallSpec(
            [
                PartialInstance("m1", as_key("Mac-OSX 10.6"),
                                config={"hostname": "m1"}),
                PartialInstance("m2", as_key("Mac-OSX 10.6"),
                                config={"hostname": "m2"}),
                PartialInstance("db_far", as_key("MySQL 5.1"),
                                inside_id="m2"),
                PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                                inside_id="m1"),
                PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                                inside_id="tomcat"),
            ]
        )
        graph = generate_graph(registry, partial)
        peer = [
            e
            for e in graph.edges_from("openmrs")
            if e.kind == DependencyKind.PEER
        ][0]
        assert peer.targets == ("db_far",)

    def test_new_peer_colocated(self, registry, openmrs_partial):
        # The conservative placement rule: the materialised MySQL lives on
        # the dependent's machine.
        graph = generate_graph(registry, openmrs_partial)
        assert graph.machine_of("mysql") == "server"

    def test_peer_policy_error_refuses_materialisation(
        self, registry, openmrs_partial
    ):
        """With peer_policy='error', OpenMRS's MySQL peer must be pinned
        by the user; the engine refuses to invent one."""
        with pytest.raises(ConfigurationError):
            generate_graph(registry, openmrs_partial, peer_policy="error")

    def test_peer_policy_error_accepts_pinned_peer(
        self, registry, openmrs_partial
    ):
        openmrs_partial.add(
            PartialInstance("mydb", as_key("MySQL 5.1"), inside_id="server")
        )
        graph = generate_graph(
            registry, openmrs_partial, peer_policy="error"
        )
        assert "mydb" in graph

    def test_unknown_peer_policy_rejected(self, registry, openmrs_partial):
        with pytest.raises(ConfigurationError):
            generate_graph(registry, openmrs_partial, peer_policy="maybe")

    def test_fresh_ids_deterministic(self, registry, openmrs_partial):
        g1 = generate_graph(registry, openmrs_partial)
        g2 = generate_graph(registry, openmrs_partial)
        assert sorted(n.instance_id for n in g1.nodes()) == sorted(
            n.instance_id for n in g2.nodes()
        )


class TestLowerAlternatives:
    def test_abstract_expands_to_frontier(self, registry):
        tomcat = registry.effective(as_key("Tomcat 6.0.18"))
        java_dep = tomcat.environment[0]
        lowered = lower_alternatives(registry, java_dep)
        assert {alt.key for alt in lowered} == {
            as_key("JDK 1.6"),
            as_key("JRE 1.6"),
        }

    def test_concrete_passes_through(self, registry):
        openmrs = registry.effective(as_key("OpenMRS 1.8"))
        peer = openmrs.peers[0]
        lowered = lower_alternatives(registry, peer)
        assert [alt.key for alt in lowered] == [as_key("MySQL 5.1")]

    def test_mapping_inherited_by_frontier(self, registry):
        tomcat = registry.effective(as_key("Tomcat 6.0.18"))
        lowered = lower_alternatives(registry, tomcat.environment[0])
        for alt in lowered:
            assert alt.port_mapping.as_dict() == {"java": "java"}
