"""Fault-tolerant deployment: transient fault injection, retry policies,
and the resumable deployment journal.

The central property (chaos matrix, also run as a dedicated CI job):
for any seeded fault plan, a deployment that survives via retries -- or
fails fatally and is resumed from its journal -- must end *bit-identical*
to a fault-free deployment of the same spec: same driver states, same
processes, same installed packages, same persisted state file.
"""

from __future__ import annotations

import itertools
import os

import pytest

from repro.config import ConfigurationEngine
from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import (
    ActionTimeout,
    DeploymentFailure,
    TransientError,
    UpgradeError,
)
from repro.drivers import ACTIVE, INACTIVE, UNINSTALLED
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.runtime import (
    DeploymentEngine,
    DeploymentJournal,
    RetryPolicy,
    UpgradeEngine,
    load_system_and_journal,
    save_system,
)
from repro.sim import FaultKind, FaultPlan, FaultyWorld

#: Seeds for the chaos matrix; CI overrides via CHAOS_SEEDS="7 8 9".
SEEDS = [int(s) for s in os.environ.get("CHAOS_SEEDS", "1 2 3").split()]
RATES = [0.25, 0.6]


def openmrs_partial():
    return PartialInstallSpec(
        [
            PartialInstance(
                "server",
                as_key("Mac-OSX 10.6"),
                config={"hostname": "demotest", "os_user_name": "root"},
            ),
            PartialInstance(
                "tomcat", as_key("Tomcat 6.0.18"), inside_id="server"
            ),
            PartialInstance(
                "openmrs", as_key("OpenMRS 1.8"), inside_id="tomcat"
            ),
        ]
    )


def build_world():
    """A fresh world + engine + configured OpenMRS spec."""
    registry = standard_registry()
    infrastructure = standard_infrastructure()
    drivers = standard_drivers()
    spec = ConfigurationEngine(registry).configure(openmrs_partial()).spec
    engine = DeploymentEngine(registry, infrastructure, drivers)
    return infrastructure, engine, spec


def world_snapshot(system, infrastructure):
    """Everything that must be bit-identical across chaos scenarios:
    driver states, processes (sans timestamps), package databases, and
    the persisted state file."""
    machines = sorted(
        set(system.machines.values()), key=lambda m: m.hostname
    )
    return {
        "states": system.states(),
        "processes": {
            machine.hostname: [
                (p.pid, p.name, p.state.value, p.listen_ports, p.instance_id)
                for p in machine.processes()
            ]
            for machine in machines
        },
        "packages": {
            machine.hostname: [
                (record.name, record.version, tuple(record.files))
                for record in infrastructure.package_manager(
                    machine
                ).installed()
            ]
            for machine in machines
        },
        "state_file": save_system(system),
    }


@pytest.fixture(scope="module")
def baseline():
    """The fault-free reference deployment, computed once."""
    infrastructure, engine, spec = build_world()
    system = engine.deploy(spec)
    return world_snapshot(system, infrastructure)


class TestFaultPlan:
    def test_decisions_independent_of_call_order(self):
        sites = [f"driver:inst{i}:start" for i in range(12)]
        forward = FaultPlan.seeded(5, 0.5)
        backward = FaultPlan.seeded(5, 0.5)
        a = [forward.pending(site) for site in sites]
        b = list(
            reversed([backward.pending(site) for site in reversed(sites)])
        )
        assert a == b
        assert any(a), "rate 0.5 over 12 sites should fault something"

    def test_same_seed_same_plan(self):
        sites = [f"driver:x{i}:install" for i in range(20)]
        one = FaultPlan.seeded(9, 0.4)
        two = FaultPlan.seeded(9, 0.4)
        assert [one.pending(s) for s in sites] == [
            two.pending(s) for s in sites
        ]

    def test_different_seeds_differ(self):
        sites = [f"driver:x{i}:install" for i in range(40)]
        one = FaultPlan.seeded(1, 0.5)
        two = FaultPlan.seeded(2, 0.5)
        assert [one.pending(s) for s in sites] != [
            two.pending(s) for s in sites
        ]

    def test_explicit_rule_counts_down(self):
        from repro.sim import SimClock

        plan = FaultPlan().on("driver:mysql:start", times=2)
        clock = SimClock()
        assert plan.pending("driver:mysql:start") == 2
        with pytest.raises(TransientError):
            plan.fire("driver:mysql:start", clock)
        with pytest.raises(TransientError):
            plan.fire("driver:mysql:start", clock)
        plan.fire("driver:mysql:start", clock)  # exhausted: no-op
        assert plan.pending("driver:mysql:start") == 0
        assert len(plan.records) == 2

    def test_hang_needs_duration(self):
        with pytest.raises(ValueError):
            FaultPlan().on("x", kind=FaultKind.HANG)

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(0, 1.5)

    def test_faulty_world_context_manager(self):
        infrastructure, engine, spec = build_world()
        plan = FaultPlan().on("driver:*:install", times=1)
        with FaultyWorld(infrastructure, plan):
            assert infrastructure.fault_plan is plan
            assert infrastructure.downloads.fault_plan is plan
        assert infrastructure.fault_plan is None


class TestRetryPolicy:
    def test_backoff_exponential_and_deterministic(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_base=2.0, backoff_factor=3.0
        )
        first = policy.backoff_seconds(1, "mysql", "start")
        second = policy.backoff_seconds(2, "mysql", "start")
        assert first == policy.backoff_seconds(1, "mysql", "start")
        assert second > first
        # Jitter keeps the wait within [base, base * (1 + jitter)].
        assert 2.0 <= first <= 2.0 * 1.1
        assert 6.0 <= second <= 6.0 * 1.1

    def test_backoff_capped(self):
        policy = RetryPolicy(
            max_attempts=10, backoff_base=1.0, backoff_max=5.0, jitter=0.0
        )
        assert policy.backoff_seconds(9, "a", "b") == 5.0

    def test_classification(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.is_retryable(TransientError("x"))
        assert policy.is_retryable(ActionTimeout("x"))
        assert not policy.is_retryable(ValueError("x"))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)


class TestChaosMatrix:
    """The acceptance property, over a seed x rate matrix."""

    @pytest.mark.parametrize(
        "seed,rate", list(itertools.product(SEEDS, RATES))
    )
    def test_retry_converges_bit_identical(self, baseline, seed, rate):
        infrastructure, engine, spec = build_world()
        plan = FaultPlan.seeded(seed, rate, max_failures=2)
        FaultyWorld(infrastructure, plan)
        policy = RetryPolicy(max_attempts=4, backoff_base=0.5)
        system = engine.deploy(spec, policy=policy)
        assert system.is_deployed()
        assert world_snapshot(system, infrastructure) == baseline
        # Recovery is visible in the report: every injected fault shows
        # up as a failed attempt, and retried attempts waited backoff.
        failed = [a for a in system.report.actions if not a.succeeded]
        assert len(failed) == len(plan.records)
        if failed:
            assert system.report.total_backoff_seconds > 0.0

    @pytest.mark.parametrize(
        "seed,rate", list(itertools.product(SEEDS, RATES))
    )
    def test_fail_then_resume_bit_identical(self, baseline, seed, rate):
        """Without retries the seeded plan kills the deploy; resuming
        (repeatedly, like an operator re-running the tool) converges to
        the fault-free result."""
        infrastructure, engine, spec = build_world()
        plan = FaultPlan.seeded(seed, rate, max_failures=2)
        FaultyWorld(infrastructure, plan)
        # Each run without retries dies on (at most) one injected fault,
        # so total-planned-faults + 1 runs always suffice.
        rounds = 1 + sum(
            plan.pending(f"driver:{instance.id}:{action}")
            for instance in spec.topological_order()
            for action in ("install", "start")
        )
        journal = None
        system = None
        for _ in range(rounds):
            try:
                if journal is None:
                    system = engine.deploy(spec)
                else:
                    system = engine.resume(journal)
                break
            except DeploymentFailure as failure:
                journal = failure.journal
                assert journal is not None
        else:
            pytest.fail("deployment never converged")
        assert system.is_deployed()
        assert world_snapshot(system, infrastructure) == baseline


class TestConsistentFrontier:
    def test_fatal_failure_partitions_instances(self):
        infrastructure, engine, spec = build_world()
        plan = FaultPlan().on("driver:mysql:start", times=10)
        FaultyWorld(infrastructure, plan)
        policy = RetryPolicy(max_attempts=2, backoff_base=0.1)
        with pytest.raises(DeploymentFailure) as excinfo:
            engine.deploy(spec, policy=policy)
        failure = excinfo.value
        assert failure.failed == {"mysql"}
        system = failure.system
        order = [i.id for i in spec.topological_order()]
        at = order.index("mysql")
        # Completed prefix is active, failed instance stopped cleanly
        # mid-path (installed, not started), suffix untouched.
        assert failure.completed == set(order[:at])
        assert failure.skipped == frozenset(order[at + 1:])
        for instance_id in failure.completed:
            assert system.state_of(instance_id) == ACTIVE
        assert system.state_of("mysql") == INACTIVE
        for instance_id in failure.skipped:
            assert system.state_of(instance_id) == UNINSTALLED
        # No instance is mid-transition: every state is a basic state.
        assert set(system.states().values()) <= {
            ACTIVE, INACTIVE, UNINSTALLED,
        }
        # Dependents of the failed instance were never acted on.
        for dependent in spec.downstream_ids("mysql"):
            assert not failure.report.actions_for(dependent)
        # The journal agrees with the partition.
        journal = failure.journal
        assert journal.completed == failure.completed
        assert set(journal.failed) == {"mysql"}
        assert journal.skipped == set(failure.skipped)
        # Both attempts are visible in the report.
        mysql_starts = [
            a for a in failure.report.actions
            if a.instance_id == "mysql" and a.action == "start"
        ]
        assert [a.attempt for a in mysql_starts] == [1, 2]
        assert all(a.outcome == "transient-error" for a in mysql_starts)
        assert mysql_starts[0].backoff_seconds > 0.0
        assert mysql_starts[1].backoff_seconds == 0.0  # fatal, no wait

    def test_resume_after_fatal_failure(self, baseline):
        infrastructure, engine, spec = build_world()
        plan = FaultPlan().on("driver:mysql:start", times=3)
        FaultyWorld(infrastructure, plan)
        with pytest.raises(DeploymentFailure) as excinfo:
            engine.deploy(spec, policy=RetryPolicy(max_attempts=2))
        journal = excinfo.value.journal
        # One injected fault left; a retrying resume rides through it.
        system = engine.resume(
            journal, policy=RetryPolicy(max_attempts=2, backoff_base=0.1)
        )
        assert system.is_deployed()
        assert journal.is_complete()
        assert not journal.failed and not journal.skipped
        assert world_snapshot(system, infrastructure) == baseline
        # Resume only drove the remaining work: completed instances
        # contributed no new actions.
        resumed_ids = {a.instance_id for a in system.report.actions}
        assert "server" not in resumed_ids

    def test_journal_round_trips_through_state_file(self, baseline):
        infrastructure, engine, spec = build_world()
        plan = FaultPlan().on("driver:tomcat:install", times=1)
        FaultyWorld(infrastructure, plan)
        with pytest.raises(DeploymentFailure) as excinfo:
            engine.deploy(spec)
        failure = excinfo.value
        text = save_system(failure.system, failure.journal)
        assert '"engage-state-2"' in text
        registry = standard_registry()
        drivers = standard_drivers()
        loaded_system, loaded_journal = load_system_and_journal(
            registry, infrastructure, drivers, text
        )
        assert loaded_journal is not None
        assert loaded_journal.completed == failure.journal.completed
        assert loaded_journal.states() == failure.journal.states()
        engine2 = DeploymentEngine(registry, infrastructure, drivers)
        system = engine2.resume(loaded_journal)
        assert system.is_deployed()
        assert world_snapshot(system, infrastructure) == baseline


class TestFailureModes:
    def test_hang_beyond_budget_times_out_and_retries(self):
        infrastructure, engine, spec = build_world()
        plan = FaultPlan().on(
            "driver:mysql:start",
            kind=FaultKind.HANG,
            hang_seconds=300.0,
            times=1,
        )
        FaultyWorld(infrastructure, plan)
        policy = RetryPolicy(
            max_attempts=2, backoff_base=0.1, action_timeout=60.0
        )
        system = engine.deploy(spec, policy=policy)
        assert system.is_deployed()
        timeouts = [
            a for a in system.report.actions if a.outcome == "timeout"
        ]
        assert len(timeouts) == 1
        assert timeouts[0].instance_id == "mysql"
        # The hung attempt charged the 60s budget (plus the action's own
        # simulated cost), never the full 300s hang.
        assert 60.0 <= timeouts[0].duration < 300.0

    def test_hang_within_budget_is_just_slow(self):
        infrastructure, engine, spec = build_world()
        plan = FaultPlan().on(
            "driver:mysql:start",
            kind=FaultKind.HANG,
            hang_seconds=30.0,
            times=1,
        )
        FaultyWorld(infrastructure, plan)
        policy = RetryPolicy(max_attempts=2, action_timeout=60.0)
        system = engine.deploy(spec, policy=policy)
        assert system.is_deployed()
        assert all(a.succeeded for a in system.report.actions)
        starts = [
            a for a in system.report.actions
            if a.instance_id == "mysql" and a.action == "start"
        ]
        assert starts[0].duration >= 30.0

    def test_oslpm_level_fault_is_retried(self, baseline):
        """Faults injected beneath the drivers (at the package manager)
        classify and retry exactly like driver-level ones."""
        infrastructure, engine, spec = build_world()
        plan = FaultPlan().on("oslpm:demotest:install:mysql*", times=1)
        FaultyWorld(infrastructure, plan)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.1)
        system = engine.deploy(spec, policy=policy)
        assert system.is_deployed()
        assert len(plan.records) == 1
        assert plan.records[0].site.startswith("oslpm:demotest:install:")
        assert world_snapshot(system, infrastructure) == baseline

    def test_transient_fault_without_policy_is_fatal(self):
        infrastructure, engine, spec = build_world()
        FaultyWorld(
            infrastructure, FaultPlan().on("driver:jre:install", times=1)
        )
        with pytest.raises(DeploymentFailure) as excinfo:
            engine.deploy(spec)
        assert excinfo.value.failed == {"jre"}

    def test_non_transient_error_is_not_retried(self):
        """A fatal (non-transient) driver failure must not burn retries:
        one attempt, immediate failure."""
        infrastructure, engine, spec = build_world()
        # Sabotage the world: unpublish nothing, but make the artifact
        # lookup fail by pointing mysql's package at a missing version.
        engine_policy = RetryPolicy(max_attempts=4, backoff_base=0.1)
        system = engine.prepare(spec)
        from repro.core.errors import SimulationError

        driver = system.driver("mysql")

        def broken_install():
            raise SimulationError("package index corrupted")

        driver.do_install = broken_install
        report_error = None
        try:
            engine._drive(
                system, ACTIVE, reverse=False, policy=engine_policy
            )
        except DeploymentFailure as failure:
            report_error = failure
        assert report_error is not None
        attempts = [
            a for a in report_error.report.actions
            if a.instance_id == "mysql"
        ]
        assert len(attempts) == 1
        assert attempts[0].outcome == "error"


class TestUpgradeWithRetries:
    def test_upgrade_survives_transient_faults(self):
        infrastructure, engine, spec = build_world()
        system = engine.deploy(spec)
        # Chaos arrives *after* the initial deploy; the upgrade's stop /
        # redeploy passes must ride through it.
        plan = (
            FaultPlan()
            .on("driver:mysql:stop", times=1)
            .on("driver:tomcat:install", times=2)
        )
        FaultyWorld(infrastructure, plan)
        config = ConfigurationEngine(engine.registry)
        upgrader = UpgradeEngine(
            config,
            engine,
            retry_policy=RetryPolicy(max_attempts=4, backoff_base=0.1),
        )
        result = upgrader.upgrade(system, openmrs_partial())
        assert result.succeeded and not result.rolled_back
        assert result.system.is_deployed()
        assert plan.pending("driver:mysql:stop") == 0
        assert plan.pending("driver:tomcat:install") == 0

    def test_rollback_reuses_retry_policy(self):
        """New-system deploy fails fatally; the rollback redeploy hits a
        leftover transient fault and must retry through it."""
        infrastructure, engine, spec = build_world()
        system = engine.deploy(spec)
        # 5 faults at mysql:install vs 3 attempts per pass: the new
        # deploy burns 3 and fails fatally; the rollback's redeploy
        # absorbs the last 2 and succeeds on its third attempt.
        plan = FaultPlan().on("driver:mysql:install", times=5)
        FaultyWorld(infrastructure, plan)
        config = ConfigurationEngine(engine.registry)
        upgrader = UpgradeEngine(
            config,
            engine,
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.1),
        )
        result = upgrader.upgrade(system, openmrs_partial())
        assert not result.succeeded
        assert result.rolled_back
        assert result.system.is_deployed()
        assert plan.pending("driver:mysql:install") == 0

    def test_rollback_without_policy_dies_on_transient_fault(self):
        infrastructure, engine, spec = build_world()
        system = engine.deploy(spec)
        plan = FaultPlan().on("driver:mysql:install", times=100)
        FaultyWorld(infrastructure, plan)
        config = ConfigurationEngine(engine.registry)
        upgrader = UpgradeEngine(config, engine)  # no retry policy
        with pytest.raises(UpgradeError):
            upgrader.upgrade(system, openmrs_partial())


class TestJournalUnit:
    def test_states_folds_entries(self):
        _, engine, spec = build_world()
        journal = DeploymentJournal(spec)
        from repro.runtime import JournalEntry

        journal.record(
            JournalEntry("mysql", "install", UNINSTALLED, INACTIVE, 1.0)
        )
        journal.record(
            JournalEntry("mysql", "start", INACTIVE, ACTIVE, 2.0)
        )
        assert journal.states() == {"mysql": ACTIVE}
        assert "mysql" in journal.remaining()  # not marked completed
        journal.mark_completed("mysql")
        assert "mysql" not in journal.remaining()

    def test_payload_round_trip(self):
        _, engine, spec = build_world()
        journal = DeploymentJournal(spec)
        from repro.runtime import JournalEntry

        journal.record(
            JournalEntry("jre", "install", UNINSTALLED, INACTIVE, 3.5)
        )
        journal.mark_completed("server")
        journal.mark_failed("jre", "boom")
        journal.mark_skipped(["mysql", "tomcat", "openmrs"])
        clone = DeploymentJournal.from_payload(spec, journal.to_payload())
        assert clone.states() == journal.states()
        assert clone.completed == journal.completed
        assert clone.failed == journal.failed
        assert clone.skipped == journal.skipped
        assert clone.target == journal.target

    def test_payload_rejects_unknown_instances(self):
        _, engine, spec = build_world()
        from repro.core.errors import RuntimeEngageError

        with pytest.raises(RuntimeEngageError):
            DeploymentJournal.from_payload(
                spec, {"target": ACTIVE, "completed": ["ghost"]}
            )
