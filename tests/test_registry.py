"""The resource-type registry: indexing, flattening, frontiers."""

import pytest

from repro.core import (
    Lit,
    ResourceTypeRegistry,
    STRING,
    TCP_PORT,
    Version,
    VersionRange,
    as_key,
    define,
)
from repro.core.errors import (
    AbstractFrontierError,
    DuplicateKeyError,
    UnknownKeyError,
)


@pytest.fixture
def reg():
    registry = ResourceTypeRegistry()
    registry.register(define("Server", abstract=True).build())
    return registry


class TestRegistration:
    def test_duplicate_key_rejected(self, reg):
        with pytest.raises(DuplicateKeyError):
            reg.register(define("Server", abstract=True).build())

    def test_extends_unknown_rejected(self, reg):
        with pytest.raises(UnknownKeyError):
            reg.register(define("X", "1", extends="Nope").build())

    def test_lookup_unknown(self, reg):
        with pytest.raises(UnknownKeyError):
            reg.raw(as_key("Nope 1"))

    def test_iteration_sorted(self, reg):
        reg.register(define("Apple", "1").build())
        reg.register(define("Zebra", "1").build())
        names = [t.key.name for t in reg]
        assert names == sorted(names)

    def test_len(self, reg):
        assert len(reg) == 1


class TestFlattening:
    def test_inherited_ports(self, reg):
        reg.register(
            define("Base", abstract=True, extends="Server")
            .config("a", STRING, "base-a")
            .config("b", STRING, "base-b")
            .build()
        )
        reg.register(
            define("Sub", "1", extends="Base")
            .config("b", STRING, "sub-b")  # override
            .config("c", STRING, "sub-c")  # extension
            .build()
        )
        flat = reg.effective(as_key("Sub 1"))
        values = {
            p.name: p.default.evaluate.__self__.value
            if hasattr(p.default, "value")
            else None
            for p in flat.config_ports
        }
        by_name = {p.name: p.default for p in flat.config_ports}
        assert isinstance(by_name["a"], Lit) and by_name["a"].value == "base-a"
        assert isinstance(by_name["b"], Lit) and by_name["b"].value == "sub-b"
        assert isinstance(by_name["c"], Lit) and by_name["c"].value == "sub-c"

    def test_inherited_inside(self, reg):
        reg.register(
            define("Svc", abstract=True).inside("Server").build()
        )
        reg.register(define("SvcImpl", "1", extends="Svc").build())
        flat = reg.effective(as_key("SvcImpl 1"))
        assert flat.inside is not None
        assert flat.inside.keys() == (as_key("Server"),)

    def test_inherited_driver(self, reg):
        reg.register(
            define("D", abstract=True, driver="service").inside("Server").build()
        )
        reg.register(define("DImpl", "1", extends="D").build())
        assert reg.effective(as_key("DImpl 1")).driver_name == "service"

    def test_sub_driver_wins(self, reg):
        reg.register(
            define("E", abstract=True, driver="service").inside("Server").build()
        )
        reg.register(
            define("EImpl", "1", extends="E", driver="special").build()
        )
        assert reg.effective(as_key("EImpl 1")).driver_name == "special"

    def test_dependency_override_by_mapped_inputs(self, reg):
        reg.register(
            define("Need", abstract=True)
            .inside("Server")
            .output("o", STRING, "x")
            .build()
        )
        reg.register(
            define("NeedV2", "2", extends="Need")
            .output("o", STRING, "y")
            .build()
        )
        reg.register(
            define("User", abstract=True)
            .inside("Server")
            .env("Need", o="val")
            .input("val", STRING)
            .build()
        )
        reg.register(
            define("UserImpl", "1", extends="User")
            .env("NeedV2 2", o="val")  # refines the same input port
            .build()
        )
        flat = reg.effective(as_key("UserImpl 1"))
        assert len(flat.environment) == 1
        assert flat.environment[0].keys() == (as_key("NeedV2 2"),)


class TestFrontier:
    def test_concrete_is_own_frontier(self, reg):
        reg.register(define("Leaf", "1").build())
        assert reg.concrete_frontier(as_key("Leaf 1")) == [as_key("Leaf 1")]

    def test_stops_at_first_concrete(self, reg):
        reg.register(define("Mid", "1", extends="Server").build())
        reg.register(define("Deep", "2", extends="Mid 1").build())
        # Frontier of Server stops at Mid, not Deep.
        assert reg.concrete_frontier(as_key("Server")) == [as_key("Mid 1")]

    def test_multi_branch(self, reg):
        reg.register(define("A", "1", extends="Server").build())
        reg.register(define("B", "1", extends="Server").build())
        assert reg.concrete_frontier(as_key("Server")) == sorted(
            [as_key("A 1"), as_key("B 1")]
        )

    def test_abstract_leaf_error(self, reg):
        reg.register(
            define("OnlyAbstract", abstract=True, extends="Server").build()
        )
        with pytest.raises(AbstractFrontierError):
            reg.concrete_frontier(as_key("OnlyAbstract"))

    def test_nested_abstract(self, reg):
        reg.register(define("Mid2", abstract=True, extends="Server").build())
        reg.register(define("Leaf2", "1", extends="Mid2").build())
        assert reg.concrete_frontier(as_key("Server")) == [as_key("Leaf2 1")]


class TestVersionQueries:
    def test_versions_of(self, reg):
        reg.register(define("Tomcat", "5.5").build())
        reg.register(define("Tomcat", "6.0.18").build())
        assert reg.versions_of("Tomcat") == [
            Version.parse("5.5"),
            Version.parse("6.0.18"),
        ]

    def test_keys_in_range(self, reg):
        reg.register(define("Tomcat", "5.5").build())
        reg.register(define("Tomcat", "6.0.18").build())
        reg.register(define("Tomcat", "7.0").build())
        keys = reg.keys_in_range(
            "Tomcat",
            VersionRange(Version.parse("5.5"), Version.parse("6.0.29")),
        )
        assert keys == [as_key("Tomcat 5.5"), as_key("Tomcat 6.0.18")]


class TestMachines:
    def test_machines_lists_concrete_no_inside(self, reg):
        reg.register(define("Mac", "10.6", extends="Server").build())
        reg.register(define("Thing", "1").inside("Server").build())
        machines = reg.machines()
        assert as_key("Mac 10.6") in machines
        assert as_key("Thing 1") not in machines
        assert as_key("Server") not in machines  # abstract
