"""Static checking of full installation specifications."""

import dataclasses

import pytest

from repro.core import InstallSpec, as_key
from repro.core.errors import TypecheckError
from repro.config import ConfigurationEngine, check_spec, spec_problems


@pytest.fixture
def good_spec(registry, openmrs_partial):
    return ConfigurationEngine(registry).configure(openmrs_partial).spec


def rebuild(spec, **replacements):
    """A copy of ``spec`` with some instances replaced."""
    instances = []
    for instance in spec:
        instances.append(replacements.get(instance.id, instance))
    return InstallSpec(instances)


class TestCleanSpec:
    def test_no_problems(self, registry, good_spec):
        assert spec_problems(registry, good_spec) == []
        check_spec(registry, good_spec)  # no raise


class TestTampering:
    def test_wrong_input_value_detected(self, registry, good_spec):
        openmrs = good_spec["openmrs"]
        bad = dataclasses.replace(
            openmrs,
            inputs={**openmrs.inputs, "database": {
                **openmrs.inputs["database"], "port": 9999
            }},
        )
        problems = spec_problems(registry, rebuild(good_spec, openmrs=bad))
        assert any("linked provider exports" in p for p in problems)

    def test_missing_peer_link_detected(self, registry, good_spec):
        openmrs = good_spec["openmrs"]
        bad = dataclasses.replace(openmrs, peers=())
        problems = spec_problems(registry, rebuild(good_spec, openmrs=bad))
        assert any("unsatisfied peer dependency" in p for p in problems)

    def test_missing_inside_link_detected(self, registry, good_spec):
        openmrs = good_spec["openmrs"]
        bad = dataclasses.replace(openmrs, inside=None)
        problems = spec_problems(registry, rebuild(good_spec, openmrs=bad))
        assert any("missing inside link" in p for p in problems)

    def test_bad_port_type_detected(self, registry, good_spec):
        tomcat = good_spec["tomcat"]
        bad = dataclasses.replace(
            tomcat, config={**tomcat.config, "manager_port": "80"}
        )
        problems = spec_problems(registry, rebuild(good_spec, tomcat=bad))
        assert any("manager_port" in p for p in problems)

    def test_unknown_key_detected(self, registry, good_spec):
        mysql = good_spec["mysql"]
        bad = dataclasses.replace(mysql, key=as_key("NoSuchDB 1"))
        problems = spec_problems(registry, rebuild(good_spec, mysql=bad))
        assert any("unknown resource type" in p for p in problems)

    def test_check_spec_raises(self, registry, good_spec):
        openmrs = good_spec["openmrs"]
        bad = dataclasses.replace(openmrs, peers=())
        with pytest.raises(TypecheckError):
            check_spec(registry, rebuild(good_spec, openmrs=bad))


class TestPhysicalContext:
    def test_env_dep_on_wrong_machine_detected(
        self, registry, openmrs_partial
    ):
        """Move the Java runtime's container to a second machine: the
        environment dependency is then satisfied by an instance in the
        wrong physical context."""
        from repro.core import PartialInstance

        openmrs_partial.add(
            PartialInstance(
                "server2", as_key("Mac-OSX 10.6"),
                config={"hostname": "other"},
            )
        )
        spec = ConfigurationEngine(registry).configure(openmrs_partial).spec
        java_id = next(
            i.id for i in spec if i.key.name in ("JDK", "JRE")
        )
        java = spec[java_id]
        moved = dataclasses.replace(
            java,
            inside=dataclasses.replace(
                java.inside,
                target=spec["server2"].ref(),
            ),
        )
        problems = spec_problems(registry, rebuild(spec, **{java_id: moved}))
        assert any("different machine" in p for p in problems)
