"""Upgrades: diffing, the backup/replace protocol, rollback (S6.2)."""

import pytest

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.config import ConfigurationEngine
from repro.django import (
    SimDatabase,
    fa_broken_snapshot,
    fa_snapshots,
    package_application,
)
from repro.runtime import (
    DeploymentEngine,
    UpgradeEngine,
    diff_specs,
    provision_partial_spec,
)


@pytest.fixture
def world(registry, infrastructure, drivers):
    """FA v1 deployed on one production node, with a row in the db."""
    fa_v1, fa_v2 = fa_snapshots()
    key_v1 = package_application(fa_v1, registry, infrastructure)
    key_v2 = package_application(fa_v2, registry, infrastructure)
    config_engine = ConfigurationEngine(registry)
    deploy_engine = DeploymentEngine(registry, infrastructure, drivers)

    def partial_for(key):
        return provision_partial_spec(
            registry,
            PartialInstallSpec(
                [
                    PartialInstance("node", as_key("Ubuntu-Linux 10.04"),
                                    config={"hostname": "prod"}),
                    PartialInstance("app", key, inside_id="node"),
                    PartialInstance("web", as_key("Gunicorn 0.13"),
                                    inside_id="node"),
                    PartialInstance("db", as_key("MySQL 5.1"),
                                    inside_id="node"),
                ]
            ),
            infrastructure,
        )

    system = deploy_engine.deploy(
        config_engine.configure(partial_for(key_v1)).spec
    )
    machine = infrastructure.network.machine("prod")
    database = SimDatabase(machine.fs, "/var/lib/mysql/app.json")
    database.insert("applicants", {"id": 1, "name": "Ada", "area": "PL"})
    return {
        "system": system,
        "database": database,
        "partial_for": partial_for,
        "key_v2": key_v2,
        "upgrader": UpgradeEngine(config_engine, deploy_engine),
        "registry": registry,
        "infrastructure": infrastructure,
    }


class TestDiff:
    def test_categories(self, world):
        config_engine = ConfigurationEngine(world["registry"])
        old = world["system"].spec
        new = config_engine.configure(
            world["partial_for"](world["key_v2"])
        ).spec
        diff = diff_specs(old, new)
        assert "app" in diff.upgraded  # FA 1.0 -> FA 2.0
        assert "db" in diff.unchanged
        # v2 adds a pip package dependency.
        assert any("reportlab" in i for i in diff.added)

    def test_identical_specs(self, world):
        diff = diff_specs(world["system"].spec, world["system"].spec)
        assert not diff.added and not diff.removed and not diff.upgraded


class TestSuccessfulUpgrade:
    def test_schema_migrated_and_data_preserved(self, world):
        result = world["upgrader"].upgrade(
            world["system"], world["partial_for"](world["key_v2"])
        )
        assert result.succeeded
        assert not result.rolled_back
        database = world["database"]
        assert "decision" in database.columns("applicants")
        rows = database.rows("applicants")
        assert rows[0]["name"] == "Ada"
        assert rows[0]["decision"] == "pending"  # backfilled default

    def test_new_system_active(self, world):
        result = world["upgrader"].upgrade(
            world["system"], world["partial_for"](world["key_v2"])
        )
        assert result.system.is_deployed()
        assert result.system.spec["app"].key == world["key_v2"]


class TestFailedUpgradeRollsBack:
    @pytest.fixture
    def broken_key(self, world):
        return package_application(
            fa_broken_snapshot(), world["registry"], world["infrastructure"]
        )

    def test_rollback_reported(self, world, broken_key):
        result = world["upgrader"].upgrade(
            world["system"], world["partial_for"](broken_key)
        )
        assert not result.succeeded
        assert result.rolled_back
        assert "migration failed" in result.error

    def test_old_version_restored_and_running(self, world, broken_key):
        result = world["upgrader"].upgrade(
            world["system"], world["partial_for"](broken_key)
        )
        assert result.system.is_deployed()
        assert str(result.system.spec["app"].key.version) == "1.0"

    def test_data_survives_rollback(self, world, broken_key):
        world["upgrader"].upgrade(
            world["system"], world["partial_for"](broken_key)
        )
        assert world["database"].rows("applicants")[0]["name"] == "Ada"
        # The broken migration's partial work is gone with the restore.
        assert "0003_broken" not in [
            r["name"]
            for r in world["database"].rows("_applied_migrations")
        ]
