"""The public API surface: exports resolve and stay stable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.dsl",
    "repro.sat",
    "repro.config",
    "repro.drivers",
    "repro.runtime",
    "repro.sim",
    "repro.library",
    "repro.django",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__")
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_top_level_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_quickstart_from_module_docstring():
    """The snippet in repro's module docstring must actually work."""
    from repro import (
        ConfigurationEngine,
        DeploymentEngine,
        PartialInstallSpec,
        PartialInstance,
        as_key,
        standard_drivers,
        standard_infrastructure,
        standard_registry,
    )

    registry = standard_registry()
    infra = standard_infrastructure()
    partial = PartialInstallSpec(
        [
            PartialInstance("server", as_key("Mac-OSX 10.6"),
                            config={"hostname": "demo"}),
            PartialInstance("tomcat", as_key("Tomcat 6.0.18"),
                            inside_id="server"),
            PartialInstance("openmrs", as_key("OpenMRS 1.8"),
                            inside_id="tomcat"),
        ]
    )
    full = ConfigurationEngine(registry).configure(partial).spec
    system = DeploymentEngine(
        registry, infra, standard_drivers()
    ).deploy(full)
    assert system.is_deployed()


def test_no_private_leakage_in_public_all():
    import repro

    assert not any(name.startswith("_") for name in repro.__all__
                   if name != "__version__")


def test_error_hierarchy_is_catchable():
    """Every library error derives from EngageError."""
    from repro.core import errors

    base = errors.EngageError
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj in (Exception,):
                continue
            assert issubclass(obj, base), name
