"""The engage-sim CLI."""

import io
import json

import pytest

from repro.cli import main

FIGURE_2 = json.dumps(
    [
        {"id": "server", "key": "Mac-OSX 10.6",
         "config_port": {"hostname": "demotest"}},
        {"id": "tomcat", "key": "Tomcat 6.0.18", "inside": {"id": "server"}},
        {"id": "openmrs", "key": "OpenMRS 1.8", "inside": {"id": "tomcat"}},
    ]
)

CONFLICT = json.dumps(
    [
        {"id": "server", "key": "Mac-OSX 10.6",
         "config_port": {"hostname": "h"}},
        {"id": "tomcat", "key": "Tomcat 6.0.18", "inside": {"id": "server"}},
        {"id": "jdk_pin", "key": "JDK 1.6", "inside": {"id": "server"}},
        {"id": "jre_pin", "key": "JRE 1.6", "inside": {"id": "server"}},
    ]
)

CUSTOM_DSL = """
resource "MiniCache" 1.0 driver "service" {
  inside "Server" { host -> host }
  input host: { hostname: hostname, ip_address: string,
                os_user_name: string }
  config port: tcp_port = 7070
  output kv: { host: hostname, port: tcp_port } =
    { host = input.host.hostname, port = config.port }
}
"""


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "partial.json"
    path.write_text(FIGURE_2)
    return str(path)


class TestCheck:
    def test_stdlib_is_well_formed(self):
        code, output = run(["check"])
        assert code == 0
        assert "well-formed" in output

    def test_custom_types_loaded(self, tmp_path):
        dsl = tmp_path / "cache.engage"
        dsl.write_text(CUSTOM_DSL)
        code, output = run(["check", "--types", str(dsl)])
        assert code == 0

    def test_broken_types_reported(self, tmp_path):
        dsl = tmp_path / "bad.engage"
        dsl.write_text(
            'resource "Broken" 1.0 { inside "Nowhere" 9.9 }'
        )
        code, output = run(["check", "--types", str(dsl)])
        assert code == 1
        assert "unregistered" in output

    def test_parse_error_is_reported_not_raised(self, tmp_path):
        dsl = tmp_path / "syntax.engage"
        dsl.write_text("resource without quotes {")
        code, output = run(["check", "--types", str(dsl)])
        assert code == 2
        assert "error:" in output


class TestConfigure:
    def test_writes_full_spec(self, spec_file, tmp_path):
        out_file = tmp_path / "full.json"
        code, output = run(
            ["configure", spec_file, "-o", str(out_file)]
        )
        assert code == 0
        data = json.loads(out_file.read_text())
        ids = {entry["id"] for entry in data}
        assert {"server", "tomcat", "openmrs", "mysql"} <= ids

    def test_stdout_output(self, spec_file):
        code, output = run(["configure", spec_file])
        assert code == 0
        assert '"openmrs"' in output

    def test_missing_file(self):
        code, output = run(["configure", "/nonexistent.json"])
        assert code == 2
        assert "error:" in output

    def test_session_repeats_report_cache_hits(self, spec_file):
        code, output = run(
            ["configure", "--session", "--repeat", "3", spec_file]
        )
        assert code == 0
        lines = output.strip().splitlines()
        assert len(lines) == 4  # 3 per-call lines + summary
        assert "(cold)" in lines[0]
        for warm_line in lines[1:3]:
            assert "graph-hit" in warm_line
            assert "solver-reused" in warm_line
            assert "spec-reused" in warm_line
        assert "session: 3 calls, 2 graph hits / 1 misses" in lines[3]
        assert "2 solver reuses" in lines[3]

    def test_session_multiple_specs(self, spec_file, tmp_path):
        other = tmp_path / "other.json"
        other.write_text(FIGURE_2)
        code, output = run(
            ["configure", "--session", spec_file, str(other)]
        )
        assert code == 0
        # Identical structure under a different file name: same
        # fingerprint, so the second call is warm.
        assert "graph-hit" in output.strip().splitlines()[1]

    def test_session_output_with_single_spec(self, spec_file, tmp_path):
        out_file = tmp_path / "full.json"
        code, output = run(
            ["configure", "--session", "--repeat", "2",
             spec_file, "-o", str(out_file)]
        )
        assert code == 0
        data = json.loads(out_file.read_text())
        assert {"server", "tomcat", "openmrs"} <= {e["id"] for e in data}

    def test_output_refused_for_multiple_specs(self, spec_file, tmp_path):
        other = tmp_path / "other.json"
        other.write_text(FIGURE_2)
        code, output = run(
            ["configure", "--session", spec_file, str(other), "-o", "x.json"]
        )
        assert code == 2
        assert "error:" in output

    def test_multiple_specs_require_session(self, spec_file):
        code, output = run(["configure", spec_file, spec_file])
        assert code == 2
        assert "--session" in output


class TestGraph:
    def test_figure5(self, spec_file):
        code, output = run(["graph", spec_file])
        assert code == 0
        assert "6 instance nodes" in output
        assert "jdk" in output and "jre" in output
        assert "environment" in output


class TestExplain:
    def test_satisfiable(self, spec_file):
        code, output = run(["explain", spec_file])
        assert code == 0
        assert "satisfiable" in output

    def test_conflict(self, tmp_path):
        path = tmp_path / "conflict.json"
        path.write_text(CONFLICT)
        code, output = run(["explain", str(path)])
        assert code == 1
        assert "cannot be deployed together" in output


class TestRender:
    def test_stdlib_round_trips_through_render(self, tmp_path):
        code, output = run(["render"])
        assert code == 0
        assert 'abstract resource "Server"' in output
        # The rendered text is valid DSL: load it into a fresh registry.
        from repro.core import ResourceTypeRegistry
        from repro.dsl import load_resources

        registry = ResourceTypeRegistry()
        types = load_resources(output, registry)
        assert len(types) > 25

    def test_render_custom_only(self, tmp_path):
        dsl = tmp_path / "cache.engage"
        dsl.write_text(CUSTOM_DSL)
        code, output = run(["render", "--types", str(dsl)])
        assert code == 0
        assert "MiniCache" in output


class TestDimacs:
    def test_emits_valid_dimacs(self, spec_file):
        code, output = run(["dimacs", spec_file])
        assert code == 0
        assert "p cnf" in output
        from repro.sat import CdclSolver, parse_dimacs

        cnf_text = "\n".join(
            line for line in output.splitlines()
            if not line.startswith("c ") or line.startswith("c var")
        )
        formula = parse_dimacs(cnf_text)
        assert CdclSolver(formula).solve()

    def test_summary_comment(self, spec_file):
        code, output = run(["dimacs", spec_file])
        assert "hyperedges" in output


class TestDeploy:
    def test_full_deploy(self, spec_file):
        code, output = run(["deploy", spec_file])
        assert code == 0
        assert "active" in output
        assert "simulated time" in output

    def test_deploy_with_custom_type(self, tmp_path):
        dsl = tmp_path / "cache.engage"
        dsl.write_text(CUSTOM_DSL)
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                [
                    {"id": "box", "key": "Ubuntu-Linux 10.04",
                     "config_port": {"hostname": "box1"}},
                    {"id": "cache", "key": "MiniCache 1.0",
                     "inside": {"id": "box"}},
                ]
            )
        )
        code, output = run(
            ["deploy", "--types", str(dsl), str(spec)]
        )
        assert code == 0
        assert "cache" in output

    def test_unsat_deploy_reports_error(self, tmp_path):
        path = tmp_path / "conflict.json"
        path.write_text(CONFLICT)
        code, output = run(["deploy", str(path)])
        assert code == 2
        assert "cannot be deployed together" in output

TWO_NODE = json.dumps(
    [
        {"id": "appnode", "key": "Ubuntu-Linux 10.04",
         "config_port": {"hostname": "app1"}},
        {"id": "dbnode", "key": "Ubuntu-Linux 10.04",
         "config_port": {"hostname": "db1"}},
        {"id": "tomcat", "key": "Tomcat 6.0.18",
         "inside": {"id": "appnode"}},
        {"id": "openmrs", "key": "OpenMRS 1.8", "inside": {"id": "tomcat"}},
        {"id": "db", "key": "MySQL 5.1", "inside": {"id": "dbnode"}},
    ]
)


@pytest.fixture
def two_node_file(tmp_path):
    path = tmp_path / "two_node.json"
    path.write_text(TWO_NODE)
    return str(path)


class TestBusDeploy:
    def test_bus_deploy(self, two_node_file):
        code, output = run(["deploy", two_node_file, "--bus"])
        assert code == 0
        assert "bus:" in output
        assert "masters: master" in output
        assert output.count("active") == 6

    def test_bus_failover(self, two_node_file):
        code, output = run(
            ["deploy", two_node_file, "--bus", "--failover-at", "30"]
        )
        assert code == 0
        assert "masters: master, master-2" in output
        assert "failover: master-2 adopted at 30.0s" in output

    def test_bus_partition(self, two_node_file):
        code, output = run(
            ["deploy", two_node_file, "--bus",
             "--partition-at", "2", "--partition-for", "120"]
        )
        assert code == 0
        assert "partition: at 2.0s for 120.0s" in output
        assert "lost to partitions" in output

    def test_bus_crash_slave(self, two_node_file):
        code, output = run(
            ["deploy", two_node_file, "--bus",
             "--crash-slave", "dbnode", "--crash-after", "2",
             "--rejoin-after", "40"]
        )
        assert code == 0
        assert "1 crash(es)" in output
        assert output.count("active") == 6

    def test_bus_chaos_links(self, two_node_file):
        code, output = run(
            ["deploy", two_node_file, "--bus", "--bus-seed", "7",
             "--bus-drop", "0.1", "--bus-dup", "0.1",
             "--bus-jitter", "1.0"]
        )
        assert code == 0
        assert output.count("active") == 6

    def test_bus_save_round_trips_through_status(
        self, two_node_file, tmp_path
    ):
        bundle = tmp_path / "bundle.json"
        code, output = run(
            ["deploy", two_node_file, "--bus", "--save", str(bundle)]
        )
        assert code == 0
        assert "bundle saved" in output
        code, output = run(["status", str(bundle)])
        assert code == 0
        assert "6 instances on 2 machine(s)" in output
