"""The Figure 4 subtyping rules."""

import pytest

from repro.core import (
    ConfigPort,
    HOSTNAME,
    INT,
    Lit,
    OutputPort,
    Port,
    PortMapping,
    RecordType,
    ResourceTypeRegistry,
    STRING,
    TCP_PORT,
    as_key,
    define,
)
from repro.core.subtyping import (
    config_port_subtype,
    input_port_subtype,
    nominal_subtype,
    output_port_subtype,
    port_mapping_subtype,
    structural_subtype,
)


class TestPortRules:
    def test_input_contravariant(self):
        # A sub-resource may accept a *more general* input.
        general = Port("p", INT)
        specific = Port("p", TCP_PORT)
        assert input_port_subtype(general, specific)
        assert not input_port_subtype(specific, general)

    def test_config_covariant(self):
        specific = ConfigPort(Port("p", TCP_PORT), Lit(80))
        general = ConfigPort(Port("p", INT), Lit(80))
        assert config_port_subtype(specific, general)
        assert not config_port_subtype(general, specific)

    def test_output_covariant(self):
        specific = OutputPort(Port("p", TCP_PORT), Lit(80))
        general = OutputPort(Port("p", INT), Lit(80))
        assert output_port_subtype(specific, general)
        assert not output_port_subtype(general, specific)

    def test_names_must_match(self):
        a = Port("a", STRING)
        b = Port("b", STRING)
        assert not input_port_subtype(a, b)


class TestPortMappingRule:
    def test_superset_is_subtype(self):
        small = PortMapping.of(x="in_x")
        large = PortMapping.of(x="in_x", y="in_y")
        assert port_mapping_subtype(large, small)
        assert not port_mapping_subtype(small, large)

    def test_reflexive(self):
        m = PortMapping.of(a="b")
        assert port_mapping_subtype(m, m)


@pytest.fixture
def world():
    registry = ResourceTypeRegistry()
    registry.register(define("Machine", abstract=True).build())
    registry.register(define("Linux", "1", extends="Machine").build())
    return registry


class TestNominal:
    def test_reflexive(self, world):
        assert nominal_subtype(world, as_key("Linux 1"), as_key("Linux 1"))

    def test_declared_edge(self, world):
        assert nominal_subtype(world, as_key("Linux 1"), as_key("Machine"))
        assert not nominal_subtype(world, as_key("Machine"), as_key("Linux 1"))

    def test_transitive_chain(self, world):
        world.register(define("Ubuntu", "10", extends="Linux 1").build())
        assert nominal_subtype(world, as_key("Ubuntu 10"), as_key("Machine"))

    def test_unrelated(self, world):
        world.register(define("Other", abstract=True).build())
        assert not nominal_subtype(world, as_key("Linux 1"), as_key("Other"))


class TestStructural:
    def test_wider_ports_are_subtype(self, world):
        base = (
            define("Base", abstract=True)
            .inside("Machine")
            .config("a", STRING, "x")
            .output("o", STRING, "y")
            .build()
        )
        world.register(base)
        sub = (
            define("Sub", "1", extends="Base")
            .config("b", INT, 1)
            .output("o2", STRING, "z")
            .build()
        )
        world.register(sub)  # registration itself runs the structural check
        assert structural_subtype(
            world, world.effective(sub.key), world.effective(base.key)
        )

    def test_incompatible_override_rejected(self, world):
        world.register(
            define("Base2", abstract=True)
            .inside("Machine")
            .config("port", TCP_PORT, 80)
            .build()
        )
        from repro.core.errors import SubtypingError

        with pytest.raises(SubtypingError):
            world.register(
                define("Bad", "1", extends="Base2")
                .config("port", STRING, "eighty")  # not a subtype of tcp_port
                .build()
            )

    def test_missing_inside_not_subtype(self, world):
        base = define("WithInside", abstract=True).inside("Machine").build()
        world.register(base)
        standalone = define("NoInside", "1").build()
        assert not structural_subtype(
            world, standalone, world.effective(base.key)
        )

    def test_extra_dependency_still_subtype(self, world):
        world.register(
            define("Svc", abstract=True).inside("Machine").build()
        )
        base = define("App", abstract=True).inside("Machine").build()
        world.register(base)
        sub = (
            define("AppPlus", "1", extends="App")
            .env("Svc")
            .build()
        )
        world.register(sub)
        assert structural_subtype(
            world, world.effective(sub.key), world.effective(base.key)
        )

    def test_record_output_depth(self, world):
        base = (
            define("R", abstract=True)
            .inside("Machine")
            .output("rec", RecordType.of(host=STRING), Lit({"host": "h"}))
            .build()
        )
        world.register(base)
        sub = (
            define("RSub", "1", extends="R")
            .output(
                "rec",
                RecordType.of(host=HOSTNAME),  # hostname <: string
                Lit({"host": "h"}),
            )
            .build()
        )
        world.register(sub)
        assert structural_subtype(
            world, world.effective(sub.key), world.effective(base.key)
        )
