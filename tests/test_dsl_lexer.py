"""The DSL lexer."""

import pytest

from repro.core.errors import ParseError
from repro.dsl import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source(self):
        assert kinds("") == [TokenKind.EOF]

    def test_whitespace_only(self):
        assert kinds("  \t \n  ") == [TokenKind.EOF]

    def test_comments_skipped(self):
        assert kinds("# a comment\n# another") == [TokenKind.EOF]

    def test_comment_to_end_of_line(self):
        tokens = tokenize("x # rest ignored\ny")
        assert [t.text for t in tokens[:-1]] == ["x", "y"]


class TestStrings:
    def test_simple(self):
        token = tokenize('"Tomcat"')[0]
        assert token.kind == TokenKind.STRING
        assert token.text == "Tomcat"

    def test_escapes(self):
        assert tokenize(r'"a\"b\n\t\\"')[0].text == 'a"b\n\t\\'

    def test_unterminated(self):
        with pytest.raises(ParseError):
            tokenize('"never closed')

    def test_newline_inside_rejected(self):
        with pytest.raises(ParseError):
            tokenize('"line\nbreak"')


class TestNumbers:
    @pytest.mark.parametrize("text", ["0", "8080", "1.5", "6.0.18", "10.04"])
    def test_number_raw_text_kept(self, text):
        token = tokenize(text)[0]
        assert token.kind == TokenKind.NUMBER
        assert token.text == text

    def test_negative(self):
        assert tokenize("-5")[0].text == "-5"

    def test_trailing_dot_rejected(self):
        with pytest.raises(ParseError):
            tokenize("1.")


class TestIdentifiersAndKeywords:
    def test_keywords(self):
        for word in ("resource", "abstract", "inside", "env", "peer",
                     "input", "config", "output", "static", "format"):
            assert tokenize(word)[0].kind == TokenKind.KEYWORD

    def test_identifier(self):
        token = tokenize("manager_port")[0]
        assert token.kind == TokenKind.IDENT
        assert token.text == "manager_port"

    def test_identifier_with_digits(self):
        assert tokenize("port2")[0].text == "port2"


class TestPunctuation:
    def test_arrow(self):
        assert kinds("a -> b")[:3] == [
            TokenKind.IDENT,
            TokenKind.ARROW,
            TokenKind.IDENT,
        ]

    def test_all_single_chars(self):
        source = "{ } [ ] ( ) : = , . | *"
        expected = [
            TokenKind.LBRACE, TokenKind.RBRACE, TokenKind.LBRACKET,
            TokenKind.RBRACKET, TokenKind.LPAREN, TokenKind.RPAREN,
            TokenKind.COLON, TokenKind.EQUALS, TokenKind.COMMA,
            TokenKind.DOT, TokenKind.PIPE, TokenKind.STAR, TokenKind.EOF,
        ]
        assert kinds(source) == expected

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize('x\n  "s"')
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("ok\n   @")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 4
