"""Fuzz-style robustness: hostile input never crashes, only raises the
library's own error types.

Also home of the *seeded* random fleet-spec generator
(:func:`random_fleet_partial` / :func:`conflict_mutant`) used by the
partition property corpus in ``test_partition_properties.py``: plain
``random.Random`` rather than hypothesis, so each seed names exactly one
reproducible multi-component specification.
"""

from __future__ import annotations

import json
import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PartialInstallSpec, PartialInstance, as_key
from repro.core.errors import EngageError, ParseError, SpecError
from repro.dsl import parse_module, partial_from_json, tokenize
from repro.library.fleet import FleetTopology, fleet_spec_entries
from repro.sat import parse_dimacs


# -- Seeded fleet-spec generator ------------------------------------------

#: Dependency-free services that can be pinned on any machine.
_EXTRA_SERVICES = (
    "Memcached 1.4", "Redis 2.4", "Monit 5.3",
    "PostgreSQL 8.4", "MongoDB 2.0", "SQLite 3.7",
)
_MACHINE_KEYS = ("Ubuntu-Linux 10.4", "Ubuntu-Linux 10.10", "Mac-OSX 10.6")
_STACK_NAMES = ("openmrs", "jasper", "django")


def random_fleet_partial(seed: int) -> PartialInstallSpec:
    """A reproducible multi-machine partial spec for ``seed``.

    Fleet shape (machine count, replica count, stack mix, machine OS)
    and a sprinkle of extra pinned services with randomized
    configuration all derive from one ``random.Random(seed)`` stream, so
    the same seed always names the same specification.
    """
    rng = random.Random(seed)
    machines = rng.randint(1, 4)
    replicas = rng.randint(1, 2 * machines + 2)
    stacks = tuple(
        rng.sample(_STACK_NAMES, k=rng.randint(1, len(_STACK_NAMES)))
    )
    topology = FleetTopology(
        replicas=replicas,
        machines=machines,
        stacks=stacks,
        machine_key=rng.choice(_MACHINE_KEYS),
    )
    entries = list(fleet_spec_entries(topology))
    for extra in range(rng.randint(0, 4)):
        host = f"host{rng.randrange(machines):03d}"
        key = rng.choice(_EXTRA_SERVICES)
        config = {}
        if key.startswith(("Redis", "Memcached", "PostgreSQL")):
            config["port"] = rng.randint(1024, 65535)
        entries.append(
            PartialInstance(
                id=f"extra{extra:02d}",
                key=as_key(key),
                inside_id=host,
                config=config,
            )
        )
    return PartialInstallSpec(entries)


def conflict_mutant(seed: int) -> PartialInstallSpec:
    """An UNSAT mutant of :func:`random_fleet_partial`'s output.

    Pins both ``JDK 1.6`` and ``JRE 1.6`` on a machine that hosts a
    Tomcat: Tomcat's Java environment dependency then has *two* pinned
    providers, violating its exactly-one hyperedge.  When the fleet has
    no Tomcat (a django-only draw), one is pinned first.
    """
    rng = random.Random(~seed)
    entries = list(random_fleet_partial(seed))
    tomcat_hosts = sorted(
        entry.inside_id
        for entry in entries
        if entry.key.name == "Tomcat" and entry.inside_id is not None
    )
    if tomcat_hosts:
        host = rng.choice(tomcat_hosts)
    else:
        host = rng.choice(
            sorted(e.id for e in entries if e.inside_id is None)
        )
        entries.append(
            PartialInstance(
                id="mutant_tomcat", key=as_key("Tomcat 6.0.18"),
                inside_id=host, config={},
            )
        )
    entries.append(
        PartialInstance(
            id="mutant_jdk", key=as_key("JDK 1.6"), inside_id=host,
            config={},
        )
    )
    entries.append(
        PartialInstance(
            id="mutant_jre", key=as_key("JRE 1.6"), inside_id=host,
            config={},
        )
    )
    return PartialInstallSpec(entries)


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=60))
def test_lexer_total(source):
    """The lexer either tokenises or raises ParseError -- never anything
    else, never hangs."""
    try:
        tokens = tokenize(source)
        assert tokens[-1].kind.value == "eof"
    except ParseError:
        pass


@settings(max_examples=200, deadline=None)
@given(
    st.text(
        alphabet=string.ascii_letters + string.digits
        + ' "{}[]()<>:=,.|*->#\n\t',
        max_size=80,
    )
)
def test_parser_total(source):
    """The parser accepts or raises ParseError; no other exception."""
    try:
        parse_module(source)
    except ParseError:
        pass


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=80))
def test_partial_spec_parser_total(text):
    try:
        partial_from_json(text)
    except SpecError:
        pass


@settings(max_examples=150, deadline=None)
@given(
    st.recursive(
        st.none()
        | st.booleans()
        | st.integers()
        | st.text(max_size=8),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=6), children, max_size=4),
        max_leaves=12,
    )
)
def test_partial_spec_on_arbitrary_json(document):
    """Arbitrary well-formed JSON documents: parsed or SpecError."""
    try:
        partial_from_json(json.dumps(document))
    except SpecError:
        pass


@settings(max_examples=150, deadline=None)
@given(
    st.text(
        alphabet="pcnf 0123456789-\n", max_size=60
    )
)
def test_dimacs_parser_total(text):
    from repro.core.errors import ConfigurationError

    try:
        parse_dimacs(text)
    except (ConfigurationError, ValueError):
        # ValueError only from int() on pathological tokens like "-".
        pass


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=100))
def test_state_loader_total(text):
    from repro.core.errors import RuntimeEngageError
    from repro.library import (
        standard_drivers,
        standard_infrastructure,
        standard_registry,
    )
    from repro.runtime import load_system

    registry = standard_registry()
    infrastructure = standard_infrastructure()
    try:
        load_system(registry, infrastructure, standard_drivers(), text)
    except EngageError:
        pass
