"""Fuzz-style robustness: hostile input never crashes, only raises the
library's own error types."""

from __future__ import annotations

import json
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import EngageError, ParseError, SpecError
from repro.dsl import parse_module, partial_from_json, tokenize
from repro.sat import parse_dimacs


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=60))
def test_lexer_total(source):
    """The lexer either tokenises or raises ParseError -- never anything
    else, never hangs."""
    try:
        tokens = tokenize(source)
        assert tokens[-1].kind.value == "eof"
    except ParseError:
        pass


@settings(max_examples=200, deadline=None)
@given(
    st.text(
        alphabet=string.ascii_letters + string.digits
        + ' "{}[]()<>:=,.|*->#\n\t',
        max_size=80,
    )
)
def test_parser_total(source):
    """The parser accepts or raises ParseError; no other exception."""
    try:
        parse_module(source)
    except ParseError:
        pass


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=80))
def test_partial_spec_parser_total(text):
    try:
        partial_from_json(text)
    except SpecError:
        pass


@settings(max_examples=150, deadline=None)
@given(
    st.recursive(
        st.none()
        | st.booleans()
        | st.integers()
        | st.text(max_size=8),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=6), children, max_size=4),
        max_leaves=12,
    )
)
def test_partial_spec_on_arbitrary_json(document):
    """Arbitrary well-formed JSON documents: parsed or SpecError."""
    try:
        partial_from_json(json.dumps(document))
    except SpecError:
        pass


@settings(max_examples=150, deadline=None)
@given(
    st.text(
        alphabet="pcnf 0123456789-\n", max_size=60
    )
)
def test_dimacs_parser_total(text):
    from repro.core.errors import ConfigurationError

    try:
        parse_dimacs(text)
    except (ConfigurationError, ValueError):
        # ValueError only from int() on pathological tokens like "-".
        pass


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=100))
def test_state_loader_total(text):
    from repro.core.errors import RuntimeEngageError
    from repro.library import (
        standard_drivers,
        standard_infrastructure,
        standard_registry,
    )
    from repro.runtime import load_system

    registry = standard_registry()
    infrastructure = standard_infrastructure()
    try:
        load_system(registry, infrastructure, standard_drivers(), text)
    except EngageError:
        pass
