"""Whole-world serialisation and the CLI deploy/status/stop/start flow."""

import io
import json

import pytest

from repro.cli import main
from repro.core.errors import SimulationError
from repro.sim import Infrastructure, load_world, save_world


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def world():
    infrastructure = Infrastructure()
    infrastructure.package_index.publish_simple("pkg", "1.0", 5_000_000)
    infrastructure.downloads.prefetch("pkg", "1.0")
    machine = infrastructure.add_machine("m1", "mac-osx", "10.6")
    machine.fs.write_file("/etc/app.conf", "key=value")
    manager = infrastructure.package_manager(machine)
    manager.install("pkg", "1.0")
    process = machine.spawn_process("appd", listen_ports=[9000])
    stopped = machine.spawn_process("oneshot")
    machine.kill_process(stopped.pid)
    infrastructure.add_provider("cloud", provision_seconds=10)
    infrastructure.provider("cloud").provision("ubuntu-10.04")
    infrastructure.clock.advance(12.5, "work")
    return infrastructure


class TestWorldRoundtrip:
    def test_clock_preserved(self, world):
        loaded = load_world(save_world(world))
        assert loaded.clock.now == pytest.approx(world.clock.now)

    def test_machines_and_fs(self, world):
        loaded = load_world(save_world(world))
        machine = loaded.network.machine("m1")
        assert machine.os.name == "mac-osx"
        assert machine.fs.read_file("/etc/app.conf") == "key=value"

    def test_running_processes_rebound(self, world):
        loaded = load_world(save_world(world))
        assert loaded.network.can_connect("m1", 9000)
        machine = loaded.network.machine("m1")
        appd = machine.find_process("appd")
        assert appd is not None and appd.is_running()
        oneshot = machine.find_process("oneshot")
        assert oneshot is not None and not oneshot.is_running()

    def test_pid_counter_continues(self, world):
        loaded = load_world(save_world(world))
        machine = loaded.network.machine("m1")
        before = {p.pid for p in machine.processes()}
        fresh = machine.spawn_process("new")
        assert fresh.pid not in before

    def test_package_database(self, world):
        loaded = load_world(save_world(world))
        machine = loaded.network.machine("m1")
        manager = loaded.package_manager(machine)
        assert manager.is_installed("pkg", "1.0")
        assert manager.install_path("pkg") == "/opt/pkg-1.0"

    def test_artifacts_and_cache(self, world):
        loaded = load_world(save_world(world))
        assert loaded.package_index.has("pkg", "1.0")
        assert loaded.downloads.is_cached("pkg", "1.0")

    def test_providers(self, world):
        loaded = load_world(save_world(world))
        provider = loaded.provider("cloud")
        assert len(provider.nodes()) == 1
        # Serial continues: no hostname collision on the next provision.
        node = provider.provision("ubuntu-10.04")
        assert node.hostname == "cloud-node-002"

    def test_use_cache_flag_and_counters(self, world):
        world.downloads.fetch("pkg", "1.0")
        loaded = load_world(save_world(world))
        assert loaded.downloads.downloads == world.downloads.downloads
        assert loaded.downloads.cache_hits == world.downloads.cache_hits

        cold = Infrastructure(use_cache=False)
        reloaded = load_world(save_world(cold))
        assert reloaded.downloads._use_cache is False

    def test_malformed_rejected(self):
        with pytest.raises(SimulationError):
            load_world("{oops")

    def test_wrong_format_rejected(self, world):
        payload = json.loads(save_world(world))
        payload["format"] = "engage-world-9"
        with pytest.raises(SimulationError):
            load_world(json.dumps(payload))


FIGURE_2 = json.dumps(
    [
        {"id": "server", "key": "Mac-OSX 10.6",
         "config_port": {"hostname": "demotest"}},
        {"id": "tomcat", "key": "Tomcat 6.0.18", "inside": {"id": "server"}},
        {"id": "openmrs", "key": "OpenMRS 1.8", "inside": {"id": "tomcat"}},
    ]
)


class TestCliBundleFlow:
    @pytest.fixture
    def bundle(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(FIGURE_2)
        bundle_path = tmp_path / "bundle.json"
        code, output = run(
            ["deploy", str(spec), "--save", str(bundle_path)]
        )
        assert code == 0
        assert "bundle saved" in output
        return str(bundle_path)

    def test_status_after_deploy(self, bundle):
        code, output = run(["status", bundle])
        assert code == 0
        assert "openmrs" in output and "active" in output

    def test_stop_then_status(self, bundle):
        code, _ = run(["stop", bundle])
        assert code == 0
        code, output = run(["status", bundle])
        assert code == 1  # not fully deployed any more
        assert "inactive" in output
        assert "0 running process(es)" in output

    def test_stop_start_cycle(self, bundle):
        run(["stop", bundle])
        code, _ = run(["start", bundle])
        assert code == 0
        code, output = run(["status", bundle])
        assert code == 0
        assert "active" in output

    def test_clock_persists_across_invocations(self, bundle):
        _, first = run(["status", bundle])
        run(["stop", bundle])
        _, second = run(["status", bundle])
        minutes_first = float(first.rsplit(":", 1)[1].split()[0])
        minutes_second = float(second.rsplit(":", 1)[1].split()[0])
        assert minutes_second > minutes_first

    def test_bad_bundle_reported(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "other"}')
        code, output = run(["status", str(path)])
        assert code == 2
        assert "error" in output
