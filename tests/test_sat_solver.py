"""The CDCL solver, cross-checked against the DPLL baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.sat import CdclSolver, CnfFormula, DpllSolver, solve_formula


def formula_from(clauses, num_vars):
    f = CnfFormula()
    for _ in range(num_vars):
        f.new_var()
    for clause in clauses:
        f.add_clause(clause)
    return f


def check_model(formula, model):
    for clause in formula.clauses():
        assert any(model[abs(l)] == (l > 0) for l in clause), clause


class TestBasics:
    def test_trivial_sat(self):
        f = formula_from([[1]], 1)
        s = CdclSolver(f)
        assert s.solve()
        assert s.model()[1] is True

    def test_trivial_unsat(self):
        f = formula_from([[1], [-1]], 1)
        assert not CdclSolver(f).solve()

    def test_unit_propagation_chain(self):
        f = formula_from([[1], [-1, 2], [-2, 3], [-3, 4]], 4)
        s = CdclSolver(f)
        assert s.solve()
        assert all(s.model()[v] for v in range(1, 5))
        assert s.stats.decisions == 0  # pure propagation

    def test_requires_search(self):
        f = formula_from([[1, 2], [-1, 2], [1, -2]], 2)
        s = CdclSolver(f)
        assert s.solve()
        check_model(f, s.model())

    def test_model_before_solve_raises(self):
        with pytest.raises(ConfigurationError):
            CdclSolver(formula_from([[1]], 1)).model()

    def test_tautology_dropped(self):
        s = CdclSolver()
        s.add_clause([1, -1])
        s.add_clause([2])
        assert s.solve()

    def test_duplicate_literals_collapsed(self):
        s = CdclSolver()
        s.add_clause([1, 1, 1])
        assert s.solve()
        assert s.model()[1] is True

    def test_empty_clause_is_unsat(self):
        s = CdclSolver()
        s.add_clause([])
        assert not s.solve()

    def test_resolvable_after_unsat_stays_unsat(self):
        f = formula_from([[1], [-1]], 1)
        s = CdclSolver(f)
        assert not s.solve()
        assert not s.solve()  # idempotent


class TestAssumptions:
    def test_assumption_forces_value(self):
        f = formula_from([[1, 2]], 2)
        s = CdclSolver(f)
        assert s.solve([-1])
        assert s.model()[1] is False
        assert s.model()[2] is True

    def test_conflicting_assumptions(self):
        f = formula_from([[1, 2]], 2)
        s = CdclSolver(f)
        assert not s.solve([-1, -2])

    def test_assumption_against_unit(self):
        f = formula_from([[1]], 1)
        s = CdclSolver(f)
        assert not s.solve([-1])

    def test_solver_reusable_after_assumptions(self):
        f = formula_from([[1, 2]], 2)
        s = CdclSolver(f)
        assert not s.solve([-1, -2])
        assert s.solve([])
        assert s.solve([-1])


class TestIncremental:
    """One solver instance answering many queries (MiniSat-style)."""

    @staticmethod
    def relaxed_pigeonhole(holes):
        """PHP(holes+1, holes) with a relaxation literal ``r`` added to
        every hole-exclusivity clause: UNSAT under ``-r``, trivially SAT
        under ``r``."""
        pigeons = holes + 1
        f = CnfFormula()
        r = f.new_var()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[(p, h)] = f.new_var()
        for p in range(pigeons):
            f.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    f.add_clause([r, -var[(p1, h)], -var[(p2, h)]])
        return f, r

    def test_assumptions_fully_undone_between_solves(self):
        f = formula_from([[1, 2], [-2, 3]], 3)
        s = CdclSolver(f)
        assert s.solve([-1])
        assert s.model()[1] is False
        # The opposite assumption must be satisfiable on the same
        # solver: nothing from the first call may stay on the trail.
        assert s.solve([1, -2])
        assert s.model()[1] is True
        assert s.solve([])

    def test_learned_clauses_persist_across_solves(self):
        f, r = self.relaxed_pigeonhole(4)
        s = CdclSolver(f)
        assert not s.solve([-r])
        first_conflicts = s.stats.conflicts
        assert first_conflicts > 0
        assert s.solve([r])  # relaxed: satisfiable
        sat_conflicts = s.stats.conflicts
        assert not s.solve([-r])  # same hard query again
        # The clauses learned during the first refutation are still in
        # the database, so the re-refutation takes fewer new conflicts.
        assert s.stats.conflicts - sat_conflicts < first_conflicts
        assert s.stats.solve_calls == 3

    def test_unsat_under_assumptions_does_not_poison_later_sat(self):
        f, r = self.relaxed_pigeonhole(3)
        s = CdclSolver(f)
        assert not s.solve([-r])
        assert s.solve([])
        check_model(f, s.model())
        assert not s.solve([-r])
        assert s.solve([r])
        check_model(f, s.model())

    def test_add_clause_after_solve_flips_answer(self):
        f = formula_from([[1, 2]], 2)
        s = CdclSolver(f)
        assert s.solve()
        s.add_clause([-1])
        assert s.solve()
        assert s.model()[1] is False
        assert s.model()[2] is True
        s.add_clause([-2])
        assert not s.solve()

    def test_add_clause_after_solve_participates_in_propagation(self):
        # The clause added mid-stream must get watches: its unit
        # consequences have to fire inside later searches.
        f = formula_from([[1, 2], [3, 4]], 4)
        s = CdclSolver(f)
        assert s.solve([-1])
        s.add_clause([-2, 3])
        s.add_clause([-3, -4])
        for assumptions in ([-1], [-1, -4], [2, 3]):
            assert s.solve(assumptions)
            check_model(f, s.model())
            m = s.model()
            assert (not m[2]) or m[3]
            assert (not m[3]) or (not m[4])
        assert not s.solve([2, 4])

    def test_incremental_matches_fresh_solver(self):
        rng = random.Random(7)
        f = CnfFormula()
        for _ in range(12):
            f.new_var()
        s = CdclSolver(f)
        clauses = []
        for _ in range(40):
            clause = rng.sample(range(1, 13), 3)
            clause = [v if rng.random() < 0.5 else -v for v in clause]
            clauses.append(clause)
            s.add_clause(clause)
            fresh = CdclSolver(formula_from(clauses, 12))
            assert s.solve() == fresh.solve()


class TestPigeonhole:
    """PHP(n+1, n) is classically hard for resolution and a good
    stress test for conflict analysis."""

    @staticmethod
    def pigeonhole(holes):
        pigeons = holes + 1
        f = CnfFormula()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[(p, h)] = f.new_var()
        for p in range(pigeons):
            f.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    f.add_clause([-var[(p1, h)], -var[(p2, h)]])
        return f

    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_unsat(self, holes):
        assert not CdclSolver(self.pigeonhole(holes)).solve()

    def test_satisfiable_variant(self):
        # n pigeons in n holes is satisfiable.
        f = CnfFormula()
        n = 4
        var = {}
        for p in range(n):
            for h in range(n):
                var[(p, h)] = f.new_var()
        for p in range(n):
            f.add_clause([var[(p, h)] for h in range(n)])
        for h in range(n):
            for p1 in range(n):
                for p2 in range(p1 + 1, n):
                    f.add_clause([-var[(p1, h)], -var[(p2, h)]])
        s = CdclSolver(f)
        assert s.solve()
        check_model(f, s.model())


class TestAgainstDpll:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_3sat_agreement(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            n = rng.randint(5, 14)
            m = rng.randint(n, 5 * n)
            clauses = []
            for _ in range(m):
                lits = rng.sample(range(1, n + 1), min(3, n))
                clauses.append(
                    [l if rng.random() < 0.5 else -l for l in lits]
                )
            f = formula_from(clauses, n)
            cdcl = CdclSolver(f.copy())
            dpll = DpllSolver(f.copy())
            sat_cdcl = cdcl.solve()
            sat_dpll = dpll.solve()
            assert sat_cdcl == sat_dpll
            if sat_cdcl:
                check_model(f, cdcl.model())
                check_model(f, dpll.model())

    def test_no_vsids_agreement(self):
        rng = random.Random(99)
        for _ in range(20):
            n = rng.randint(5, 12)
            clauses = [
                [
                    l if rng.random() < 0.5 else -l
                    for l in rng.sample(range(1, n + 1), 3)
                ]
                for _ in range(3 * n)
            ]
            f = formula_from(clauses, n)
            with_vsids = CdclSolver(f.copy(), use_vsids=True).solve()
            without = CdclSolver(f.copy(), use_vsids=False).solve()
            assert with_vsids == without

    def test_no_restarts_agreement(self):
        rng = random.Random(7)
        for _ in range(20):
            n = rng.randint(5, 12)
            clauses = [
                [
                    l if rng.random() < 0.5 else -l
                    for l in rng.sample(range(1, n + 1), 3)
                ]
                for _ in range(4 * n)
            ]
            f = formula_from(clauses, n)
            restarting = CdclSolver(f.copy(), use_restarts=True).solve()
            steady = CdclSolver(f.copy(), use_restarts=False).solve()
            assert restarting == steady


class TestClauseReduction:
    def test_reduction_preserves_answers(self):
        """Aggressive clause-database reduction must not change
        satisfiability on random instances."""
        rng = random.Random(5)
        for _ in range(15):
            n = rng.randint(8, 14)
            clauses = [
                [
                    l if rng.random() < 0.5 else -l
                    for l in rng.sample(range(1, n + 1), 3)
                ]
                for _ in range(4 * n)
            ]
            f = formula_from(clauses, n)
            baseline = CdclSolver(f.copy(), max_learned=1 << 30).solve()
            aggressive = CdclSolver(
                f.copy(), max_learned=4, restart_base=5
            )
            assert aggressive.solve() == baseline

    def test_reduction_fires_on_hard_instance(self):
        f = TestPigeonhole.pigeonhole(6)
        s = CdclSolver(f, max_learned=20, restart_base=5)
        assert not s.solve()
        assert s.stats.deleted_clauses > 0

    def test_binary_learned_clauses_kept(self):
        f = TestPigeonhole.pigeonhole(5)
        s = CdclSolver(f, max_learned=1, restart_base=5)
        assert not s.solve()  # still correct with a 1-clause budget


class TestLuby:
    def test_prefix(self):
        """Regression: an earlier formulation infinite-looped at i=2."""
        from repro.sat.solver import _luby

        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_restarts_fire_and_terminate(self):
        f = TestPigeonhole.pigeonhole(5)
        s = CdclSolver(f, use_restarts=True, restart_base=10)
        assert not s.solve()
        assert s.stats.restarts > 0


class TestStats:
    def test_conflicts_counted(self):
        f = formula_from([[1], [-1]], 1)
        s = CdclSolver(f)
        s.solve()
        # Unsat found at preprocessing: no conflicts counted mid-search,
        # but the solver must report unsat either way.
        assert not s.solve()

    def test_learned_clauses_on_hard_instance(self):
        f = TestPigeonhole.pigeonhole(4)
        s = CdclSolver(f)
        s.solve()
        assert s.stats.conflicts > 0
        assert s.stats.learned_clauses > 0


class TestSolveFormula:
    def test_decodes_names(self):
        f = CnfFormula()
        a, b = f.var("a"), f.var("b")
        f.add_fact(a)
        f.add_implies(a, b)
        model = solve_formula(f)
        assert model == {"a": True, "b": True}

    def test_returns_none_on_unsat(self):
        f = CnfFormula()
        a = f.var("a")
        f.add_fact(a)
        f.add_fact(-a)
        assert solve_formula(f) is None

    def test_dpll_backend(self):
        f = CnfFormula()
        a = f.var("a")
        f.add_fact(a)
        assert solve_formula(f, solver="dpll") == {"a": True}

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            solve_formula(CnfFormula(), solver="quantum")


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(
            st.integers(min_value=1, max_value=8).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=30,
    )
)
def test_cdcl_matches_dpll_property(clauses):
    f = formula_from(clauses, 8)
    cdcl = CdclSolver(f.copy())
    dpll = DpllSolver(f.copy())
    assert cdcl.solve() == dpll.solve()
