"""Driver state machines: guards, transitions, Figure 3."""

import pytest

from repro.core.errors import DriverError
from repro.drivers import (
    ACTIVE,
    INACTIVE,
    UNINSTALLED,
    StateMachineSpec,
    Transition,
    down,
    machine_state_machine,
    package_state_machine,
    service_state_machine,
    up,
)


class TestGuardAtoms:
    def test_up_requires_all(self):
        atom = up(ACTIVE)
        assert atom.holds([ACTIVE, ACTIVE])
        assert not atom.holds([ACTIVE, INACTIVE])
        assert atom.holds([])  # vacuously true

    def test_down(self):
        atom = down(INACTIVE)
        assert atom.holds([INACTIVE])
        assert not atom.holds([ACTIVE])

    def test_invalid_state_rejected(self):
        with pytest.raises(DriverError):
            up("warming_up")


class TestTransition:
    def test_guard_holds_checks_direction(self):
        t = Transition("start", INACTIVE, ACTIVE, (up(ACTIVE),))
        assert t.guard_holds([ACTIVE], [UNINSTALLED])
        assert not t.guard_holds([INACTIVE], [ACTIVE])

    def test_conjunction(self):
        t = Transition(
            "x", ACTIVE, ACTIVE, (up(ACTIVE), down(INACTIVE))
        )
        assert t.guard_holds([ACTIVE], [INACTIVE])
        assert not t.guard_holds([ACTIVE], [ACTIVE])

    def test_unguarded_always_fires(self):
        t = Transition("install", UNINSTALLED, INACTIVE)
        assert t.guard_holds([UNINSTALLED], [UNINSTALLED])


class TestStateMachineSpec:
    def test_figure3_shape(self):
        spec = service_state_machine()
        assert spec.initial == UNINSTALLED
        start = spec.find(INACTIVE, "start")
        assert start.target == ACTIVE
        assert start.guard == (up(ACTIVE),)
        stop = spec.find(ACTIVE, "stop")
        assert stop.target == INACTIVE
        assert stop.guard == (down(INACTIVE),)
        restart = spec.find(ACTIVE, "restart")
        assert restart.target == ACTIVE

    def test_find_missing(self):
        spec = service_state_machine()
        with pytest.raises(DriverError):
            spec.find(UNINSTALLED, "start")

    def test_has(self):
        spec = service_state_machine()
        assert spec.has(UNINSTALLED, "install")
        assert not spec.has(UNINSTALLED, "stop")

    def test_duplicate_transition_rejected(self):
        with pytest.raises(DriverError):
            StateMachineSpec(
                [
                    Transition("a", UNINSTALLED, INACTIVE),
                    Transition("a", UNINSTALLED, ACTIVE),
                ]
            )

    def test_initial_must_exist(self):
        with pytest.raises(DriverError):
            StateMachineSpec(
                [Transition("a", INACTIVE, ACTIVE)], initial="nowhere"
            )


class TestPathTo:
    def test_identity(self):
        spec = service_state_machine()
        assert spec.path_to(ACTIVE, ACTIVE) == []

    def test_install_then_start(self):
        spec = service_state_machine()
        actions = [t.action for t in spec.path_to(UNINSTALLED, ACTIVE)]
        assert actions == ["install", "start"]

    def test_stop_then_uninstall(self):
        spec = service_state_machine()
        actions = [t.action for t in spec.path_to(ACTIVE, UNINSTALLED)]
        assert actions == ["stop", "uninstall"]

    def test_unreachable(self):
        spec = StateMachineSpec([Transition("a", UNINSTALLED, INACTIVE)])
        with pytest.raises(DriverError):
            spec.path_to(INACTIVE, UNINSTALLED)

    def test_custom_intermediate_states(self):
        spec = StateMachineSpec(
            [
                Transition("unpack", UNINSTALLED, "staged"),
                Transition("configure", "staged", INACTIVE),
                Transition("start", INACTIVE, ACTIVE, (up(ACTIVE),)),
            ]
        )
        actions = [t.action for t in spec.path_to(UNINSTALLED, ACTIVE)]
        assert actions == ["unpack", "configure", "start"]


class TestFactories:
    def test_package_machine_is_guarded_on_start(self):
        spec = package_state_machine()
        assert spec.find(INACTIVE, "start").guard == (up(ACTIVE),)

    def test_machine_start_unguarded(self):
        spec = machine_state_machine()
        assert spec.find(INACTIVE, "start").guard == ()
