"""Port-value expressions and their evaluation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    Format,
    Lit,
    ListExpr,
    PortEnv,
    RecordExpr,
    Ref,
    Space,
    config_ref,
    input_ref,
    is_constant,
)
from repro.core.errors import PortError


def env(**kwargs):
    inputs = kwargs.get("inputs", {})
    configs = kwargs.get("configs", {})
    return PortEnv(inputs=inputs, configs=configs)


class TestLit:
    def test_evaluate(self):
        assert Lit(42).evaluate(env()) == 42
        assert Lit("x").evaluate(env()) == "x"

    def test_no_references(self):
        assert Lit(1).references() == set()
        assert is_constant(Lit(1))


class TestRef:
    def test_input_lookup(self):
        e = env(inputs={"host": "h1"})
        assert input_ref("host").evaluate(e) == "h1"

    def test_config_lookup(self):
        e = env(configs={"port": 80})
        assert config_ref("port").evaluate(e) == 80

    def test_path_drilling(self):
        e = env(inputs={"db": {"conn": {"host": "h"}}})
        assert input_ref("db", "conn", "host").evaluate(e) == "h"

    def test_unbound_port(self):
        with pytest.raises(PortError):
            input_ref("missing").evaluate(env())

    def test_bad_path_step(self):
        e = env(inputs={"db": {"host": "h"}})
        with pytest.raises(PortError):
            input_ref("db", "port").evaluate(e)

    def test_path_into_scalar(self):
        e = env(inputs={"x": 5})
        with pytest.raises(PortError):
            input_ref("x", "field").evaluate(e)

    def test_references(self):
        assert input_ref("a", "b").references() == {(Space.INPUT, "a")}
        assert config_ref("c").references() == {(Space.CONFIG, "c")}

    def test_str(self):
        assert str(input_ref("db", "host")) == "input.db.host"


class TestRecordExpr:
    def test_evaluate(self):
        expr = RecordExpr.of(a=Lit(1), b=config_ref("x"))
        assert expr.evaluate(env(configs={"x": 2})) == {"a": 1, "b": 2}

    def test_references_union(self):
        expr = RecordExpr.of(a=input_ref("i"), b=config_ref("c"))
        assert expr.references() == {(Space.INPUT, "i"), (Space.CONFIG, "c")}

    def test_of_sorts_fields(self):
        expr = RecordExpr.of(b=Lit(2), a=Lit(1))
        assert [name for name, _ in expr.fields] == ["a", "b"]


class TestListExpr:
    def test_evaluate(self):
        expr = ListExpr((Lit(1), config_ref("x")))
        assert expr.evaluate(env(configs={"x": 2})) == [1, 2]

    def test_empty(self):
        assert ListExpr(()).evaluate(env()) == []
        assert is_constant(ListExpr(()))


class TestFormat:
    def test_evaluate(self):
        expr = Format.of(
            "http://{h}:{p}/", h=input_ref("host"), p=config_ref("port")
        )
        e = env(inputs={"host": "web"}, configs={"port": 80})
        assert expr.evaluate(e) == "http://web:80/"

    def test_missing_placeholder_argument(self):
        expr = Format.of("{a}{b}", a=Lit(1))
        with pytest.raises(PortError):
            expr.evaluate(env())

    def test_extra_arguments_allowed(self):
        expr = Format.of("{a}", a=Lit(1), b=Lit(2))
        assert expr.evaluate(env()) == "1"

    def test_references(self):
        expr = Format.of("{x}", x=input_ref("i"))
        assert expr.references() == {(Space.INPUT, "i")}


class TestPortEnv:
    def test_bind_then_lookup(self):
        e = PortEnv()
        e.bind(Space.INPUT, "a", 1)
        assert e.lookup(Space.INPUT, "a") == 1

    def test_spaces_are_disjoint(self):
        e = PortEnv(inputs={"x": 1}, configs={"x": 2})
        assert e.lookup(Space.INPUT, "x") == 1
        assert e.lookup(Space.CONFIG, "x") == 2


@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.integers(),
        min_size=1,
        max_size=3,
    )
)
def test_record_of_refs_evaluates_to_env(values):
    expr = RecordExpr.of(**{k: config_ref(k) for k in values})
    assert expr.evaluate(PortEnv(configs=values)) == values


@given(st.text(alphabet="ab{}", max_size=10))
def test_format_never_crashes_unexpectedly(template):
    expr = Format.of(template.replace("{", "{{").replace("}", "}}"))
    assert isinstance(expr.evaluate(PortEnv()), str)
