"""DIMACS CNF reading and writing."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sat import (
    CdclSolver,
    CnfFormula,
    dimacs_text,
    parse_dimacs,
)


def sample_formula():
    f = CnfFormula()
    a, b, c = f.var("a"), f.var("b"), f.var("c")
    f.add_clause([a, b])
    f.add_clause([-a, c])
    f.add_fact(c)
    return f


class TestWrite:
    def test_header(self):
        text = dimacs_text(sample_formula())
        assert "p cnf 3 3" in text

    def test_clause_lines_end_with_zero(self):
        text = dimacs_text(sample_formula())
        clause_lines = [
            l for l in text.splitlines() if l and not l.startswith(("c", "p"))
        ]
        assert all(l.endswith(" 0") for l in clause_lines)
        assert len(clause_lines) == 3

    def test_names_as_comments(self):
        text = dimacs_text(sample_formula())
        assert "c var 1 = a" in text


class TestRead:
    def test_roundtrip_preserves_satisfiability(self):
        original = sample_formula()
        parsed = parse_dimacs(dimacs_text(original))
        assert parsed.num_vars == original.num_vars
        assert parsed.num_clauses == original.num_clauses
        assert CdclSolver(parsed).solve() == CdclSolver(original).solve()

    def test_parse_reference_format(self):
        text = "c comment\np cnf 2 2\n1 2 0\n-1 0\n"
        f = parse_dimacs(text)
        assert f.num_vars == 2
        assert list(f.clauses()) == [(1, 2), (-1,)]

    def test_clause_split_across_lines(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        f = parse_dimacs(text)
        assert list(f.clauses()) == [(1, 2, 3)]

    def test_trailing_clause_without_zero(self):
        text = "p cnf 2 1\n1 2\n"
        f = parse_dimacs(text)
        assert list(f.clauses()) == [(1, 2)]

    def test_missing_header_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_dimacs("1 2 0\n")

    def test_duplicate_header_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_dimacs("p cnf 1 1\np cnf 1 1\n1 0\n")

    def test_malformed_header_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_dimacs("p dnf 1 1\n1 0\n")

    def test_literal_beyond_declared_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_dimacs("p cnf 1 1\n2 0\n")

    def test_clause_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_dimacs("p cnf 1 5\n1 0\n")
