"""Recursive-descent parser for the resource definition language.

Grammar (EBNF, ``[]`` optional, ``*`` repetition)::

    module    := resource*
    resource  := ["abstract"] "resource" STRING [NUMBER]
                 ["extends" target] ["driver" STRING] "{" item* "}"
    item      := port | dependency
    port      := ["static"] ("input"|"config"|"output") IDENT ":" type
                 ["=" expr]
    dependency:= ("inside"|"env"|"peer") target ("|" target)*
                 [mapping] ["reverse" mapping]
    target    := STRING [NUMBER | range]
    range     := ("["|"(") (NUMBER|"*") "," (NUMBER|"*") ("]"|")")
    mapping   := "{" [IDENT "->" IDENT ("," IDENT "->" IDENT)*] "}"
    type      := IDENT | "list" "[" type "]"
               | "{" IDENT ":" type ("," IDENT ":" type)* "}"
    expr      := STRING | NUMBER | "true" | "false"
               | ("input"|"config") ("." IDENT)+
               | "{" [IDENT "=" expr ("," IDENT "=" expr)*] "}"
               | "[" [expr ("," expr)*] "]"
               | "format" "(" STRING ("," IDENT "=" expr)* ")"
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import ParseError
from repro.dsl.ast import (
    DependencyDecl,
    ExprAst,
    FormatAst,
    ListAst,
    ListTypeAst,
    LitAst,
    ModuleAst,
    PortDecl,
    RecordAst,
    RecordTypeAst,
    RefAst,
    ResourceDecl,
    ScalarTypeAst,
    TargetAst,
    TypeAst,
    VersionRangeAst,
)
from repro.dsl.lexer import Token, TokenKind, tokenize


class Parser:
    """One-token-lookahead recursive descent."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- Token helpers -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != TokenKind.EOF:
            self._position += 1
        return token

    def _check(self, kind: TokenKind, text: Optional[str] = None) -> bool:
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    def _match(self, kind: TokenKind, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            wanted = text or kind.value
            raise ParseError(
                f"expected {wanted!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _keyword(self, word: str) -> bool:
        return self._check(TokenKind.KEYWORD, word)

    # -- Entry points -----------------------------------------------------

    def parse_module(self) -> ModuleAst:
        resources: list[ResourceDecl] = []
        while not self._check(TokenKind.EOF):
            resources.append(self.parse_resource())
        return ModuleAst(tuple(resources))

    def parse_resource(self) -> ResourceDecl:
        start = self._peek()
        abstract = bool(self._match(TokenKind.KEYWORD, "abstract"))
        self._expect(TokenKind.KEYWORD, "resource")
        name = self._expect(TokenKind.STRING).text
        version: Optional[str] = None
        if self._check(TokenKind.NUMBER):
            version = self._advance().text
        extends: Optional[TargetAst] = None
        if self._match(TokenKind.KEYWORD, "extends"):
            extends = self._parse_target()
        driver: Optional[str] = None
        if self._match(TokenKind.KEYWORD, "driver"):
            driver = self._expect(TokenKind.STRING).text
        self._expect(TokenKind.LBRACE)
        ports: list[PortDecl] = []
        dependencies: list[DependencyDecl] = []
        while not self._check(TokenKind.RBRACE):
            token = self._peek()
            if token.kind != TokenKind.KEYWORD:
                raise ParseError(
                    f"expected a port or dependency, found {token.text!r}",
                    token.line,
                    token.column,
                )
            if token.text in ("static", "input", "config", "output"):
                ports.append(self._parse_port())
            elif token.text in ("inside", "env", "peer"):
                dependencies.append(self._parse_dependency())
            else:
                raise ParseError(
                    f"unexpected keyword {token.text!r} in resource body",
                    token.line,
                    token.column,
                )
        self._expect(TokenKind.RBRACE)
        return ResourceDecl(
            name=name,
            version=version,
            abstract=abstract,
            extends=extends,
            driver=driver,
            ports=tuple(ports),
            dependencies=tuple(dependencies),
            line=start.line,
        )

    # -- Ports -----------------------------------------------------------

    def _parse_port(self) -> PortDecl:
        static = bool(self._match(TokenKind.KEYWORD, "static"))
        kind_token = self._advance()
        if kind_token.text not in ("input", "config", "output"):
            raise ParseError(
                f"expected input/config/output, found {kind_token.text!r}",
                kind_token.line,
                kind_token.column,
            )
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.COLON)
        type_ast = self._parse_type()
        value: Optional[ExprAst] = None
        if self._match(TokenKind.EQUALS):
            value = self._parse_expr()
        return PortDecl(
            kind=kind_token.text,
            name=name,
            type=type_ast,
            value=value,
            static=static,
        )

    def _parse_type(self) -> TypeAst:
        if self._match(TokenKind.KEYWORD, "list"):
            self._expect(TokenKind.LBRACKET)
            element = self._parse_type()
            self._expect(TokenKind.RBRACKET)
            return ListTypeAst(element)
        if self._match(TokenKind.LBRACE):
            fields: list[tuple[str, TypeAst]] = []
            while not self._check(TokenKind.RBRACE):
                field_name = self._expect(TokenKind.IDENT).text
                self._expect(TokenKind.COLON)
                fields.append((field_name, self._parse_type()))
                if not self._match(TokenKind.COMMA):
                    break
            self._expect(TokenKind.RBRACE)
            return RecordTypeAst(tuple(fields))
        token = self._expect(TokenKind.IDENT)
        return ScalarTypeAst(token.text)

    # -- Expressions --------------------------------------------------------

    def _parse_expr(self) -> ExprAst:
        token = self._peek()
        if token.kind == TokenKind.STRING:
            return LitAst(self._advance().text)
        if token.kind == TokenKind.NUMBER:
            text = self._advance().text
            if text.count(".") > 1:
                raise ParseError(
                    f"{text!r} is not a valid number", token.line, token.column
                )
            return LitAst(float(text) if "." in text else int(text))
        if self._match(TokenKind.KEYWORD, "true"):
            return LitAst(True)
        if self._match(TokenKind.KEYWORD, "false"):
            return LitAst(False)
        if token.kind == TokenKind.KEYWORD and token.text in ("input", "config"):
            return self._parse_ref()
        if token.kind == TokenKind.LBRACE:
            return self._parse_record_expr()
        if token.kind == TokenKind.LBRACKET:
            return self._parse_list_expr()
        if self._keyword("format"):
            return self._parse_format()
        raise ParseError(
            f"expected an expression, found {token.text!r}",
            token.line,
            token.column,
        )

    def _parse_ref(self) -> RefAst:
        space = self._advance().text
        self._expect(TokenKind.DOT)
        parts = [self._expect(TokenKind.IDENT).text]
        while self._match(TokenKind.DOT):
            parts.append(self._expect(TokenKind.IDENT).text)
        return RefAst(space=space, port=parts[0], path=tuple(parts[1:]))

    def _parse_record_expr(self) -> RecordAst:
        self._expect(TokenKind.LBRACE)
        fields: list[tuple[str, ExprAst]] = []
        while not self._check(TokenKind.RBRACE):
            name = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.EQUALS)
            fields.append((name, self._parse_expr()))
            if not self._match(TokenKind.COMMA):
                break
        self._expect(TokenKind.RBRACE)
        return RecordAst(tuple(fields))

    def _parse_list_expr(self) -> ListAst:
        self._expect(TokenKind.LBRACKET)
        elements: list[ExprAst] = []
        while not self._check(TokenKind.RBRACKET):
            elements.append(self._parse_expr())
            if not self._match(TokenKind.COMMA):
                break
        self._expect(TokenKind.RBRACKET)
        return ListAst(tuple(elements))

    def _parse_format(self) -> FormatAst:
        self._expect(TokenKind.KEYWORD, "format")
        self._expect(TokenKind.LPAREN)
        template = self._expect(TokenKind.STRING).text
        args: list[tuple[str, ExprAst]] = []
        while self._match(TokenKind.COMMA):
            name = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.EQUALS)
            args.append((name, self._parse_expr()))
        self._expect(TokenKind.RPAREN)
        return FormatAst(template, tuple(args))

    # -- Dependencies ----------------------------------------------------------

    def _parse_dependency(self) -> DependencyDecl:
        kind = self._advance().text  # inside | env | peer
        targets = [self._parse_target()]
        while self._match(TokenKind.PIPE):
            targets.append(self._parse_target())
        mapping: tuple[tuple[str, str], ...] = ()
        reverse: tuple[tuple[str, str], ...] = ()
        if self._check(TokenKind.LBRACE):
            mapping = self._parse_mapping()
        if self._match(TokenKind.KEYWORD, "reverse"):
            reverse = self._parse_mapping()
        return DependencyDecl(
            kind=kind,
            targets=tuple(targets),
            mapping=mapping,
            reverse=reverse,
        )

    def _parse_target(self) -> TargetAst:
        name = self._expect(TokenKind.STRING).text
        if self._check(TokenKind.NUMBER):
            return TargetAst(name=name, version=self._advance().text)
        if self._check(TokenKind.LBRACKET) or self._check(TokenKind.LPAREN):
            return TargetAst(name=name, version_range=self._parse_range())
        return TargetAst(name=name)

    def _parse_range(self) -> VersionRangeAst:
        open_token = self._advance()
        lo_inclusive = open_token.kind == TokenKind.LBRACKET
        lo = self._parse_bound()
        self._expect(TokenKind.COMMA)
        hi = self._parse_bound()
        close = self._advance()
        if close.kind == TokenKind.RBRACKET:
            hi_inclusive = True
        elif close.kind == TokenKind.RPAREN:
            hi_inclusive = False
        else:
            raise ParseError(
                f"expected ']' or ')', found {close.text!r}",
                close.line,
                close.column,
            )
        return VersionRangeAst(
            lo=lo, hi=hi, lo_inclusive=lo_inclusive, hi_inclusive=hi_inclusive
        )

    def _parse_bound(self) -> Optional[str]:
        if self._match(TokenKind.STAR):
            return None
        return self._expect(TokenKind.NUMBER).text

    def _parse_mapping(self) -> tuple[tuple[str, str], ...]:
        self._expect(TokenKind.LBRACE)
        entries: list[tuple[str, str]] = []
        while not self._check(TokenKind.RBRACE):
            source = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.ARROW)
            target = self._expect(TokenKind.IDENT).text
            entries.append((source, target))
            if not self._match(TokenKind.COMMA):
                break
        self._expect(TokenKind.RBRACE)
        return tuple(entries)


def parse_module(source: str) -> ModuleAst:
    """Parse a source file into a module AST."""
    return Parser(tokenize(source)).parse_module()
