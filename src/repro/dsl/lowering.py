"""Lowering: DSL syntax -> the core resource-type model.

Two pieces of S3.4 sugar are eliminated here:

* *version ranges* expand to disjunctions over every declared version of
  the package that satisfies the range (the universe of versions is the
  module being lowered plus an optional pre-existing registry);
* *disjunction targets* become multi-alternative dependencies directly.

Abstract-supertype lowering is deliberately NOT done here: the paper's
GraphGen performs the frontier expansion at configuration time, so the
core model keeps abstract targets.
"""

from __future__ import annotations

from typing import Optional

from repro.core.builder import define
from repro.core.errors import ParseError, ResourceModelError
from repro.core.keys import ResourceKey, UNVERSIONED, Version, VersionRange
from repro.core.ports import (
    ListType,
    PortType,
    RecordType,
    scalar_by_name,
)
from repro.core.registry import ResourceTypeRegistry
from repro.core.resource_type import (
    Dependency,
    DependencyAlternative,
    DependencyKind,
    PortMapping,
    ResourceType,
)
from repro.core.values import (
    Expr,
    Format,
    Lit,
    ListExpr,
    RecordExpr,
    Ref,
    Space,
)
from repro.dsl.ast import (
    DependencyDecl,
    ExprAst,
    FormatAst,
    ListAst,
    ListTypeAst,
    LitAst,
    ModuleAst,
    PortDecl,
    RecordAst,
    RecordTypeAst,
    RefAst,
    ResourceDecl,
    ScalarTypeAst,
    TargetAst,
    TypeAst,
)

_DEP_KINDS = {
    "inside": DependencyKind.INSIDE,
    "env": DependencyKind.ENVIRONMENT,
    "peer": DependencyKind.PEER,
}


def lower_type(ast: TypeAst) -> PortType:
    if isinstance(ast, ScalarTypeAst):
        return scalar_by_name(ast.name)
    if isinstance(ast, RecordTypeAst):
        return RecordType(
            tuple(sorted((name, lower_type(t)) for name, t in ast.fields))
        )
    if isinstance(ast, ListTypeAst):
        return ListType(lower_type(ast.element))
    raise ResourceModelError(f"unknown type AST node: {ast!r}")


def lower_expr(ast: ExprAst) -> Expr:
    if isinstance(ast, LitAst):
        return Lit(ast.value)
    if isinstance(ast, RefAst):
        space = Space.INPUT if ast.space == "input" else Space.CONFIG
        return Ref(space, ast.port, ast.path)
    if isinstance(ast, RecordAst):
        return RecordExpr(
            tuple(sorted((name, lower_expr(e)) for name, e in ast.fields))
        )
    if isinstance(ast, ListAst):
        return ListExpr(tuple(lower_expr(e) for e in ast.elements))
    if isinstance(ast, FormatAst):
        return Format(
            ast.template,
            tuple(sorted((name, lower_expr(e)) for name, e in ast.args)),
        )
    raise ResourceModelError(f"unknown expression AST node: {ast!r}")


class VersionUniverse:
    """Every version declared for each package name: the module being
    lowered plus (optionally) an existing registry."""

    def __init__(
        self,
        module: ModuleAst,
        registry: Optional[ResourceTypeRegistry] = None,
    ) -> None:
        self._versions: dict[str, set[Version]] = {}
        for resource in module.resources:
            if resource.version is not None:
                self._versions.setdefault(resource.name, set()).add(
                    Version.parse(resource.version)
                )
        if registry is not None:
            for key in registry.keys():
                if not key.version.is_unversioned():
                    self._versions.setdefault(key.name, set()).add(key.version)

    def in_range(self, name: str, version_range: VersionRange) -> list[Version]:
        return sorted(
            v
            for v in self._versions.get(name, ())
            if version_range.contains(v)
        )


def lower_target(
    target: TargetAst, universe: VersionUniverse
) -> list[ResourceKey]:
    """A target to one or more concrete keys (ranges expand here)."""
    if target.version is not None:
        return [ResourceKey(target.name, Version.parse(target.version))]
    if target.version_range is not None:
        range_ = VersionRange(
            lo=Version.parse(target.version_range.lo)
            if target.version_range.lo
            else None,
            hi=Version.parse(target.version_range.hi)
            if target.version_range.hi
            else None,
            lo_inclusive=target.version_range.lo_inclusive,
            hi_inclusive=target.version_range.hi_inclusive,
        )
        versions = universe.in_range(target.name, range_)
        if not versions:
            raise ResourceModelError(
                f"no declared version of {target.name!r} satisfies the "
                f"range {range_}"
            )
        return [ResourceKey(target.name, v) for v in versions]
    return [ResourceKey(target.name, UNVERSIONED)]


def lower_dependency(
    decl: DependencyDecl, universe: VersionUniverse
) -> Dependency:
    mapping = PortMapping(tuple(sorted(decl.mapping)))
    reverse = PortMapping(tuple(sorted(decl.reverse)))
    alternatives: list[DependencyAlternative] = []
    seen: set[ResourceKey] = set()
    for target in decl.targets:
        for key in lower_target(target, universe):
            if key not in seen:
                seen.add(key)
                alternatives.append(
                    DependencyAlternative(key, mapping, reverse)
                )
    return Dependency(_DEP_KINDS[decl.kind], tuple(alternatives))


def lower_resource(
    decl: ResourceDecl, universe: VersionUniverse
) -> ResourceType:
    extends: Optional[ResourceKey] = None
    if decl.extends is not None:
        keys = lower_target(decl.extends, universe)
        if len(keys) != 1:
            raise ResourceModelError(
                f"{decl.name}: 'extends' must name exactly one type"
            )
        extends = keys[0]

    builder = define(
        decl.name,
        decl.version or "",
        abstract=decl.abstract,
        extends=extends,
        driver=decl.driver or "null",
    )

    for port in decl.ports:
        port_type = lower_type(port.type)
        if port.kind == "input":
            if port.value is not None:
                raise ResourceModelError(
                    f"{decl.name}: input port {port.name!r} cannot have a "
                    "value (inputs are filled by port mappings)"
                )
            if port.static:
                raise ResourceModelError(
                    f"{decl.name}: input port {port.name!r} cannot be static"
                )
            builder.input(port.name, port_type)
        elif port.kind == "config":
            default = lower_expr(port.value) if port.value is not None else Lit(None)
            builder.config(
                port.name, port_type, default=default, static=port.static
            )
        else:
            value = lower_expr(port.value) if port.value is not None else Lit(None)
            builder.output(
                port.name, port_type, value=value, static=port.static
            )

    for dep_decl in decl.dependencies:
        dependency = lower_dependency(dep_decl, universe)
        if dependency.kind == DependencyKind.INSIDE:
            builder.inside_dep(dependency)
        elif dependency.kind == DependencyKind.ENVIRONMENT:
            builder.env_dep(dependency)
        else:
            builder.peer_dep(dependency)

    return builder.build()


def lower_module(
    module: ModuleAst,
    registry: Optional[ResourceTypeRegistry] = None,
) -> list[ResourceType]:
    """Lower every resource declaration of a module, in order."""
    universe = VersionUniverse(module, registry)
    return [lower_resource(decl, universe) for decl in module.resources]


def load_resources(
    source: str,
    registry: Optional[ResourceTypeRegistry] = None,
) -> list[ResourceType]:
    """Parse and lower DSL source text in one step.

    When ``registry`` is given, version ranges may also refer to versions
    it already knows, and the lowered types are registered into it.
    """
    from repro.dsl.parser import parse_module

    types = lower_module(parse_module(source), registry)
    if registry is not None:
        registry.register_all(types)
    return types
