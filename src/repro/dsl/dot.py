"""Graphviz DOT rendering of hypergraphs and installation specs.

Figure 5 of the paper is a drawing of the resource-instance hypergraph;
:func:`graph_to_dot` regenerates it for any partial specification, and
:func:`spec_to_dot` renders the resolved dependency DAG of a full
installation specification.  The output is plain DOT text -- pipe it to
``dot -Tpng`` outside this environment.
"""

from __future__ import annotations

from repro.core.instances import InstallSpec
from repro.core.resource_type import DependencyKind
from repro.config.hypergraph import ResourceGraph

_EDGE_STYLE = {
    DependencyKind.INSIDE: 'style=solid label="inside"',
    DependencyKind.ENVIRONMENT: 'style=dashed label="env"',
    DependencyKind.PEER: 'style=dotted label="peer"',
}

_LINK_STYLE = {
    "inside": "style=solid",
    "environment": "style=dashed",
    "peer": "style=dotted",
}


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def graph_to_dot(graph: ResourceGraph, title: str = "engage") -> str:
    """The Figure 5 hypergraph as DOT.

    Partial-spec nodes are drawn with a doubled border (the paper marks
    them with a check).  Multi-target hyperedges get a small junction
    point node so the exactly-one choice is visible.
    """
    lines = [f"digraph {_quote(title)} {{", "  rankdir=BT;",
             "  node [shape=box fontname=Helvetica];"]
    newline = "\\n"
    for node in graph.nodes():
        label = f"{node.instance_id}{newline}{node.key}"
        attrs = [f"label={_quote(label)}"]
        if node.from_partial:
            attrs.append("peripheries=2")
        lines.append(f"  {_quote(node.instance_id)} [{' '.join(attrs)}];")
    junctions = 0
    for edge in graph.edges():
        style = _EDGE_STYLE[edge.kind]
        if len(edge.targets) == 1:
            lines.append(
                f"  {_quote(edge.source_id)} -> "
                f"{_quote(edge.targets[0])} [{style}];"
            )
        else:
            junctions += 1
            junction = f"xor_{junctions}"
            lines.append(
                f"  {_quote(junction)} [shape=point width=0.08 "
                f'xlabel="⊕"];'
            )
            lines.append(
                f"  {_quote(edge.source_id)} -> {_quote(junction)} "
                f"[{style} arrowhead=none];"
            )
            for target in edge.targets:
                lines.append(
                    f"  {_quote(junction)} -> {_quote(target)} "
                    f"[style=dashed];"
                )
    lines.append("}")
    return "\n".join(lines) + "\n"


def spec_to_dot(spec: InstallSpec, title: str = "deployment") -> str:
    """A full installation specification's dependency DAG as DOT, with
    machines as clusters."""
    lines = [f"digraph {_quote(title)} {{", "  rankdir=BT;",
             "  node [shape=box fontname=Helvetica];"]
    machines: dict[str, list[str]] = {}
    for instance in spec:
        machines.setdefault(instance.machine_id(spec), []).append(
            instance.id
        )
    for index, (machine_id, members) in enumerate(sorted(machines.items())):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(machine_id)};")
        newline = "\\n"
        for instance_id in members:
            instance = spec[instance_id]
            label = f"{instance_id}{newline}{instance.key}"
            lines.append(
                f"    {_quote(instance_id)} [label={_quote(label)}];"
            )
        lines.append("  }")
    for instance in spec:
        for link in instance.links():
            lines.append(
                f"  {_quote(instance.id)} -> {_quote(link.target.id)} "
                f"[{_LINK_STYLE[link.kind]}];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
