"""Abstract syntax for the resource definition language.

The paper deliberately "omit[s] describing a concrete syntax for
resources"; this module (with the lexer/parser beside it) supplies one.
A module is a sequence of resource declarations::

    abstract resource "Server" driver "machine" {
      config hostname: hostname = "localhost"
      output host: { hostname: hostname } = { hostname = config.hostname }
    }

    resource "Tomcat" 6.0.18 extends "Server" driver "tomcat" {
      inside "Server" { host -> host }
      env "Java" { java -> java }
      input host: { hostname: hostname }
      config manager_port: tcp_port = 8080
    }

Dependency targets support disjunction (``"JDK" 1.6 | "JRE" 1.6``) and
version ranges (``"Tomcat" [5.5, 6.0.29)``), both straight from S3.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


# -- Types ------------------------------------------------------------------


@dataclass(frozen=True)
class TypeAst:
    """Base of type syntax nodes."""


@dataclass(frozen=True)
class ScalarTypeAst(TypeAst):
    name: str  # "string", "tcp_port", ...


@dataclass(frozen=True)
class RecordTypeAst(TypeAst):
    fields: tuple[tuple[str, TypeAst], ...]


@dataclass(frozen=True)
class ListTypeAst(TypeAst):
    element: TypeAst


# -- Expressions --------------------------------------------------------------


@dataclass(frozen=True)
class ExprAst:
    """Base of expression syntax nodes."""


@dataclass(frozen=True)
class LitAst(ExprAst):
    value: Any


@dataclass(frozen=True)
class RefAst(ExprAst):
    space: str  # "input" | "config"
    port: str
    path: tuple[str, ...] = ()


@dataclass(frozen=True)
class RecordAst(ExprAst):
    fields: tuple[tuple[str, ExprAst], ...]


@dataclass(frozen=True)
class ListAst(ExprAst):
    elements: tuple[ExprAst, ...]


@dataclass(frozen=True)
class FormatAst(ExprAst):
    template: str
    args: tuple[tuple[str, ExprAst], ...]


# -- Ports --------------------------------------------------------------------


@dataclass(frozen=True)
class PortDecl:
    """``[static] (input|config|output) name: type [= expr]``"""

    kind: str  # "input" | "config" | "output"
    name: str
    type: TypeAst
    value: Optional[ExprAst] = None
    static: bool = False


# -- Dependencies ---------------------------------------------------------------


@dataclass(frozen=True)
class VersionRangeAst:
    """``[lo, hi)`` etc.; ``None`` bounds mean unbounded (``*``)."""

    lo: Optional[str]
    hi: Optional[str]
    lo_inclusive: bool
    hi_inclusive: bool


@dataclass(frozen=True)
class TargetAst:
    """One dependency disjunct: a name plus exact version or range."""

    name: str
    version: Optional[str] = None  # exact version text, if given
    version_range: Optional[VersionRangeAst] = None


@dataclass(frozen=True)
class DependencyDecl:
    """``(inside|env|peer) targets { out -> in, ... } [reverse {...}]``"""

    kind: str  # "inside" | "env" | "peer"
    targets: tuple[TargetAst, ...]
    mapping: tuple[tuple[str, str], ...] = ()
    reverse: tuple[tuple[str, str], ...] = ()


# -- Resources ---------------------------------------------------------------


@dataclass(frozen=True)
class ResourceDecl:
    name: str
    version: Optional[str]
    abstract: bool = False
    extends: Optional[TargetAst] = None
    driver: Optional[str] = None
    ports: tuple[PortDecl, ...] = ()
    dependencies: tuple[DependencyDecl, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class ModuleAst:
    """A parsed source file."""

    resources: tuple[ResourceDecl, ...]
