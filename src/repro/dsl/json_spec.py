"""JSON installation specifications (Figure 2).

Partial specs use exactly the shape of the paper's Figure 2::

    [
      { "id": "server", "key": "Mac-OSX 10.6",
        "config_port": { "hostname": "localhost" } },
      { "id": "tomcat", "key": "Tomcat 6.0.18",
        "inside": { "id": "server" } },
      { "id": "openmrs", "key": "OpenMRS 1.8",
        "inside": { "id": "tomcat" } }
    ]

Full specifications serialise every instance with all port values and
dependency links.  The line counts of these two documents are what the
compaction experiments (E1, E4, E8) measure, matching the paper's
"partial spec was 22 lines, full spec 204 lines" methodology.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.errors import SpecError
from repro.core.instances import (
    DependencyLink,
    InstallSpec,
    InstanceRef,
    PartialInstallSpec,
    PartialInstance,
    ResourceInstance,
)
from repro.core.keys import ResourceKey


# -- Partial specifications -----------------------------------------------------


def partial_to_json(spec: PartialInstallSpec) -> str:
    """Serialise a partial spec in the Figure 2 shape."""
    entries: list[dict[str, Any]] = []
    for instance in spec:
        entry: dict[str, Any] = {
            "id": instance.id,
            "key": instance.key.display(),
        }
        if instance.inside_id is not None:
            entry["inside"] = {"id": instance.inside_id}
        if instance.config:
            entry["config_port"] = dict(sorted(instance.config.items()))
        entries.append(entry)
    return json.dumps(entries, indent=2, sort_keys=False) + "\n"


def partial_from_json(text: str) -> PartialInstallSpec:
    """Parse a Figure 2 style document."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"malformed JSON: {exc}") from exc
    if not isinstance(data, list):
        raise SpecError("partial spec must be a JSON array")
    spec = PartialInstallSpec()
    for entry in data:
        if not isinstance(entry, dict) or "id" not in entry or "key" not in entry:
            raise SpecError(f"malformed partial instance: {entry!r}")
        inside = entry.get("inside")
        inside_id = None
        if inside is not None:
            if not isinstance(inside, dict) or "id" not in inside:
                raise SpecError(f"malformed inside reference: {inside!r}")
            inside_id = inside["id"]
        spec.add(
            PartialInstance(
                id=entry["id"],
                key=ResourceKey.parse(entry["key"]),
                inside_id=inside_id,
                config=dict(entry.get("config_port", {})),
            )
        )
    return spec


# -- Full specifications -----------------------------------------------------


def _link_to_json(link: DependencyLink) -> dict[str, Any]:
    entry: dict[str, Any] = {
        "id": link.target.id,
        "key": link.target.key.display(),
    }
    if link.port_mapping:
        entry["port_mapping"] = {src: dst for src, dst in link.port_mapping}
    if link.reverse_mapping:
        entry["reverse_mapping"] = {
            src: dst for src, dst in link.reverse_mapping
        }
    return entry


def _link_from_json(kind: str, entry: dict[str, Any]) -> DependencyLink:
    return DependencyLink(
        kind=kind,
        target=InstanceRef(entry["id"], ResourceKey.parse(entry["key"])),
        port_mapping=tuple(
            sorted((k, v) for k, v in entry.get("port_mapping", {}).items())
        ),
        reverse_mapping=tuple(
            sorted((k, v) for k, v in entry.get("reverse_mapping", {}).items())
        ),
    )


def full_to_json(spec: InstallSpec) -> str:
    """Serialise a full installation specification."""
    entries: list[dict[str, Any]] = []
    for instance in spec:
        entry: dict[str, Any] = {
            "id": instance.id,
            "key": instance.key.display(),
            "config_port": dict(sorted(instance.config.items())),
            "input_ports": dict(sorted(instance.inputs.items())),
            "output_ports": dict(sorted(instance.outputs.items())),
        }
        if instance.inside is not None:
            entry["inside"] = _link_to_json(instance.inside)
        if instance.environment:
            entry["environment"] = [
                _link_to_json(l) for l in instance.environment
            ]
        if instance.peers:
            entry["peers"] = [_link_to_json(l) for l in instance.peers]
        entries.append(entry)
    return json.dumps(entries, indent=2, sort_keys=False) + "\n"


def full_from_json(text: str) -> InstallSpec:
    """Parse a serialised full installation specification."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"malformed JSON: {exc}") from exc
    if not isinstance(data, list):
        raise SpecError("full spec must be a JSON array")
    spec = InstallSpec()
    for entry in data:
        inside = entry.get("inside")
        spec.add(
            ResourceInstance(
                id=entry["id"],
                key=ResourceKey.parse(entry["key"]),
                config=dict(entry.get("config_port", {})),
                inputs=dict(entry.get("input_ports", {})),
                outputs=dict(entry.get("output_ports", {})),
                inside=_link_from_json("inside", inside) if inside else None,
                environment=tuple(
                    _link_from_json("environment", e)
                    for e in entry.get("environment", [])
                ),
                peers=tuple(
                    _link_from_json("peer", e) for e in entry.get("peers", [])
                ),
            )
        )
    return spec


def line_count(text: str) -> int:
    """Non-empty line count of a serialised document (the paper's
    compaction metric)."""
    return sum(1 for line in text.splitlines() if line.strip())
