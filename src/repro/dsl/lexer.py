"""Lexer for the resource definition language.

Hand-rolled scanner producing a flat token stream with line/column
positions for error messages.  Number-like tokens keep their raw text:
``6.0.18`` is a version literal in dependency position and a parse error
in expression position -- the parser decides.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.errors import ParseError

KEYWORDS = {
    "abstract",
    "resource",
    "extends",
    "driver",
    "inside",
    "env",
    "peer",
    "reverse",
    "input",
    "config",
    "output",
    "static",
    "format",
    "list",
    "true",
    "false",
}


class TokenKind(Enum):
    STRING = "string"
    NUMBER = "number"  # raw text: 8080, 1.5, 6.0.18
    IDENT = "ident"
    KEYWORD = "keyword"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COLON = ":"
    EQUALS = "="
    COMMA = ","
    DOT = "."
    ARROW = "->"
    PIPE = "|"
    STAR = "*"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})@{self.line}:{self.column}"


_SINGLE_CHAR = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ":": TokenKind.COLON,
    "=": TokenKind.EQUALS,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "|": TokenKind.PIPE,
    "*": TokenKind.STAR,
}


def tokenize(source: str) -> list[Token]:
    """Scan ``source`` into tokens (always ending with EOF)."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> ParseError:
        return ParseError(message, line, column)

    while index < length:
        char = source[index]

        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#":
            while index < length and source[index] != "\n":
                index += 1
            continue

        if char == "-" and source[index : index + 2] == "->":
            tokens.append(Token(TokenKind.ARROW, "->", line, column))
            index += 2
            column += 2
            continue

        if char == '"':
            start_line, start_column = line, column
            index += 1
            column += 1
            chars: list[str] = []
            while index < length and source[index] != '"':
                if source[index] == "\n":
                    raise error("unterminated string literal")
                if source[index] == "\\" and index + 1 < length:
                    escape = source[index + 1]
                    chars.append({"n": "\n", "t": "\t"}.get(escape, escape))
                    index += 2
                    column += 2
                    continue
                chars.append(source[index])
                index += 1
                column += 1
            if index >= length:
                raise error("unterminated string literal")
            index += 1  # closing quote
            column += 1
            tokens.append(
                Token(TokenKind.STRING, "".join(chars), start_line, start_column)
            )
            continue

        if char.isdigit() or (
            char == "-" and index + 1 < length and source[index + 1].isdigit()
        ):
            start_line, start_column = line, column
            start = index
            index += 1
            column += 1
            while index < length and (
                source[index].isdigit() or source[index] == "."
            ):
                index += 1
                column += 1
            text = source[start:index]
            if text.endswith("."):
                raise error(f"malformed number: {text!r}")
            tokens.append(Token(TokenKind.NUMBER, text, start_line, start_column))
            continue

        if char.isalpha() or char == "_":
            start_line, start_column = line, column
            start = index
            while index < length and (
                source[index].isalnum() or source[index] == "_"
            ):
                index += 1
                column += 1
            text = source[start:index]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_column))
            continue

        if char in _SINGLE_CHAR:
            tokens.append(Token(_SINGLE_CHAR[char], char, line, column))
            index += 1
            column += 1
            continue

        raise error(f"unexpected character {char!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
