"""Pretty-printer: core resource types back to DSL source.

``parse -> lower -> pretty -> parse -> lower`` is the round-trip property
the test suite checks.  Also used to render the library as DSL text for
documentation and for the metadata line counts reported in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.errors import ResourceModelError
from repro.core.keys import ResourceKey
from repro.core.ports import (
    Binding,
    ListType,
    PortType,
    RecordType,
    ScalarType,
)
from repro.core.resource_type import Dependency, ResourceType
from repro.core.values import (
    Expr,
    Format,
    Lit,
    ListExpr,
    RecordExpr,
    Ref,
)


def format_type(port_type: PortType) -> str:
    if isinstance(port_type, ScalarType):
        return port_type.kind.value
    if isinstance(port_type, RecordType):
        inner = ", ".join(
            f"{name}: {format_type(t)}" for name, t in port_type.fields
        )
        return "{ " + inner + " }"
    if isinstance(port_type, ListType):
        return f"list[{format_type(port_type.element)}]"
    raise ResourceModelError(f"cannot format type {port_type!r}")


def format_expr(expr: Expr) -> str:
    if isinstance(expr, Lit):
        value = expr.value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            escaped = value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        if isinstance(value, (int, float)):
            return str(value)
        if isinstance(value, dict):
            inner = ", ".join(
                f"{k} = {format_expr(Lit(v))}" for k, v in sorted(value.items())
            )
            return "{ " + inner + " }"
        if isinstance(value, (list, tuple)):
            return "[" + ", ".join(format_expr(Lit(v)) for v in value) + "]"
        raise ResourceModelError(f"cannot format literal {value!r}")
    if isinstance(expr, Ref):
        path = "".join(f".{step}" for step in expr.path)
        return f"{expr.space.value}.{expr.port}{path}"
    if isinstance(expr, RecordExpr):
        inner = ", ".join(
            f"{name} = {format_expr(e)}" for name, e in expr.fields
        )
        return "{ " + inner + " }"
    if isinstance(expr, ListExpr):
        return "[" + ", ".join(format_expr(e) for e in expr.elements) + "]"
    if isinstance(expr, Format):
        args = "".join(
            f", {name} = {format_expr(e)}" for name, e in expr.args
        )
        escaped = expr.template.replace("\\", "\\\\").replace('"', '\\"')
        return f'format("{escaped}"{args})'
    raise ResourceModelError(f"cannot format expression {expr!r}")


def _format_key(key: ResourceKey) -> str:
    if key.version.is_unversioned():
        return f'"{key.name}"'
    return f'"{key.name}" {key.version}'


def _format_mapping(entries: tuple[tuple[str, str], ...]) -> str:
    inner = ", ".join(f"{src} -> {dst}" for src, dst in entries)
    return "{ " + inner + " }"


def _format_dependency(dep: Dependency) -> str:
    kind = {"inside": "inside", "environment": "env", "peer": "peer"}[
        dep.kind.value
    ]
    targets = " | ".join(_format_key(alt.key) for alt in dep.alternatives)
    text = f"{kind} {targets}"
    first = dep.alternatives[0]
    if first.port_mapping.entries:
        text += " " + _format_mapping(first.port_mapping.entries)
    if first.reverse_mapping.entries:
        text += " reverse " + _format_mapping(first.reverse_mapping.entries)
    return text


def format_resource_type(resource_type: ResourceType) -> str:
    """One resource type as DSL source text."""
    header = ""
    if resource_type.abstract:
        header += "abstract "
    header += f"resource {_format_key(resource_type.key)}"
    if resource_type.extends is not None:
        header += f" extends {_format_key(resource_type.extends)}"
    if resource_type.driver_name and resource_type.driver_name != "null":
        header += f' driver "{resource_type.driver_name}"'

    lines = [header + " {"]
    for dep in resource_type.dependencies():
        lines.append(f"  {_format_dependency(dep)}")
    for port in resource_type.input_ports:
        lines.append(f"  input {port.name}: {format_type(port.type)}")
    for config_port in resource_type.config_ports:
        prefix = "static " if config_port.port.binding == Binding.STATIC else ""
        line = (
            f"  {prefix}config {config_port.name}: "
            f"{format_type(config_port.port.type)}"
        )
        if not (isinstance(config_port.default, Lit) and config_port.default.value is None):
            line += f" = {format_expr(config_port.default)}"
        lines.append(line)
    for output_port in resource_type.output_ports:
        prefix = "static " if output_port.port.binding == Binding.STATIC else ""
        line = (
            f"  {prefix}output {output_port.name}: "
            f"{format_type(output_port.port.type)}"
        )
        if not (isinstance(output_port.value, Lit) and output_port.value.value is None):
            line += f" = {format_expr(output_port.value)}"
        lines.append(line)
    lines.append("}")
    return "\n".join(lines)


def format_module(types: Iterable[ResourceType]) -> str:
    """A whole module of resource types as DSL source."""
    return "\n\n".join(format_resource_type(t) for t in types) + "\n"
