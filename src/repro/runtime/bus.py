"""A simulated message bus for the distributed control plane.

The bus carries every message between the deployment master and its
slave agents (:mod:`repro.runtime.coordinator`): work items, acks,
heartbeats, rejoin hellos, and failover adoption broadcasts.  It is
built directly on the :class:`~repro.sim.clock.SimClock` and makes the
weakest guarantees a real transport would: **at-least-once** delivery
with per-link latency, where a seeded :class:`~repro.sim.faults.
LinkFaultPlan` may drop, duplicate, or reorder (jitter) any copy.
Everything above the bus therefore has to be idempotent -- work items
carry dedup keys, acks are cached and replayed, and retransmission is
the master's job, not the bus's.

Determinism is the point.  Latency is a pure function of the link,
chaos decisions are a pure function of ``(seed, site, attempt)``, and
ties in delivery time break on a global send sequence number -- so the
same seed yields a byte-identical :meth:`delivery_log`, which the chaos
tests diff across runs.

Partitions are modelled as reachability groups: :meth:`partition`
splits the node set, :meth:`heal` restores it.  Reachability is checked
both at send time and again at delivery time, so a message in flight
when the partition lands is lost (as it would be on a real wire) and
must be retransmitted after heal.  A :meth:`close`\\ d endpoint (crashed
process) similarly discards everything addressed to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

import heapq

from repro.core.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.faults import LinkFaultPlan

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer


#: Message kinds used by the control plane (the bus itself is agnostic).
WORK = "work"
ACK = "ack"
NACK = "nack"
HEARTBEAT = "heartbeat"
HELLO = "hello"
ADOPT = "adopt"

#: Delivery statuses recorded in the log.
DELIVERED = "delivered"
DROPPED = "dropped"
PARTITIONED = "partitioned"
DEAD_ENDPOINT = "dead-endpoint"


@dataclass
class Envelope:
    """One copy of a message in flight (or already resolved).

    ``msg_id`` is globally unique per *send* call; duplicated copies of
    the same send share it, which is how receivers (and the delivery
    log) tell a chaos duplicate from a retransmission (``attempt``).
    ``dedup_key`` is the application-level idempotency key -- the bus
    never interprets it, consumers do.
    """

    msg_id: int
    kind: str
    sender: str
    recipient: str
    payload: dict[str, Any]
    sent_at: float
    deliver_at: float
    dedup_key: Optional[str] = None
    attempt: int = 1
    copy: int = 0


@dataclass
class DeliveryRecord:
    """One line of the delivery log: what happened to one copy."""

    at: float
    status: str
    envelope: Envelope

    def line(self) -> str:
        """Fixed-precision rendering for byte-identical replay diffs."""
        e = self.envelope
        return (
            f"{self.at:.6f} {self.status} #{e.msg_id}.{e.copy}"
            f" {e.kind} {e.sender}->{e.recipient}"
            f" key={e.dedup_key or '-'} attempt={e.attempt}"
            f" sent={e.sent_at:.6f}"
        )


class Endpoint:
    """One addressable node on the bus with an inbox of envelopes."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inbox: list[Envelope] = []
        self.closed = False

    def drain(self) -> list[Envelope]:
        """Take everything currently in the inbox (oldest first)."""
        messages, self.inbox = self.inbox, []
        return messages


class MessageBus:
    """At-least-once simulated transport between named endpoints."""

    def __init__(
        self,
        clock: SimClock,
        *,
        default_latency: float = 0.05,
        faults: Optional[LinkFaultPlan] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if default_latency < 0:
            raise SimulationError(
                f"latency must be >= 0, got {default_latency}"
            )
        self.clock = clock
        self.default_latency = default_latency
        self.faults = faults
        self.tracer = tracer
        self._endpoints: dict[str, Endpoint] = {}
        self._latency: dict[tuple[str, str], float] = {}
        self._groups: Optional[list[frozenset[str]]] = None
        self._pending: list[tuple[float, int, Envelope]] = []
        self._seq = 0
        self._next_msg_id = 1
        self.log: list[DeliveryRecord] = []
        self.sent: dict[str, int] = {}
        self.delivered: dict[str, int] = {}
        self.dropped = 0
        self.duplicated = 0
        self.partition_losses = 0

    # -- Topology --------------------------------------------------------

    def register(self, name: str) -> Endpoint:
        if name in self._endpoints:
            raise SimulationError(f"endpoint already registered: {name}")
        endpoint = Endpoint(name)
        self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise SimulationError(f"unknown endpoint: {name}") from None

    def close(self, name: str) -> None:
        """Mark an endpoint dead (crashed process): its inbox is wiped
        and anything addressed to it while closed is discarded."""
        endpoint = self.endpoint(name)
        endpoint.closed = True
        endpoint.inbox.clear()

    def open(self, name: str) -> None:
        """Re-open a previously closed endpoint (process restarted)."""
        self.endpoint(name).closed = False

    def set_latency(self, sender: str, recipient: str, latency: float) -> None:
        if latency < 0:
            raise SimulationError(f"latency must be >= 0, got {latency}")
        self._latency[(sender, recipient)] = latency

    def latency(self, sender: str, recipient: str) -> float:
        return self._latency.get((sender, recipient), self.default_latency)

    # -- Partitions ------------------------------------------------------

    def partition(self, *groups: list[str]) -> None:
        """Split the network into reachability groups.

        Nodes absent from every group become singletons (reachable by
        nobody but themselves).  Messages already in flight across a
        new partition boundary are lost at delivery time.
        """
        self._groups = [frozenset(group) for group in groups]

    def heal(self) -> None:
        self._groups = None

    def reachable(self, a: str, b: str) -> bool:
        if self._groups is None or a == b:
            return True
        for group in self._groups:
            if a in group and b in group:
                return True
        return False

    # -- Sending and delivery --------------------------------------------

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Optional[dict[str, Any]] = None,
        *,
        dedup_key: Optional[str] = None,
        attempt: int = 1,
        at: Optional[float] = None,
    ) -> Envelope:
        """Transmit one message; returns the primary envelope.

        ``at`` back- or forward-dates the send instant (used by agents
        emitting retroactive heartbeats over a long work span); delivery
        is scheduled at ``at + latency (+ chaos jitter)`` per copy.  The
        chaos site key is built from the dedup key when present --
        *order-independent*, so adding unrelated traffic does not change
        which work messages a given seed drops.
        """
        self.endpoint(sender)
        self.endpoint(recipient)
        sent_at = self.clock.now if at is None else at
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        self.sent[kind] = self.sent.get(kind, 0) + 1
        base = Envelope(
            msg_id=msg_id,
            kind=kind,
            sender=sender,
            recipient=recipient,
            payload=dict(payload or {}),
            sent_at=sent_at,
            deliver_at=sent_at,
            dedup_key=dedup_key,
            attempt=attempt,
        )
        if not self.reachable(sender, recipient):
            self.partition_losses += 1
            self._record(sent_at, PARTITIONED, base)
            return base
        offsets = [0.0]
        if self.faults is not None:
            site = (
                f"{kind}:{sender}->{recipient}:"
                f"{dedup_key if dedup_key is not None else '#' + str(msg_id)}"
            )
            offsets = self.faults.copies(site, attempt)
        if not offsets:
            self.dropped += 1
            self._record(sent_at, DROPPED, base)
            return base
        if len(offsets) > 1:
            self.duplicated += len(offsets) - 1
        latency = self.latency(sender, recipient)
        for copy, offset in enumerate(offsets):
            envelope = Envelope(
                msg_id=msg_id,
                kind=kind,
                sender=sender,
                recipient=recipient,
                payload=dict(base.payload),
                sent_at=sent_at,
                deliver_at=sent_at + latency + offset,
                dedup_key=dedup_key,
                attempt=attempt,
                copy=copy,
            )
            heapq.heappush(
                self._pending, (envelope.deliver_at, self._seq, envelope)
            )
            self._seq += 1
        return base

    def deliver_due(self, now: float) -> int:
        """Move every envelope due at or before ``now`` into its
        recipient's inbox (or the delivery log's loss column); returns
        how many were actually delivered."""
        count = 0
        while self._pending and self._pending[0][0] <= now:
            deliver_at, _, envelope = heapq.heappop(self._pending)
            if not self.reachable(envelope.sender, envelope.recipient):
                self.partition_losses += 1
                self._record(deliver_at, PARTITIONED, envelope)
                continue
            recipient = self.endpoint(envelope.recipient)
            if recipient.closed:
                self._record(deliver_at, DEAD_ENDPOINT, envelope)
                continue
            recipient.inbox.append(envelope)
            self.delivered[envelope.kind] = (
                self.delivered.get(envelope.kind, 0) + 1
            )
            self._record(deliver_at, DELIVERED, envelope)
            count += 1
        return count

    def next_time(self) -> Optional[float]:
        """Earliest pending delivery instant (``None`` if quiet)."""
        if not self._pending:
            return None
        return self._pending[0][0]

    def pending(self) -> int:
        return len(self._pending)

    # -- Introspection ---------------------------------------------------

    def _record(
        self, at: float, status: str, envelope: Envelope
    ) -> None:
        self.log.append(DeliveryRecord(at, status, envelope))
        if self.tracer is not None:
            self.tracer.span(
                f"{envelope.kind}:{envelope.sender}->{envelope.recipient}",
                category="bus",
                start=envelope.sent_at,
                duration=max(at - envelope.sent_at, 0.0),
                lane="bus",
                status=status,
                msg_id=envelope.msg_id,
                attempt=envelope.attempt,
            )
            self.tracer.metrics.counter(f"bus.{status}").inc()
            self.tracer.metrics.counter(f"bus.sent.{envelope.kind}").inc()

    def delivery_log(self) -> str:
        """The full log as text -- byte-identical for identical runs."""
        return "\n".join(record.line() for record in self.log)

    def stats(self) -> dict[str, Any]:
        return {
            "sent": dict(sorted(self.sent.items())),
            "delivered": dict(sorted(self.delivered.items())),
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "partition_losses": self.partition_losses,
            "total_sent": sum(self.sent.values()),
            "total_delivered": sum(self.delivered.values()),
        }
