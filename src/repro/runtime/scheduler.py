"""Event-driven DAG execution of deployment passes (S5.2).

"The process can be performed in parallel, as long as the dependency
ordering is met."  This module is where that sentence becomes execution
rather than a counterfactual: a deployment pass is a DAG of resource
instances, and the scheduler dispatches every instance whose dependency
guards are satisfied to a bounded pool of simulated workers.

Two execution strategies share the engine's per-instance machinery
(:meth:`DeploymentEngine._drive_instance` does the transitions, retries,
journalling):

* :func:`execute_serial` -- the historical behaviour: one instance at a
  time in topological order, fail-fast (a fatal failure skips every
  later instance), makespan reported as the *counterfactual*
  critical-path bound.

* :class:`DagScheduler` -- the event-driven scheduler.  A ready queue
  holds instances whose prerequisites have reached the target state,
  ordered by critical-path-length priority with instance-id tie-breaks
  (schedules are bit-reproducible).  Dispatch is bounded by a global
  worker count (``jobs``; ``0`` means unbounded) and an optional
  per-host limit (``jobs_per_host``).  Each dispatched instance executes
  inside a :meth:`~repro.sim.clock.SimClock.overlapping` span starting
  at the dispatch instant, so driver actions, retry backoffs, and
  HANG-fault timeout budgets genuinely overlap in simulated time; a
  completion event is scheduled at the span's end and the clock jumps
  from event to event.  ``report.makespan_seconds`` is therefore
  *measured* wall-clock, with the critical-path bound still available as
  ``report.critical_path_seconds``.

Failure semantics differ deliberately: the parallel scheduler marks a
fatally-failed instance and *skips only its transitive dependents*,
letting independent branches finish.  The resulting
completed/failed/skipped partition -- and the journal frontier -- depend
only on the (deterministic, per-site) fault decisions, never on the
worker count, so a chaos run with ``jobs=4`` partitions exactly like
``jobs=1``.  Journal entries are ordered by completion time before the
pass returns, and :meth:`DeploymentEngine.resume` re-adopts a parallel
frontier the same way it re-adopts a serial one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.errors import (
    DeploymentFailure,
    EngageError,
    GuardError,
)
from repro.runtime.journal import DeploymentJournal
from repro.runtime.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.deploy import (
        DeployedSystem,
        DeploymentEngine,
        DeploymentReport,
    )


def _new_report() -> "DeploymentReport":
    from repro.runtime.deploy import DeploymentReport

    return DeploymentReport()


def _selected_instances(system, target, *, reverse, only):
    order = system.spec.topological_order()
    if reverse:
        order = list(reversed(order))
    return [i for i in order if only is None or i.id in only]


# ---------------------------------------------------------------------------
# Serial strategy (historical fail-fast semantics)
# ---------------------------------------------------------------------------


def execute_serial(
    engine: "DeploymentEngine",
    system: "DeployedSystem",
    target: str,
    *,
    reverse: bool,
    only: Optional[set[str]] = None,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[DeploymentJournal] = None,
) -> "DeploymentReport":
    """Drive instances one at a time in (reverse) dependency order.

    On a fatal per-instance failure the pass stops at a consistent
    frontier: the failed transition did not advance its driver, and
    every instance after the failure point in the order -- which
    includes all dependents of the failed instance -- is untouched.
    """
    report = _new_report()
    selected = _selected_instances(system, target, reverse=reverse, only=only)
    finish_times: dict[str, float] = {}
    clock = engine.infrastructure.clock
    for index, instance in enumerate(selected):
        started = clock.now
        try:
            engine._drive_instance(
                system, instance.id, target, report,
                policy=policy, journal=journal,
            )
        except GuardError:
            # A guard violation is a protocol error by the caller
            # (wrong closure, wrong order), not a deployment fault:
            # propagate it unwrapped.
            raise
        except EngageError as exc:
            _finish_counterfactual(report, finish_times)
            system.report = report
            skipped = [other.id for other in selected[index + 1:]]
            completed = (
                set(journal.completed)
                if journal is not None
                else {other.id for other in selected[:index]}
            )
            if journal is not None:
                journal.mark_failed(instance.id, str(exc))
                journal.mark_skipped(skipped)
            raise DeploymentFailure(
                f"deployment stopped at {instance.id!r}: {exc}",
                journal=journal,
                completed=completed,
                failed={instance.id},
                skipped=skipped,
                report=report,
                system=system,
            ) from exc
        duration = clock.now - started
        neighbour_finishes = [
            finish_times.get(other, 0.0)
            for other in (
                system.spec.downstream_ids(instance.id)
                if reverse
                else instance.upstream_ids()
            )
        ]
        earliest = max(neighbour_finishes, default=0.0)
        finish_times[instance.id] = earliest + duration
    _finish_counterfactual(report, finish_times)
    return report


def _finish_counterfactual(
    report: "DeploymentReport", finish_times: dict[str, float]
) -> None:
    """Serial-mode report totals: the makespan is the *counterfactual*
    critical path a maximally parallel execution would have needed."""
    report.sequential_seconds = sum(a.duration for a in report.actions)
    report.makespan_seconds = max(finish_times.values(), default=0.0)
    report.critical_path_seconds = report.makespan_seconds


# ---------------------------------------------------------------------------
# Event-driven strategy
# ---------------------------------------------------------------------------


@dataclass
class _Task:
    """One dispatched instance: its timeline and outcome."""

    instance_id: str
    started_at: float
    finished_at: float
    error: Optional[EngageError] = None

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


class DagScheduler:
    """Bounded-concurrency, event-driven execution of one pass.

    ``jobs`` is the global worker bound (``0`` or ``None`` = unbounded);
    ``jobs_per_host`` additionally caps concurrent instances whose
    physical context is the same machine (modelling per-host agent
    parallelism).  Dispatch order is by descending critical-path length
    (estimated from the drivers' declared action costs), with ascending
    instance id as the deterministic tie-break.
    """

    def __init__(
        self,
        engine: "DeploymentEngine",
        system: "DeployedSystem",
        target: str,
        *,
        reverse: bool,
        only: Optional[set[str]] = None,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[DeploymentJournal] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.system = system
        self.target = target
        self.reverse = reverse
        self.policy = policy
        self.journal = journal
        self.jobs = None if not jobs or jobs <= 0 else int(jobs)
        self.jobs_per_host = (
            None if not jobs_per_host or jobs_per_host <= 0
            else int(jobs_per_host)
        )
        self.clock = engine.infrastructure.clock
        self.tracer = engine.infrastructure.tracer
        self.selected = _selected_instances(
            system, target, reverse=reverse, only=only
        )
        self.selected_ids = {i.id for i in self.selected}
        spec = system.spec
        self.host_of = {
            i.id: spec[i.id].machine_id(spec) for i in self.selected
        }
        # Prerequisites/dependents restricted to the selected set.  For a
        # forward pass an instance waits on its upstream dependencies;
        # for a reverse pass (stop/uninstall) on its downstream
        # dependents -- exactly the guard direction of Figure 3.
        self.prereqs: dict[str, list[str]] = {}
        self.dependents: dict[str, list[str]] = {
            i.id: [] for i in self.selected
        }
        for instance in self.selected:
            if reverse:
                prereqs = [
                    d for d in spec.downstream_ids(instance.id)
                    if d in self.selected_ids
                ]
            else:
                prereqs = [
                    u for u in instance.upstream_ids()
                    if u in self.selected_ids
                ]
            self.prereqs[instance.id] = prereqs
            for prereq in prereqs:
                self.dependents[prereq].append(instance.id)
        self.priority = self._critical_path_priorities()

    def _critical_path_priorities(self) -> dict[str, float]:
        """Critical-path length from each instance to the sinks, using
        the drivers' declared (fixed) action costs as the estimate."""
        cost = {
            i.id: self.system.driver(i.id).estimated_cost(self.target)
            for i in self.selected
        }
        lengths: dict[str, float] = {}
        # ``selected`` is in dependency order, so dependents come later:
        # walking it backwards sees every dependent before its prereq.
        for instance in reversed(self.selected):
            downstream = max(
                (lengths[d] for d in self.dependents[instance.id]),
                default=0.0,
            )
            lengths[instance.id] = cost[instance.id] + downstream
        return lengths

    # -- Execution -------------------------------------------------------

    def run(self) -> "DeploymentReport":
        report = _new_report()
        report.jobs = self.jobs if self.jobs is not None else 0
        pass_started = self.clock.now
        pending = {
            iid: len(prereqs) for iid, prereqs in self.prereqs.items()
        }
        ready: list[tuple[float, str]] = [
            (-self.priority[iid], iid)
            for iid, count in pending.items()
            if count == 0
        ]
        heapq.heapify(ready)
        backlog: dict[str, list[tuple[float, str]]] = {}
        per_host: dict[str, int] = {}
        running = 0
        tasks: dict[str, _Task] = {}
        completed: set[str] = set()
        failed: dict[str, str] = {}

        while True:
            if self.tracer is not None:
                self.tracer.metrics.histogram(
                    "scheduler.ready_queue_depth"
                ).observe(len(ready))
            running += self._dispatch_ready(
                ready, backlog, per_host, running, report
            )
            if running == 0:
                break
            event = self.clock.advance_to_next_event()
            assert event is not None, "running tasks but no pending events"
            task: _Task = event.payload
            running -= 1
            host = self.host_of[task.instance_id]
            per_host[host] = per_host.get(host, 1) - 1
            for item in backlog.pop(host, ()):
                heapq.heappush(ready, item)
            tasks[task.instance_id] = task
            if self.tracer is not None:
                self.tracer.instant(
                    "complete" if task.error is None else "fail",
                    category="scheduler", timestamp=self.clock.now,
                    lane=self._lane(host), instance=task.instance_id,
                    elapsed=task.elapsed,
                )
            if task.error is None:
                completed.add(task.instance_id)
                for dependent in self.dependents[task.instance_id]:
                    pending[dependent] -= 1
                    if pending[dependent] == 0:
                        heapq.heappush(
                            ready,
                            (-self.priority[dependent], dependent),
                        )
                        if self.tracer is not None:
                            self.tracer.instant(
                                "ready", category="scheduler",
                                timestamp=self.clock.now,
                                lane=self._lane(self.host_of[dependent]),
                                instance=dependent,
                            )
            else:
                failed[task.instance_id] = str(task.error)
                if self.journal is not None:
                    self.journal.mark_failed(
                        task.instance_id, str(task.error)
                    )
                    if self.tracer is not None:
                        self.tracer.instant(
                            "failed", category="journal",
                            timestamp=self.clock.now,
                            lane=self._lane(host),
                            instance=task.instance_id,
                            error=str(task.error),
                        )

        self._finish_measured(report, tasks, pass_started)
        self.system.report = report
        if self.journal is not None:
            self.journal.sort_entries_by_time()
        if failed:
            skipped = [
                i.id for i in self.selected
                if i.id not in completed and i.id not in failed
            ]
            if self.journal is not None:
                self.journal.mark_skipped(skipped)
            names = ", ".join(repr(iid) for iid in sorted(failed))
            first_error = failed[sorted(failed)[0]]
            raise DeploymentFailure(
                f"deployment stopped at {names}: {first_error}",
                journal=self.journal,
                completed=completed,
                failed=set(failed),
                skipped=skipped,
                report=report,
                system=self.system,
            )
        return report

    def _dispatch_ready(
        self,
        ready: list[tuple[float, str]],
        backlog: dict[str, list[tuple[float, str]]],
        per_host: dict[str, int],
        running: int,
        report: "DeploymentReport",
    ) -> int:
        """Dispatch queued instances while worker slots remain; returns
        how many were started."""
        started = 0
        while ready and (
            self.jobs is None or running + started < self.jobs
        ):
            item = heapq.heappop(ready)
            iid = item[1]
            host = self.host_of[iid]
            if (
                self.jobs_per_host is not None
                and per_host.get(host, 0) >= self.jobs_per_host
            ):
                backlog.setdefault(host, []).append(item)
                continue
            self._dispatch(iid, report)
            per_host[host] = per_host.get(host, 0) + 1
            if self.tracer is not None:
                self.tracer.metrics.histogram(
                    "scheduler.host_concurrency"
                ).observe(per_host[host])
            started += 1
        return started

    def _lane(self, machine_instance_id: str) -> str:
        """Trace lane of a machine instance (its hostname, so scheduler
        events line up with the engine's per-host action spans)."""
        machine = self.system.machines.get(machine_instance_id)
        return machine.hostname if machine is not None else machine_instance_id

    def _dispatch(self, iid: str, report: "DeploymentReport") -> None:
        """Execute one instance's transitions inside an overlapping span
        and schedule its completion event at the span's end."""
        start = self.clock.now
        if self.tracer is not None:
            self.tracer.instant(
                "dispatch", category="scheduler", timestamp=start,
                lane=self._lane(self.host_of[iid]), instance=iid,
                priority=self.priority[iid],
            )
            self.tracer.metrics.counter("scheduler.dispatches").inc()
        span = self.clock.overlapping(start)
        error: Optional[EngageError] = None
        with span:
            try:
                self.engine._drive_instance(
                    self.system, iid, self.target, report,
                    policy=self.policy, journal=self.journal,
                )
            except GuardError:
                raise  # protocol error by the caller: propagate unwrapped
            except EngageError as exc:
                error = exc
        task = _Task(iid, start, span.end, error)
        self.clock.schedule(span.end, label=f"finish:{iid}", payload=task)

    def _finish_measured(
        self,
        report: "DeploymentReport",
        tasks: dict[str, _Task],
        pass_started: float,
    ) -> None:
        """Parallel-mode report totals: the makespan is measured off the
        event clock; the critical-path bound is recomputed from the
        *actual* per-instance elapsed times for comparison."""
        report.actions.sort(key=lambda a: a.started_at)
        report.invalidate_caches()
        report.sequential_seconds = sum(a.duration for a in report.actions)
        report.makespan_seconds = self.clock.now - pass_started
        finish: dict[str, float] = {}
        for instance in self.selected:
            task = tasks.get(instance.id)
            if task is None:
                continue
            earliest = max(
                (finish.get(p, 0.0) for p in self.prereqs[instance.id]),
                default=0.0,
            )
            finish[instance.id] = earliest + task.elapsed
        report.critical_path_seconds = max(finish.values(), default=0.0)
