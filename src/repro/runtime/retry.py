"""Retry policies for deployment actions.

The paper's runtime assumes deployment actions either succeed or abort
the run; real-world deploys see flaky package mirrors and slow service
starts.  A :class:`RetryPolicy` tells the deployment engine how many
times to attempt each driver action, how long to back off between
attempts (exponential, with deterministic jitter so simulated runs are
reproducible), how much simulated time a single attempt may consume
before it counts as hung, and which exceptions are worth retrying at
all.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple, Type

from repro.core.errors import TransientError


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine retries a failing driver action.

    ``max_attempts`` counts the first attempt: the default of 1 means
    "no retries", matching the engine's historical behaviour.  Backoff
    for attempt *n* (1-based, waited after the *n*-th failure) is
    ``backoff_base * backoff_factor**(n-1)`` capped at ``backoff_max``,
    plus a deterministic jitter fraction in ``[0, jitter)`` derived from
    the (instance, action, attempt) triple -- no wall-clock randomness,
    so the same run replays identically.
    """

    max_attempts: int = 1
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_max: float = 120.0
    jitter: float = 0.1
    #: Simulated-seconds budget for one attempt; a hang longer than this
    #: aborts the attempt with ActionTimeout.  None = unbounded.
    action_timeout: Optional[float] = None
    #: Exception types that justify another attempt.  Everything else
    #: (guard violations, driver bugs, unsatisfiable specs) is fatal.
    retryable: Tuple[Type[BaseException], ...] = (TransientError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_factor < 0:
            # A negative factor flips the sign of every other backoff,
            # which the engine would record as negative seconds in
            # ActionRecord.backoff_seconds (the clock advance is
            # guarded, the bookkeeping is not).
            raise ValueError("backoff_factor must be non-negative")
        if not 0.0 <= self.jitter:
            raise ValueError("jitter must be non-negative")

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retryable)

    def backoff_seconds(
        self, attempt: int, instance_id: str, action: str
    ) -> float:
        """Simulated seconds to wait after failed attempt ``attempt``."""
        base = max(
            min(
                self.backoff_base * self.backoff_factor ** (attempt - 1),
                self.backoff_max,
            ),
            0.0,  # belt and braces: a wait can never be negative
        )
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        token = f"{instance_id}|{action}|{attempt}".encode()
        fraction = (zlib.crc32(token) % 10_000) / 10_000.0
        return base * (1.0 + self.jitter * fraction)


#: A sensible default for chaos scenarios: a handful of attempts with
#: sub-minute backoff and a generous per-action hang budget.
DEFAULT_CHAOS_POLICY = RetryPolicy(
    max_attempts=5,
    backoff_base=2.0,
    backoff_factor=2.0,
    backoff_max=60.0,
    action_timeout=90.0,
)
