"""Multi-host deployment coordination (S5.2).

"The implementation of a multi-host install can be simplified if one can
partially order the machines ... In this case, we can break the overall
install specification into per-node specifications and run a slave
instance of Engage on each target host.  The entire deployment is then
coordinated from a master host, with each slave running with no awareness
of the others.  Slave deployments can run in parallel when the slaves
have no inter-dependencies."

The master computes the machine partial order
(:meth:`~repro.core.instances.InstallSpec.machine_order`), splits the
full spec into per-node specs (cross-machine links are dropped -- port
values were already propagated globally, so slaves need no awareness of
remote instances), and deploys wave by wave.  Machines in the same
*wave* (no cross-dependency between them) deploy **concurrently** on the
shared event clock: each slave runs inside an overlapping
:class:`~repro.sim.clock.ClockSpan` anchored at the wave start, the
master advances to the slowest slave's finish, and the report's
``parallel_makespan_seconds`` is the measured wall-clock of the whole
deployment.  ``jobs`` / ``jobs_per_host`` are forwarded to each slave
engine, so intra-machine parallelism composes with the inter-machine
waves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.errors import DeploymentError
from repro.core.instances import InstallSpec, ResourceInstance
from repro.core.registry import ResourceTypeRegistry
from repro.drivers.base import DriverRegistry
from repro.runtime.deploy import DeployedSystem, DeploymentEngine
from repro.sim.infrastructure import Infrastructure


def split_spec(spec: InstallSpec) -> dict[str, InstallSpec]:
    """Per-node installation specifications, keyed by machine instance id.

    Each sub-spec contains exactly the instances whose physical context is
    that machine, with links to instances on *other* machines removed
    (their configuration influence already flowed during propagation).
    """
    per_node: dict[str, list[ResourceInstance]] = {}
    machine_of = {inst.id: inst.machine_id(spec) for inst in spec}
    for instance in spec:
        machine_id = machine_of[instance.id]
        local = lambda link: machine_of[link.target.id] == machine_id
        trimmed = replace(
            instance,
            environment=tuple(l for l in instance.environment if local(l)),
            peers=tuple(l for l in instance.peers if local(l)),
        )
        per_node.setdefault(machine_id, []).append(trimmed)
    return {
        machine_id: InstallSpec(instances)
        for machine_id, instances in per_node.items()
    }


def machine_waves(spec: InstallSpec) -> list[list[str]]:
    """Group machines into dependency levels: every machine in wave *i*
    depends only on machines in waves < *i*, so a wave deploys in
    parallel."""
    machine_of = {inst.id: inst.machine_id(spec) for inst in spec}
    machines = sorted(set(machine_of.values()))
    prerequisites: dict[str, set[str]] = {m: set() for m in machines}
    for instance in spec:
        m2 = machine_of[instance.id]
        for upstream in instance.upstream_ids():
            m1 = machine_of[upstream]
            if m1 != m2:
                prerequisites[m2].add(m1)

    waves: list[list[str]] = []
    placed: set[str] = set()
    remaining = set(machines)
    while remaining:
        wave = sorted(
            m for m in remaining if prerequisites[m] <= placed
        )
        if not wave:
            raise DeploymentError(
                "cross-machine dependency cycle; cannot order machines"
            )
        waves.append(wave)
        placed.update(wave)
        remaining.difference_update(wave)
    return waves


#: The slave-agent package installed on every target host (S5.2: "run a
#: slave instance of Engage on each target host").
AGENT_PACKAGE = ("engage-agent", "1.0")


@dataclass
class MultiHostReport:
    """Costs of a coordinated deployment."""

    waves: list[list[str]] = field(default_factory=list)
    per_machine_seconds: dict[str, float] = field(default_factory=dict)
    sequential_seconds: float = 0.0
    #: Sum over waves of the slowest slave in the wave.
    parallel_makespan_seconds: float = 0.0
    #: Hostnames where the coordinator installed the slave agent.
    agents_installed: list[str] = field(default_factory=list)


class MultiHostDeployment:
    """The deployed slaves plus the coordination report."""

    def __init__(
        self,
        spec: InstallSpec,
        slaves: dict[str, DeployedSystem],
        report: MultiHostReport,
    ) -> None:
        self.spec = spec
        self.slaves = slaves
        self.report = report

    def states(self) -> dict[str, str]:
        states: dict[str, str] = {}
        for slave in self.slaves.values():
            states.update(slave.states())
        return states

    def is_deployed(self) -> bool:
        return all(slave.is_deployed() for slave in self.slaves.values())


class MasterCoordinator:
    """Coordinates slave deployments machine by machine."""

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        infrastructure: Infrastructure,
        driver_registry: Optional[DriverRegistry] = None,
    ) -> None:
        self.registry = registry
        self.infrastructure = infrastructure
        self.driver_registry = driver_registry

    def deploy(
        self,
        spec: InstallSpec,
        *,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> MultiHostDeployment:
        per_node = split_spec(spec)
        waves = machine_waves(spec)
        report = MultiHostReport(waves=waves)
        slaves: dict[str, DeployedSystem] = {}
        clock = self.infrastructure.clock
        tracer = self.infrastructure.tracer
        for index, wave in enumerate(waves):
            wave_started = clock.now
            wave_finishes: list[float] = []
            for machine_id in wave:
                engine = DeploymentEngine(
                    self.registry, self.infrastructure, self.driver_registry
                )
                # Same-wave slaves have no inter-dependencies, so each
                # runs in its own span anchored at the wave start: their
                # simulated timelines overlap even though the substrate
                # executes them one after another.
                span = clock.overlapping(wave_started)
                with span:
                    self._install_agent(engine, per_node[machine_id], report)
                    slaves[machine_id] = engine.deploy(
                        per_node[machine_id],
                        jobs=jobs,
                        jobs_per_host=jobs_per_host,
                    )
                report.per_machine_seconds[machine_id] = span.elapsed
                wave_finishes.append(span.end)
                if tracer is not None:
                    tracer.span(
                        f"slave:{machine_id}", category="coordinator",
                        start=wave_started, duration=span.elapsed,
                        lane="coordinator", wave=index, machine=machine_id,
                    )
            wave_end = max(wave_finishes, default=wave_started)
            # The spans above already account for the elapsed stretch.
            clock.sync_to(wave_end)
            report.parallel_makespan_seconds += wave_end - wave_started
            if tracer is not None:
                tracer.span(
                    f"wave-{index}", category="coordinator",
                    start=wave_started, duration=wave_end - wave_started,
                    lane="coordinator", machines=list(wave),
                )
                tracer.metrics.counter("coordinator.waves").inc()
        report.sequential_seconds = sum(report.per_machine_seconds.values())
        return MultiHostDeployment(spec, slaves, report)

    def _install_agent(
        self,
        engine: DeploymentEngine,
        sub_spec: InstallSpec,
        report: MultiHostReport,
    ) -> None:
        """Install the Engage slave agent on the target host before the
        slave deployment runs (idempotent)."""
        name, version = AGENT_PACKAGE
        if not self.infrastructure.package_index.has(name, version):
            self.infrastructure.package_index.publish_simple(
                name, version, 2_000_000
            )
        for machine in engine._resolve_machines(sub_spec).values():
            manager = self.infrastructure.package_manager(machine)
            if not manager.is_installed(name):
                manager.install(name, version)
                report.agents_installed.append(machine.hostname)

    def shutdown(self, deployment: MultiHostDeployment) -> None:
        """Stop slaves in reverse machine order."""
        for wave in reversed(deployment.report.waves):
            for machine_id in reversed(wave):
                engine = DeploymentEngine(
                    self.registry, self.infrastructure, self.driver_registry
                )
                slave = deployment.slaves[machine_id]
                engine.shutdown(slave)
