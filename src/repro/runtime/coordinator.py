"""Multi-host deployment coordination (S5.2).

"The implementation of a multi-host install can be simplified if one can
partially order the machines ... In this case, we can break the overall
install specification into per-node specifications and run a slave
instance of Engage on each target host.  The entire deployment is then
coordinated from a master host, with each slave running with no awareness
of the others.  Slave deployments can run in parallel when the slaves
have no inter-dependencies."

The master computes the machine partial order
(:meth:`~repro.core.instances.InstallSpec.machine_order`), splits the
full spec into per-node specs (cross-machine links are dropped -- port
values were already propagated globally, so slaves need no awareness of
remote instances), and deploys wave by wave.  Machines in the same
*wave* (no cross-dependency between them) deploy **concurrently** on the
shared event clock: each slave runs inside an overlapping
:class:`~repro.sim.clock.ClockSpan` anchored at the wave start, the
master advances to the slowest slave's finish, and the report's
``parallel_makespan_seconds`` is the measured wall-clock of the whole
deployment.  ``jobs`` / ``jobs_per_host`` are forwarded to each slave
engine, so intra-machine parallelism composes with the inter-machine
waves.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.core.errors import DeploymentError, DeploymentFailure
from repro.core.instances import InstallSpec, ResourceInstance
from repro.core.registry import ResourceTypeRegistry
from repro.drivers.base import DriverRegistry
from repro.runtime import bus as busmod
from repro.runtime.bus import MessageBus
from repro.runtime.deploy import DeployedSystem, DeploymentEngine
from repro.runtime.journal import DeploymentJournal
from repro.runtime.retry import RetryPolicy
from repro.sim.infrastructure import Infrastructure


def split_spec(spec: InstallSpec) -> dict[str, InstallSpec]:
    """Per-node installation specifications, keyed by machine instance id.

    Each sub-spec contains exactly the instances whose physical context is
    that machine, with links to instances on *other* machines removed
    (their configuration influence already flowed during propagation).
    """
    per_node: dict[str, list[ResourceInstance]] = {}
    machine_of = {inst.id: inst.machine_id(spec) for inst in spec}
    for instance in spec:
        machine_id = machine_of[instance.id]
        local = lambda link: machine_of[link.target.id] == machine_id
        trimmed = replace(
            instance,
            environment=tuple(l for l in instance.environment if local(l)),
            peers=tuple(l for l in instance.peers if local(l)),
        )
        per_node.setdefault(machine_id, []).append(trimmed)
    return {
        machine_id: InstallSpec(instances)
        for machine_id, instances in per_node.items()
    }


def machine_waves(spec: InstallSpec) -> list[list[str]]:
    """Group machines into dependency levels: every machine in wave *i*
    depends only on machines in waves < *i*, so a wave deploys in
    parallel."""
    machine_of = {inst.id: inst.machine_id(spec) for inst in spec}
    machines = sorted(set(machine_of.values()))
    prerequisites: dict[str, set[str]] = {m: set() for m in machines}
    for instance in spec:
        m2 = machine_of[instance.id]
        for upstream in instance.upstream_ids():
            m1 = machine_of[upstream]
            if m1 != m2:
                prerequisites[m2].add(m1)

    waves: list[list[str]] = []
    placed: set[str] = set()
    remaining = set(machines)
    while remaining:
        wave = sorted(
            m for m in remaining if prerequisites[m] <= placed
        )
        if not wave:
            raise DeploymentError(
                "cross-machine dependency cycle; cannot order machines"
            )
        waves.append(wave)
        placed.update(wave)
        remaining.difference_update(wave)
    return waves


#: The slave-agent package installed on every target host (S5.2: "run a
#: slave instance of Engage on each target host").
AGENT_PACKAGE = ("engage-agent", "1.0")


def install_agent(
    infrastructure: Infrastructure,
    engine: DeploymentEngine,
    sub_spec: InstallSpec,
    installed: Optional[list[str]] = None,
) -> None:
    """Install the Engage slave agent on ``sub_spec``'s target hosts.

    Idempotent: the package is published to the index once and installed
    only where missing.  Shared by the direct coordinator and the bus
    slave agents, so both control planes leave identical worlds.
    """
    name, version = AGENT_PACKAGE
    if not infrastructure.package_index.has(name, version):
        infrastructure.package_index.publish_simple(name, version, 2_000_000)
    for machine in engine._resolve_machines(sub_spec).values():
        manager = infrastructure.package_manager(machine)
        if not manager.is_installed(name):
            manager.install(name, version)
            if installed is not None:
                installed.append(machine.hostname)


class MultiHostDeploymentFailure(DeploymentFailure):
    """A coordinated deployment stopped with one slave failed.

    On top of :class:`~repro.core.errors.DeploymentFailure` (whose
    ``journal`` / ``system`` / ``report`` describe the *failing* slave)
    this carries the fleet view the wave loop would otherwise discard:
    ``deployment`` holds every slave that ran -- including the failed
    one's partial system -- so no sibling's in-flight journal entries
    are orphaned; ``failed_machine`` names the culprit and
    ``unstarted`` the machines whose waves never began.
    """

    def __init__(
        self,
        message: str,
        *,
        deployment: "MultiHostDeployment",
        failed_machine: str,
        unstarted: list[str],
        **kwargs: Any,
    ) -> None:
        super().__init__(message, **kwargs)
        self.deployment = deployment
        self.failed_machine = failed_machine
        self.unstarted = list(unstarted)


@dataclass
class MultiHostReport:
    """Costs of a coordinated deployment."""

    waves: list[list[str]] = field(default_factory=list)
    per_machine_seconds: dict[str, float] = field(default_factory=dict)
    sequential_seconds: float = 0.0
    #: Sum over waves of the slowest slave in the wave.
    parallel_makespan_seconds: float = 0.0
    #: Hostnames where the coordinator installed the slave agent.
    agents_installed: list[str] = field(default_factory=list)


class MultiHostDeployment:
    """The deployed slaves plus the coordination report."""

    def __init__(
        self,
        spec: InstallSpec,
        slaves: dict[str, DeployedSystem],
        report: MultiHostReport,
    ) -> None:
        self.spec = spec
        self.slaves = slaves
        self.report = report

    def states(self) -> dict[str, str]:
        states: dict[str, str] = {}
        for slave in self.slaves.values():
            states.update(slave.states())
        return states

    def is_deployed(self) -> bool:
        return all(slave.is_deployed() for slave in self.slaves.values())

    def journals(self) -> dict[str, DeploymentJournal]:
        """Per-machine write-ahead journals (slaves that have one)."""
        return {
            machine_id: slave.journal
            for machine_id, slave in self.slaves.items()
            if slave.journal is not None
        }

    def merged_journal(self) -> DeploymentJournal:
        """One fleet journal folding every slave's journal together."""
        journals = self.journals().values()
        targets = {journal.target for journal in journals}
        target = targets.pop() if len(targets) == 1 else "active"
        return DeploymentJournal.merged(self.spec, journals, target=target)


class MasterCoordinator:
    """Coordinates slave deployments machine by machine."""

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        infrastructure: Infrastructure,
        driver_registry: Optional[DriverRegistry] = None,
    ) -> None:
        self.registry = registry
        self.infrastructure = infrastructure
        self.driver_registry = driver_registry

    def deploy(
        self,
        spec: InstallSpec,
        *,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> MultiHostDeployment:
        per_node = split_spec(spec)
        waves = machine_waves(spec)
        report = MultiHostReport(waves=waves)
        slaves: dict[str, DeployedSystem] = {}
        clock = self.infrastructure.clock
        tracer = self.infrastructure.tracer
        for index, wave in enumerate(waves):
            wave_started = clock.now
            wave_finishes: list[float] = []
            for machine_id in wave:
                engine = DeploymentEngine(
                    self.registry, self.infrastructure, self.driver_registry
                )
                # Same-wave slaves have no inter-dependencies, so each
                # runs in its own span anchored at the wave start: their
                # simulated timelines overlap even though the substrate
                # executes them one after another.
                span = clock.overlapping(wave_started)
                try:
                    with span:
                        self._install_agent(
                            engine, per_node[machine_id], report
                        )
                        slaves[machine_id] = engine.deploy(
                            per_node[machine_id],
                            jobs=jobs,
                            jobs_per_host=jobs_per_host,
                        )
                except DeploymentFailure as failure:
                    # Keep every sibling slave (and this slave's partial
                    # system) on the failure: their in-flight journal
                    # entries would otherwise be orphaned with the
                    # discarded ``slaves`` dict.
                    if failure.system is not None:
                        slaves[machine_id] = failure.system
                    report.per_machine_seconds[machine_id] = span.elapsed
                    partial = MultiHostDeployment(spec, slaves, report)
                    started = set(slaves)
                    unstarted = [
                        m for w in waves for m in w if m not in started
                    ]
                    completed: set[str] = set()
                    for journal_ in partial.journals().values():
                        completed |= journal_.completed
                    raise MultiHostDeploymentFailure(
                        f"slave {machine_id!r} failed in wave {index}: "
                        f"{failure}",
                        deployment=partial,
                        failed_machine=machine_id,
                        unstarted=unstarted,
                        journal=failure.journal,
                        completed=completed,
                        failed=failure.failed,
                        skipped=failure.skipped,
                        report=failure.report,
                        system=failure.system,
                    ) from failure
                report.per_machine_seconds[machine_id] = span.elapsed
                wave_finishes.append(span.end)
                if tracer is not None:
                    tracer.span(
                        f"slave:{machine_id}", category="coordinator",
                        start=wave_started, duration=span.elapsed,
                        lane="coordinator", wave=index, machine=machine_id,
                    )
            wave_end = max(wave_finishes, default=wave_started)
            # The spans above already account for the elapsed stretch.
            clock.sync_to(wave_end)
            report.parallel_makespan_seconds += wave_end - wave_started
            if tracer is not None:
                tracer.span(
                    f"wave-{index}", category="coordinator",
                    start=wave_started, duration=wave_end - wave_started,
                    lane="coordinator", machines=list(wave),
                )
                tracer.metrics.counter("coordinator.waves").inc()
        report.sequential_seconds = sum(report.per_machine_seconds.values())
        return MultiHostDeployment(spec, slaves, report)

    def _install_agent(
        self,
        engine: DeploymentEngine,
        sub_spec: InstallSpec,
        report: MultiHostReport,
    ) -> None:
        """Install the Engage slave agent on the target host before the
        slave deployment runs (idempotent)."""
        install_agent(
            self.infrastructure, engine, sub_spec, report.agents_installed
        )

    def shutdown(self, deployment: MultiHostDeployment) -> None:
        """Stop slaves in reverse machine order."""
        for wave in reversed(deployment.report.waves):
            for machine_id in reversed(wave):
                engine = DeploymentEngine(
                    self.registry, self.infrastructure, self.driver_registry
                )
                slave = deployment.slaves[machine_id]
                engine.shutdown(slave)


# ---------------------------------------------------------------------------
# The message-bus control plane.
#
# The direct coordinator above calls each slave engine in-process; the
# classes below replace those calls with traffic over a simulated
# :class:`~repro.runtime.bus.MessageBus`: the master enqueues one
# idempotent *work item* per (wave, machine) and retransmits until
# acked; slave agents consume work, execute it through the ordinary
# deployment engine (DAG scheduler, retries, write-ahead journal), and
# ack with their journal frontier.  Because delivery is at-least-once
# and chaotic (drops, duplicates, reorders, partitions), everything is
# keyed: a work item's dedup key makes re-execution a cache hit, and a
# re-ack replays the cached frontier instead of redoing the work --
# at-least-once delivery, exactly-once *effect*.
# ---------------------------------------------------------------------------


def work_key(wave: int, machine_id: str) -> str:
    """The idempotency key of one work item (a machine deploys in
    exactly one wave, so the key is unique per deployment)."""
    return f"w{wave}:{machine_id}"


class SlaveCrashed(Exception):
    """The slave agent process died mid-deployment.

    Deliberately *not* an :class:`~repro.core.errors.EngageError`: the
    schedulers convert those into :class:`DeploymentFailure` at a
    consistent frontier, but a crash is not a failed action -- it must
    punch straight through the scheduler to the agent's crash handler,
    leaving the journal exactly as the last completed action wrote it.
    """

    def __init__(self, machine_id: str, at: float) -> None:
        super().__init__(f"slave agent on {machine_id!r} crashed at {at:.3f}")
        self.machine_id = machine_id
        self.at = at


@dataclass
class _CrashFuse:
    """Kills the slave agent after N driver actions (before the N+1th)."""

    after_actions: int
    armed: bool = True
    count: int = 0

    def blown(self) -> bool:
        if not self.armed:
            return False
        self.count += 1
        return self.count > self.after_actions


class _SlaveEngine(DeploymentEngine):
    """A deployment engine wired to a crash fuse.

    The fuse is checked *before* each driver action, modelling a kill
    between actions: the world and the journal stay mutually consistent
    (an action either fully happened and was journalled, or neither).
    """

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        infrastructure: Infrastructure,
        driver_registry: Optional[DriverRegistry],
        fuse: Optional[_CrashFuse],
        machine_id: str,
    ) -> None:
        super().__init__(registry, infrastructure, driver_registry)
        self.fuse = fuse
        self.machine_id = machine_id

    def _perform_with_retry(self, system, instance_id, transition, report,
                            *, policy, journal):
        if self.fuse is not None and self.fuse.blown():
            raise SlaveCrashed(self.machine_id, self.infrastructure.clock.now)
        super()._perform_with_retry(
            system, instance_id, transition, report,
            policy=policy, journal=journal,
        )


class SlaveAgent:
    """One Engage slave: consumes work from the bus, acks frontiers.

    The split between durable and volatile state is the crash model:
    ``journals`` is the write-ahead journal on the slave's disk and
    survives a crash; ``systems`` (live driver objects) and the inbox
    are process memory and are lost.  ``acks`` caches the final ack per
    work key so a duplicate or retransmitted work item is answered from
    the cache -- the ``redundant_acks`` counter is the proof that
    at-least-once delivery never re-executed completed work.
    """

    def __init__(
        self,
        machine_id: str,
        registry: ResourceTypeRegistry,
        infrastructure: Infrastructure,
        driver_registry: Optional[DriverRegistry],
        bus: MessageBus,
        *,
        master: str = "master",
        policy: Optional[RetryPolicy] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
        heartbeat_every: float = 5.0,
        crash_after_actions: Optional[int] = None,
        crash_down_for: float = 25.0,
    ) -> None:
        self.machine_id = machine_id
        self.name = machine_id
        self.registry = registry
        self.infrastructure = infrastructure
        self.driver_registry = driver_registry
        self.bus = bus
        self.endpoint = bus.register(self.name)
        self.master = master
        self.policy = policy
        self.jobs = jobs
        self.jobs_per_host = jobs_per_host
        self.heartbeat_every = heartbeat_every
        self.fuse = (
            _CrashFuse(crash_after_actions)
            if crash_after_actions is not None else None
        )
        self.down_for = crash_down_for
        # Durable (survives a crash): the write-ahead journals.
        self.journals: dict[str, DeploymentJournal] = {}
        # Volatile (lost at crash): live systems and the ack cache is
        # rebuilt from the journal on re-execution.
        self.systems: dict[str, DeployedSystem] = {}
        self.acks: dict[str, dict] = {}
        self._ack_attempts: dict[str, int] = {}
        self.agents_installed: list[str] = []
        self.crashed = False
        self.rejoin_at: Optional[float] = None
        self.busy_until = 0.0
        self.next_heartbeat = 0.0
        self.total_seconds = 0.0
        self.work_executions = 0
        self.work_resumes = 0
        self.redundant_acks = 0
        self.crashes = 0
        self.rejoins = 0

    # -- Control loop hooks ----------------------------------------------

    def step(self, now: float) -> None:
        if self.crashed:
            if self.rejoin_at is not None and now >= self.rejoin_at:
                self._rejoin(now)
            return
        for envelope in self.endpoint.drain():
            if envelope.kind == busmod.WORK:
                self._handle_work(envelope, now)
            elif envelope.kind == busmod.ADOPT:
                self.master = envelope.sender
        if not self.crashed and now >= self.next_heartbeat:
            self.bus.send(
                self.name, self.master, busmod.HEARTBEAT,
                {"machine": self.machine_id},
                at=max(now, self.busy_until),
            )
            self.next_heartbeat = max(now, self.busy_until) \
                + self.heartbeat_every

    def next_wake(self, now: float) -> Optional[float]:
        if self.crashed:
            return self.rejoin_at
        return self.next_heartbeat

    # -- Work execution ---------------------------------------------------

    def _handle_work(self, envelope, now: float) -> None:
        key = envelope.dedup_key
        self.master = envelope.sender
        if key in self.acks:
            # Duplicate or retransmitted work for something already
            # done: replay the cached frontier, never the work.
            self.redundant_acks += 1
            self._send_ack(self.acks[key], now)
            return
        sub_spec: InstallSpec = envelope.payload["spec"]
        wave: int = envelope.payload["wave"]
        journal = self.journals.get(key)
        if journal is None:
            journal = DeploymentJournal(sub_spec)
            self.journals[key] = journal
        resume = bool(journal.entries or journal.completed)
        engine = _SlaveEngine(
            self.registry, self.infrastructure, self.driver_registry,
            self.fuse, self.machine_id,
        )
        span = self.infrastructure.clock.overlapping(now)
        try:
            with span:
                install_agent(
                    self.infrastructure, engine, sub_spec,
                    self.agents_installed,
                )
                if resume:
                    self.work_resumes += 1
                    system = engine.resume(
                        journal, policy=self.policy,
                        jobs=self.jobs, jobs_per_host=self.jobs_per_host,
                    )
                else:
                    self.work_executions += 1
                    system = engine.deploy(
                        sub_spec, policy=self.policy, journal=journal,
                        jobs=self.jobs, jobs_per_host=self.jobs_per_host,
                    )
        except SlaveCrashed:
            # A parallel pass may have journalled a sibling action whose
            # completion lands *after* the instant the fuse blew (the
            # DAG scheduler drives each in-flight action to its simulated
            # end).  The write-ahead journal is the durable truth, so the
            # crash is ordered after its last record -- otherwise the
            # rejoined resume could timestamp new entries before ones
            # that survived, inverting per-instance chains.
            end = max(
                span.end,
                max((e.timestamp for e in journal.entries), default=0.0),
            )
            self.total_seconds += end - now
            self._heartbeat_over(now, end, key)
            self._crash(end)
            return
        except DeploymentFailure as failure:
            self.total_seconds += span.elapsed
            if failure.system is not None:
                self.systems[key] = failure.system
            self.bus.send(
                self.name, self.master, busmod.NACK,
                {"key": key, "machine": self.machine_id,
                 "error": str(failure)},
                at=span.end,
            )
            return
        self.total_seconds += span.elapsed
        self.busy_until = max(self.busy_until, span.end)
        self.systems[key] = system
        ack = {
            "key": key,
            "machine": self.machine_id,
            "wave": wave,
            "completed": sorted(journal.completed),
            "entries": [entry.to_payload() for entry in journal.entries],
            "seconds": span.elapsed,
            "finished_at": span.end,
        }
        self.acks[key] = ack
        self._heartbeat_over(now, span.end, key)
        self._send_ack(ack, span.end)

    def _send_ack(self, ack: dict, at: float) -> None:
        # Each (re)send is a distinct attempt so the link-fault plan
        # draws independently -- a seed that drops the first ack must
        # not deterministically drop every re-ack.
        attempt = self._ack_attempts.get(ack["key"], 0) + 1
        self._ack_attempts[ack["key"]] = attempt
        self.bus.send(
            self.name, self.master, busmod.ACK, ack,
            dedup_key=f"ack:{ack['key']}", attempt=attempt,
            at=max(at, self.busy_until),
        )

    def _heartbeat_over(self, start: float, end: float, key: str) -> None:
        """Retroactive progress heartbeats covering a long work span.

        Each names the in-flight work key, so the master pushes back
        that item's retransmit timer (and does not suspect a slave that
        is merely busy) instead of re-sending work the slave is already
        executing."""
        t = start + self.heartbeat_every
        while t < end:
            self.bus.send(
                self.name, self.master, busmod.HEARTBEAT,
                {"machine": self.machine_id, "working": [key]}, at=t,
            )
            t += self.heartbeat_every
        self.next_heartbeat = max(self.next_heartbeat, end)

    # -- Crash and rejoin --------------------------------------------------

    def _crash(self, at: float) -> None:
        self.crashed = True
        self.crashes += 1
        if self.fuse is not None:
            self.fuse.armed = False
        # In-flight completion events of the interrupted DAG pass would
        # leak into the next pass's event loop.
        self.infrastructure.clock.cancel_events()
        self.bus.close(self.name)
        # Process memory is gone; the write-ahead journal is not.
        self.systems.clear()
        self.acks.clear()
        self.rejoin_at = at + self.down_for

    def _rejoin(self, now: float) -> None:
        self.crashed = False
        self.rejoins += 1
        self.bus.open(self.name)
        self.bus.send(
            self.name, self.master, busmod.HELLO,
            {"machine": self.machine_id},
        )
        self.next_heartbeat = now + self.heartbeat_every


@dataclass
class WorkStatus:
    """The master's durable record of one work item."""

    key: str
    machine_id: str
    wave: int
    sent_at: Optional[float] = None
    attempts: int = 0
    acked: bool = False
    ack: Optional[dict] = None
    error: Optional[str] = None


class ControlLog:
    """The master's write-ahead control log: every work item and its
    ack state, plus the wave cursor.  Durable -- a standby master
    adopts a :meth:`clone` at failover and carries on from the acked
    frontier instead of restarting the deployment."""

    def __init__(self) -> None:
        self.statuses: dict[str, WorkStatus] = {}
        self.wave_index = 0

    def clone(self) -> "ControlLog":
        log = ControlLog()
        log.wave_index = self.wave_index
        for key, status in self.statuses.items():
            log.statuses[key] = WorkStatus(
                key=status.key,
                machine_id=status.machine_id,
                wave=status.wave,
                # Unacked work is resent immediately by the adopter:
                # the old master's in-flight transmissions (and any
                # acks addressed to it) are lost with it.
                sent_at=status.sent_at if status.acked else None,
                attempts=status.attempts,
                acked=status.acked,
                ack=dict(status.ack) if status.ack is not None else None,
                error=status.error,
            )
        return log


class MasterNode:
    """The deployment master: dispatches waves of work items over the
    bus, retransmits unacked work, and watches slave heartbeats."""

    def __init__(
        self,
        name: str,
        bus: MessageBus,
        waves: list[list[str]],
        per_node: dict[str, InstallSpec],
        *,
        log: Optional[ControlLog] = None,
        retransmit_after: float = 10.0,
        heartbeat_timeout: float = 15.0,
    ) -> None:
        self.name = name
        self.bus = bus
        self.waves = waves
        self.per_node = per_node
        self.endpoint = bus.register(name)
        self.retransmit_after = retransmit_after
        self.heartbeat_timeout = heartbeat_timeout
        self.started_at = bus.clock.now
        if log is None:
            log = ControlLog()
            for wave_index, wave in enumerate(waves):
                for machine_id in wave:
                    key = work_key(wave_index, machine_id)
                    log.statuses[key] = WorkStatus(key, machine_id, wave_index)
        self.log = log
        self.last_seen: dict[str, float] = {}
        self.suspected: set[str] = set()
        self.suspects: list[dict] = []
        self.rejoins: list[dict] = []
        self.failures: dict[str, str] = {}
        self.duplicate_acks = 0

    def adopt(self, now: float) -> None:
        """Announce this (standby) master to every slave, so acks and
        heartbeats re-target it."""
        for machine_id in sorted(self.per_node):
            self.bus.send(
                self.name, machine_id, busmod.ADOPT, {"master": self.name}
            )

    # -- Control loop hooks ----------------------------------------------

    def step(self, now: float) -> None:
        for envelope in self.endpoint.drain():
            self.last_seen[envelope.sender] = max(
                self.last_seen.get(envelope.sender, 0.0), envelope.deliver_at
            )
            if envelope.sender in self.suspected:
                self.suspected.discard(envelope.sender)
            if envelope.kind == busmod.ACK:
                self._handle_ack(envelope.payload)
            elif envelope.kind == busmod.NACK:
                self.failures[envelope.payload["key"]] = \
                    envelope.payload["error"]
            elif envelope.kind == busmod.HELLO:
                self._handle_hello(envelope.payload, now)
            elif envelope.kind == busmod.HEARTBEAT:
                # A progress heartbeat names in-flight work: push back
                # its retransmit timer -- the slave has the item and is
                # executing it, re-sending would only burn messages.
                for key in envelope.payload.get("working", ()):
                    status = self.log.statuses.get(key)
                    if status is not None and not status.acked \
                            and status.sent_at is not None:
                        status.sent_at = max(
                            status.sent_at, envelope.deliver_at
                        )
        self._check_suspects(now)
        self._advance_waves()
        self._dispatch(now)

    def _handle_ack(self, ack: dict) -> None:
        status = self.log.statuses.get(ack["key"])
        if status is None:
            return
        if status.acked:
            self.duplicate_acks += 1
            return
        status.acked = True
        status.ack = ack
        self.failures.pop(ack["key"], None)

    def _handle_hello(self, payload: dict, now: float) -> None:
        machine_id = payload["machine"]
        self.rejoins.append({"at": now, "machine": machine_id})
        # A rejoining slave lost its process memory: resend its unacked
        # work immediately instead of waiting out the retransmit timer.
        for status in self.log.statuses.values():
            if status.machine_id == machine_id and not status.acked:
                status.sent_at = None

    def _check_suspects(self, now: float) -> None:
        for machine_id in self._outstanding_slaves():
            if machine_id in self.suspected:
                continue
            seen = self.last_seen.get(machine_id, self.started_at)
            if now - seen > self.heartbeat_timeout:
                self.suspected.add(machine_id)
                self.suspects.append(
                    {"at": now, "machine": machine_id, "last_seen": seen}
                )

    def _advance_waves(self) -> None:
        while self.log.wave_index < len(self.waves) and all(
            self.log.statuses[
                work_key(self.log.wave_index, machine_id)
            ].acked
            for machine_id in self.waves[self.log.wave_index]
        ):
            self.log.wave_index += 1

    def _dispatch(self, now: float) -> None:
        if self.done():
            return
        for machine_id in self.waves[self.log.wave_index]:
            status = self.log.statuses[
                work_key(self.log.wave_index, machine_id)
            ]
            if status.acked or status.key in self.failures:
                continue
            if (
                status.sent_at is not None
                and now - status.sent_at < self.retransmit_after
            ):
                continue
            status.attempts += 1
            status.sent_at = now
            self.bus.send(
                self.name, machine_id, busmod.WORK,
                {"wave": status.wave, "spec": self.per_node[machine_id]},
                dedup_key=status.key, attempt=status.attempts,
            )

    def done(self) -> bool:
        return self.log.wave_index >= len(self.waves)

    def next_wake(self, now: float) -> Optional[float]:
        if self.done():
            return None
        candidates: list[float] = []
        for machine_id in self.waves[self.log.wave_index]:
            status = self.log.statuses[
                work_key(self.log.wave_index, machine_id)
            ]
            if status.acked:
                continue
            if status.sent_at is None:
                candidates.append(now)
            else:
                candidates.append(status.sent_at + self.retransmit_after)
        for machine_id in self._outstanding_slaves():
            if machine_id not in self.suspected:
                seen = self.last_seen.get(machine_id, self.started_at)
                candidates.append(seen + self.heartbeat_timeout)
        return min(candidates) if candidates else None

    def _outstanding_slaves(self) -> list[str]:
        if self.done():
            return []
        return [
            machine_id
            for machine_id in self.waves[self.log.wave_index]
            if not self.log.statuses[
                work_key(self.log.wave_index, machine_id)
            ].acked
        ]

    def retransmits(self) -> int:
        return sum(
            max(0, status.attempts - 1)
            for status in self.log.statuses.values()
        )


@dataclass
class BusChaos:
    """The fault schedule of one bus-coordinated deployment.

    Times are seconds after the deployment starts.  ``partition_slaves``
    limits the partition to a subset of machine ids (``None`` cuts every
    slave off the master); the crash fields arm a
    :class:`_CrashFuse` on one slave agent.
    """

    partition_at: Optional[float] = None
    partition_for: float = 30.0
    partition_slaves: Optional[list[str]] = None
    crash_machine: Optional[str] = None
    crash_after_actions: int = 3
    crash_down_for: float = 25.0
    failover_at: Optional[float] = None


@dataclass
class BusReport(MultiHostReport):
    """A :class:`MultiHostReport` plus the control-plane accounting."""

    bus_stats: dict = field(default_factory=dict)
    retransmits: int = 0
    redundant_acks: int = 0
    duplicate_acks: int = 0
    work_executions: int = 0
    work_resumes: int = 0
    crashes: int = 0
    suspects: list[dict] = field(default_factory=list)
    rejoins: list[dict] = field(default_factory=list)
    masters: list[str] = field(default_factory=list)
    failover: Optional[dict] = None
    partition: Optional[dict] = None

    def summary(self) -> dict:
        return {
            "waves": self.waves,
            "parallel_makespan_seconds": self.parallel_makespan_seconds,
            "sequential_seconds": self.sequential_seconds,
            "bus": self.bus_stats,
            "retransmits": self.retransmits,
            "redundant_acks": self.redundant_acks,
            "duplicate_acks": self.duplicate_acks,
            "work_executions": self.work_executions,
            "work_resumes": self.work_resumes,
            "crashes": self.crashes,
            "suspects": self.suspects,
            "rejoins": self.rejoins,
            "masters": self.masters,
            "failover": self.failover,
            "partition": self.partition,
        }


class BusDeployment(MultiHostDeployment):
    """A bus-coordinated deployment: slaves, report, and the bus."""

    def __init__(
        self,
        spec: InstallSpec,
        slaves: dict[str, DeployedSystem],
        report: BusReport,
        bus: MessageBus,
    ) -> None:
        super().__init__(spec, slaves, report)
        self.report: BusReport = report
        self.bus = bus

    def merged_system(self, engine: DeploymentEngine) -> DeployedSystem:
        """One :class:`DeployedSystem` over the full spec, adopted from
        the merged journal frontier (for persistence / status)."""
        from repro.runtime.state import adopt_states

        merged = self.merged_journal()
        system = engine.prepare(self.spec)
        adopt_states(system, merged.states(), partial=True)
        system.journal = merged
        return system


class BusCoordinator:
    """Coordinates slave deployments over the message bus.

    Equivalent in effect to :class:`MasterCoordinator` -- same waves,
    same per-node sub-specs, same engines doing the work -- but every
    hand-off crosses the bus, so partitions, slave crashes, and master
    failover (a :class:`BusChaos` schedule) become scenarios the
    deployment must survive rather than things it cannot express.
    """

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        infrastructure: Infrastructure,
        driver_registry: Optional[DriverRegistry] = None,
        *,
        link_faults=None,
        default_latency: float = 0.05,
        heartbeat_every: float = 5.0,
        heartbeat_timeout: float = 15.0,
        retransmit_after: float = 10.0,
        max_sim_seconds: float = 14400.0,
    ) -> None:
        self.registry = registry
        self.infrastructure = infrastructure
        self.driver_registry = driver_registry
        self.link_faults = link_faults
        self.default_latency = default_latency
        self.heartbeat_every = heartbeat_every
        self.heartbeat_timeout = heartbeat_timeout
        self.retransmit_after = retransmit_after
        self.max_sim_seconds = max_sim_seconds

    def deploy(
        self,
        spec: InstallSpec,
        *,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
        policy: Optional[RetryPolicy] = None,
        chaos: Optional[BusChaos] = None,
    ) -> BusDeployment:
        chaos = chaos if chaos is not None else BusChaos()
        clock = self.infrastructure.clock
        tracer = self.infrastructure.tracer
        per_node = split_spec(spec)
        waves = machine_waves(spec)
        bus = MessageBus(
            clock,
            default_latency=self.default_latency,
            faults=self.link_faults,
            tracer=tracer,
        )
        master = MasterNode(
            "master", bus, waves, per_node,
            retransmit_after=self.retransmit_after,
            heartbeat_timeout=self.heartbeat_timeout,
        )
        masters = [master]
        agents: dict[str, SlaveAgent] = {}
        for machine_id in sorted(per_node):
            crash_after = (
                chaos.crash_after_actions
                if machine_id == chaos.crash_machine else None
            )
            agents[machine_id] = SlaveAgent(
                machine_id, self.registry, self.infrastructure,
                self.driver_registry, bus,
                master=master.name, policy=policy,
                jobs=jobs, jobs_per_host=jobs_per_host,
                heartbeat_every=self.heartbeat_every,
                crash_after_actions=crash_after,
                crash_down_for=chaos.crash_down_for,
            )
        started_at = clock.now
        deadline = started_at + self.max_sim_seconds
        events: list[tuple[float, str]] = []
        if chaos.partition_at is not None:
            events.append((started_at + chaos.partition_at, "partition"))
            events.append(
                (started_at + chaos.partition_at + chaos.partition_for,
                 "heal"),
            )
        if chaos.failover_at is not None:
            events.append((started_at + chaos.failover_at, "failover"))
        events.sort()
        partitioned = False
        failover: Optional[dict] = None
        partition_record: Optional[dict] = None
        no_progress = 0
        while True:
            now = clock.now
            while events and events[0][0] <= now:
                _, kind = events.pop(0)
                if kind == "partition":
                    partitioned = True
                    partition_record = {
                        "at": now,
                        "slaves": sorted(
                            chaos.partition_slaves or list(agents)
                        ),
                        "for": chaos.partition_for,
                    }
                    self._apply_partition(bus, masters, agents, chaos)
                    self._instant(tracer, "partition", now)
                elif kind == "heal":
                    partitioned = False
                    bus.heal()
                    self._instant(tracer, "heal", now)
                elif kind == "failover":
                    old = masters[-1]
                    bus.close(old.name)
                    standby = MasterNode(
                        f"master-{len(masters) + 1}", bus, waves, per_node,
                        log=old.log.clone(),
                        retransmit_after=self.retransmit_after,
                        heartbeat_timeout=self.heartbeat_timeout,
                    )
                    masters.append(standby)
                    standby.adopt(now)
                    failover = {"at": now, "master": standby.name}
                    if partitioned:
                        self._apply_partition(bus, masters, agents, chaos)
                    self._instant(
                        tracer, "failover", now, master=standby.name
                    )
            bus.deliver_due(now)
            active = masters[-1]
            active.step(now)
            for machine_id in sorted(agents):
                agents[machine_id].step(now)
            if active.failures:
                key, error = sorted(active.failures.items())[0]
                raise DeploymentError(
                    f"bus deployment failed: work {key} nacked: {error}"
                )
            if active.done():
                break
            candidates = [bus.next_time(), active.next_wake(now)]
            candidates.extend(
                agent.next_wake(now) for agent in agents.values()
            )
            if events:
                candidates.append(events[0][0])
            peek = clock.peek_next_event_time()
            if peek is not None:
                candidates.append(peek)
            live = [c for c in candidates if c is not None]
            if not live:
                raise DeploymentError(
                    "bus control plane stalled: nothing scheduled"
                )
            nxt = min(live)
            if now >= deadline:
                raise DeploymentError(
                    "bus deployment did not converge within "
                    f"{self.max_sim_seconds:.0f} simulated seconds"
                )
            if nxt <= now:
                no_progress += 1
                if no_progress > 10_000:
                    raise DeploymentError(
                        "bus control plane made no progress"
                    )
                nxt = now + 0.001
            else:
                no_progress = 0
            clock.sync_to(nxt)
        return self._finish(
            spec, waves, bus, masters, agents, started_at,
            failover, partition_record,
        )

    def _apply_partition(
        self,
        bus: MessageBus,
        masters: list[MasterNode],
        agents: dict[str, SlaveAgent],
        chaos: BusChaos,
    ) -> None:
        affected = set(chaos.partition_slaves or list(agents))
        master_side = [m.name for m in masters] + sorted(
            machine_id for machine_id in agents if machine_id not in affected
        )
        bus.partition(master_side, sorted(affected))

    def _instant(self, tracer, name: str, at: float, **args) -> None:
        if tracer is not None:
            tracer.instant(
                name, category="bus-chaos", timestamp=at,
                lane="coordinator", **args,
            )
            tracer.metrics.counter(f"bus.chaos.{name}").inc()

    def _finish(
        self,
        spec: InstallSpec,
        waves: list[list[str]],
        bus: MessageBus,
        masters: list[MasterNode],
        agents: dict[str, SlaveAgent],
        started_at: float,
        failover: Optional[dict],
        partition_record: Optional[dict],
    ) -> BusDeployment:
        report = BusReport(waves=waves)
        slaves: dict[str, DeployedSystem] = {}
        for machine_id in sorted(agents):
            agent = agents[machine_id]
            key = next(iter(agent.systems))
            slaves[machine_id] = agent.systems[key]
            report.per_machine_seconds[machine_id] = agent.total_seconds
            report.agents_installed.extend(agent.agents_installed)
            report.redundant_acks += agent.redundant_acks
            report.work_executions += agent.work_executions
            report.work_resumes += agent.work_resumes
            report.crashes += agent.crashes
        report.sequential_seconds = sum(
            report.per_machine_seconds.values()
        )
        report.parallel_makespan_seconds = \
            self.infrastructure.clock.now - started_at
        report.bus_stats = bus.stats()
        report.retransmits = masters[-1].retransmits()
        for node in masters:
            report.suspects.extend(node.suspects)
            report.rejoins.extend(node.rejoins)
            report.duplicate_acks += node.duplicate_acks
        report.masters = [node.name for node in masters]
        report.failover = failover
        report.partition = partition_record
        return BusDeployment(spec, slaves, report, bus)


# ---------------------------------------------------------------------------
# Equivalence fingerprints.
#
# "Bit-identical modulo pid": two runs are equivalent when their worlds
# and journals agree on everything *observable* -- installed packages,
# process names/states/ports, file trees and contents, per-instance
# transition chains, completion partitions -- while pids, timestamps,
# and restart counters (pure accidents of scheduling) are excluded.
# The chaos corpus asserts faulted runs fingerprint-equal unfaulted
# ones; strict byte-identity (same seed, same chaos) is asserted on the
# bus delivery log itself.
# ---------------------------------------------------------------------------


def _canonical_driver_log(content: str) -> list[str]:
    """Driver-log lines with timestamps stripped, sorted.

    The engage driver log records wall-clock stamps and interleaves
    machines' action orders, both of which legitimately differ between
    a faulted and an unfaulted run; the *set* of transitions must not.
    """
    lines = []
    for line in content.splitlines():
        closing = line.find("]")
        lines.append(line[closing + 1:].strip() if closing >= 0 else line)
    return sorted(lines)


def world_fingerprint(infrastructure: Infrastructure) -> str:
    """A canonical digest of every machine's observable state."""
    from repro.drivers.base import ResourceDriver

    payload: dict[str, Any] = {}
    for machine in infrastructure.network.machines():
        manager = infrastructure.package_manager(machine)
        packages = sorted(
            (package.name, package.version, sorted(package.files))
            for package in manager.installed()
        )
        processes = sorted(
            (
                process.name,
                process.instance_id,
                process.state.value,
                sorted(process.listen_ports),
            )
            for process in machine.processes()
        )
        files: dict[str, Any] = {}
        for path in sorted(machine.fs.walk_files()):
            content = machine.fs.read_file(path)
            if path == ResourceDriver.LOG_PATH:
                files[path] = _canonical_driver_log(content)
            else:
                files[path] = hashlib.sha256(
                    content.encode()
                ).hexdigest()[:16]
        payload[machine.hostname] = {
            "packages": packages,
            "processes": processes,
            "files": files,
        }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def canonical_journal(journal: DeploymentJournal) -> dict:
    """The journal minus timestamps: per-instance transition chains
    (order within an instance is meaningful; global interleaving is
    not) plus the completion partitions."""
    chains: dict[str, list[list[str]]] = {}
    for entry in journal.entries:
        chains.setdefault(entry.instance_id, []).append(
            [entry.action, entry.source, entry.target]
        )
    return {
        "target": journal.target,
        "chains": {key: chains[key] for key in sorted(chains)},
        "completed": sorted(journal.completed),
        "failed": dict(sorted(journal.failed.items())),
        "skipped": sorted(journal.skipped),
    }


def deployment_fingerprint(
    infrastructure: Infrastructure,
    deployment: MultiHostDeployment,
) -> str:
    """World + driver states + merged journal, canonically digested."""
    payload = {
        "world": world_fingerprint(infrastructure),
        "states": dict(sorted(deployment.states().items())),
        "journal": canonical_journal(deployment.merged_journal()),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
