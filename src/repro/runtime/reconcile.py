"""Self-healing reconciliation: drift detection, minimal delta repair
plans, and the autonomic loop that converges a fleet under churn.

The paper's runtime reacts to individual process failures through the
monit plugin (:mod:`repro.runtime.monitor`); this module generalises
that reflex into a goal-seeking control loop, the pattern every modern
deployment manager converged on:

1. :func:`detect_drift` diffs the *live world* -- driver states, the
   process table, network membership -- against the configured goal
   specification and produces a structured :class:`DriftReport`
   (crashed services, lost machines, missing and extra instances).
2. :func:`plan_repair` turns a drift report into a *minimal*
   dependency-ordered :class:`TransitionPlan`: restart a dead process,
   redeploy the subtree a lost machine took down, uninstall instances
   the goal no longer wants -- never a full redeploy.  Plan size is
   proportional to the damage, not the fleet.
3. :func:`execute_plan` runs the plan through the regular deployment
   machinery (:meth:`DeploymentEngine.drive_instances`), so repairs get
   the same guard checking, retry policy, and write-ahead journalling
   as first deployments, and :meth:`DeploymentJournal.mark_lost` keeps
   the journal's frontier honest about regressions it observed.
4. :class:`ReconcileController` closes the loop on the simulated
   clock: poll, plan, repair, re-check, round after round -- optionally
   re-validating the repair set against the constraint solver via
   :meth:`ConfigurationSession.reconfigure_components
   <repro.config.session.ConfigurationSession.reconfigure_components>`,
   so what gets redeployed is provably the configured goal, not a stale
   copy of it.

Everything is deterministic: same seed, same churn, same rounds --
bit-identical plans and journals.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.core.errors import (
    ConfigurationError,
    DeploymentError,
    RuntimeEngageError,
)
from repro.core.instances import InstallSpec
from repro.drivers.library import ServiceDriver
from repro.drivers.state_machine import ACTIVE, INACTIVE, UNINSTALLED
from repro.runtime.deploy import (
    DeployedSystem,
    DeploymentEngine,
    DeploymentReport,
)
from repro.runtime.journal import DeploymentJournal
from repro.runtime.monitor import ProcessMonitor
from repro.runtime.retry import RetryPolicy


class DriftKind(Enum):
    """Why an instance diverges from the goal."""

    CRASHED_SERVICE = "crashed-service"
    LOST_MACHINE = "lost-machine"
    MISSING_INSTANCE = "missing-instance"
    EXTRA_INSTANCE = "extra-instance"


@dataclass(frozen=True)
class DriftItem:
    """One instance out of its goal state.

    ``detail`` carries the kind-specific context: the machine instance
    that was lost, or the state the instance is stuck in.
    """

    kind: DriftKind
    instance_id: str
    detail: str = ""

    def to_payload(self) -> dict:
        return {
            "kind": self.kind.value,
            "instance_id": self.instance_id,
            "detail": self.detail,
        }


@dataclass
class DriftReport:
    """The structured diff between the live world and the goal."""

    timestamp: float
    target: str
    items: list[DriftItem] = field(default_factory=list)

    @property
    def is_converged(self) -> bool:
        return not self.items

    def _ids(self, kind: DriftKind) -> list[str]:
        return [item.instance_id for item in self.items if item.kind is kind]

    @property
    def crashed_services(self) -> list[str]:
        return self._ids(DriftKind.CRASHED_SERVICE)

    @property
    def lost_instances(self) -> list[str]:
        """Every instance that went down with a lost machine (the
        machine instance itself included)."""
        return self._ids(DriftKind.LOST_MACHINE)

    @property
    def lost_machines(self) -> list[str]:
        """The lost machine *instances*, deduplicated, sorted."""
        return sorted({
            item.detail
            for item in self.items
            if item.kind is DriftKind.LOST_MACHINE
        })

    @property
    def missing_instances(self) -> list[str]:
        return self._ids(DriftKind.MISSING_INSTANCE)

    @property
    def extra_instances(self) -> list[str]:
        return self._ids(DriftKind.EXTRA_INSTANCE)

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for item in self.items:
            counts[item.kind.value] = counts.get(item.kind.value, 0) + 1
        return counts

    def to_payload(self) -> dict:
        return {
            "timestamp": self.timestamp,
            "target": self.target,
            "converged": self.is_converged,
            "by_kind": self.by_kind(),
            "items": [item.to_payload() for item in self.items],
        }


def detect_drift(
    system: DeployedSystem,
    *,
    goal: Optional[InstallSpec] = None,
    target: str = ACTIVE,
    allow_new: bool = False,
) -> DriftReport:
    """Diff the live world against ``goal`` (default: the deployed spec).

    Checks, in severity order:

    * **lost machines** -- a machine instance whose simulated host has
      dropped off the network (or was replaced behind its back); every
      instance physically on it becomes a ``LOST_MACHINE`` item whose
      detail names the machine instance;
    * **crashed services** -- watched processes that died on machines
      still alive (:meth:`ProcessMonitor.crashed_services`);
    * **missing instances** -- goal instances whose driver is not at
      ``target``;
    * **extra instances** -- deployed instances the goal no longer
      contains, still materialised (state ≠ ``uninstalled``).

    By default ``goal`` must be a subset of the deployed spec: growing
    the goal is an upgrade (see :mod:`repro.runtime.upgrade`), not a
    repair.  The delta planner (:mod:`repro.runtime.delta`) passes
    ``allow_new=True`` to lift that restriction -- goal instances the
    deployed spec has never heard of are then reported as
    ``MISSING_INSTANCE`` items in the ``uninstalled`` state, which is
    exactly what they are from the live world's point of view.
    """
    goal_spec = goal if goal is not None else system.spec
    deployed_ids = set(system.spec.ids())
    unknown = set(goal_spec.ids()) - deployed_ids
    if unknown and not allow_new:
        raise RuntimeEngageError(
            "reconcile goal mentions instances the deployed spec does not "
            f"contain (growing the goal is an upgrade): {sorted(unknown)}"
        )
    network = system.infrastructure.network
    items: list[DriftItem] = []

    lost_machine_ids = [
        instance.id
        for instance in system.spec.machines()
        if instance.id in system.machines
        and (
            not network.has_machine(system.machines[instance.id].hostname)
            or network.machine(system.machines[instance.id].hostname)
            is not system.machines[instance.id]
        )
    ]
    lost_ids: set[str] = set()
    for machine_id in lost_machine_ids:
        for instance in system.spec.instances_on_machine(machine_id):
            lost_ids.add(instance.id)
            items.append(
                DriftItem(DriftKind.LOST_MACHINE, instance.id, machine_id)
            )

    for instance_id in ProcessMonitor(system).crashed_services():
        if instance_id not in lost_ids:
            items.append(
                DriftItem(
                    DriftKind.CRASHED_SERVICE,
                    instance_id,
                    system.state_of(instance_id),
                )
            )

    goal_ids = set(goal_spec.ids())
    for instance in goal_spec.topological_order():
        if instance.id in lost_ids:
            continue
        state = (
            system.state_of(instance.id)
            if instance.id in deployed_ids
            else UNINSTALLED
        )
        if state != target:
            items.append(
                DriftItem(DriftKind.MISSING_INSTANCE, instance.id, state)
            )

    for instance in system.spec.topological_order():
        if instance.id in goal_ids or instance.id in lost_ids:
            continue
        state = system.state_of(instance.id)
        if state != UNINSTALLED:
            items.append(
                DriftItem(DriftKind.EXTRA_INSTANCE, instance.id, state)
            )

    return DriftReport(
        timestamp=system.infrastructure.clock.now,
        target=target,
        items=items,
    )


class RepairOp(Enum):
    """What a repair or delta-transition step does to its instance."""

    #: Bounce the dead process of a still-installed service.
    RESTART = "restart"
    #: Re-register a replacement host for a lost machine and reset the
    #: drivers of everything that lived on it.
    REPROVISION = "reprovision"
    #: Drive the instance back to the goal state through its normal
    #: state-machine path (install and/or start, whatever is missing).
    REDEPLOY = "redeploy"
    #: Stop and remove an instance the goal no longer wants.
    UNINSTALL = "uninstall"
    #: Deploy an instance the old spec never contained (delta only).
    INSTALL = "install"
    #: Tear the old version down and deploy the new one in its place --
    #: the instance's key changed, or it moved to another machine.
    UPGRADE = "upgrade"
    #: Same mechanics as UPGRADE, but driven by a config-only change.
    RECONFIGURE = "reconfigure"
    #: Deregister a machine the new spec no longer wants (delta only).
    RETIRE = "retire"


@dataclass(frozen=True)
class RepairStep:
    """One planned repair action."""

    op: RepairOp
    instance_id: str
    reason: str = ""

    def to_payload(self) -> dict:
        return {
            "op": self.op.value,
            "instance_id": self.instance_id,
            "reason": self.reason,
        }


@dataclass
class TransitionPlan:
    """A minimal, dependency-ordered repair plan.

    Steps are already ordered for execution: uninstalls (reverse
    dependency order), machine reprovisioning, redeploys (dependency
    order), then restarts.  ``__len__`` counts steps, which tests
    compare against the fleet size to assert minimality.
    """

    steps: list[RepairStep] = field(default_factory=list)
    target: str = ACTIVE

    @property
    def is_noop(self) -> bool:
        return not self.steps

    def __len__(self) -> int:
        return len(self.steps)

    def by_op(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for step in self.steps:
            counts[step.op.value] = counts.get(step.op.value, 0) + 1
        return counts

    def instances(self, op: RepairOp) -> list[str]:
        return [step.instance_id for step in self.steps if step.op is op]

    def to_payload(self) -> dict:
        return {
            "target": self.target,
            "noop": self.is_noop,
            "by_op": self.by_op(),
            "steps": [step.to_payload() for step in self.steps],
        }


def plan_repair(
    system: DeployedSystem,
    drift: DriftReport,
    *,
    goal: Optional[InstallSpec] = None,
) -> TransitionPlan:
    """Compute the minimal repair for ``drift``.

    * extras are uninstalled in reverse dependency order;
    * each lost machine gets one ``REPROVISION`` step;
    * lost-and-wanted plus missing instances are redeployed in
      dependency order (drivers on a replaced machine restart from
      ``uninstalled``, so the normal path re-installs exactly what the
      machine lost -- instances elsewhere are untouched);
    * crashed services are restarted, together with any *active*
      downstream service of a redeployed instance (its upstream comes
      back with fresh endpoints, so it must reconnect).

    No drift, empty plan: the no-op property the controller relies on.
    """
    goal_spec = goal if goal is not None else system.spec
    goal_ids = set(goal_spec.ids())
    spec = system.spec
    order = {
        instance.id: index
        for index, instance in enumerate(spec.topological_order())
    }
    steps: list[RepairStep] = []

    extras = set(drift.extra_instances)
    for instance_id in sorted(
        extras, key=lambda iid: order[iid], reverse=True
    ):
        steps.append(
            RepairStep(RepairOp.UNINSTALL, instance_id, "not in goal")
        )

    lost_machines = drift.lost_machines
    for machine_id in sorted(lost_machines, key=lambda iid: order[iid]):
        steps.append(
            RepairStep(RepairOp.REPROVISION, machine_id, "machine lost")
        )

    lost = set(drift.lost_instances)
    redeploy = (lost & goal_ids) | set(drift.missing_instances)
    reasons = {
        iid: "machine lost" if iid in lost else "not at target"
        for iid in redeploy
    }
    for instance_id in sorted(redeploy, key=lambda iid: order[iid]):
        steps.append(
            RepairStep(RepairOp.REDEPLOY, instance_id, reasons[instance_id])
        )

    restarts = {iid: "process died" for iid in drift.crashed_services}
    frontier = list(redeploy)
    dependents: set[str] = set()
    while frontier:
        current = frontier.pop()
        for downstream in spec.downstream_ids(current):
            if downstream in dependents or downstream in redeploy:
                continue
            dependents.add(downstream)
            frontier.append(downstream)
    for instance_id in sorted(dependents):
        if instance_id in extras or instance_id in restarts:
            continue
        driver = system.drivers.get(instance_id)
        if isinstance(driver, ServiceDriver) and driver.state == ACTIVE:
            restarts.setdefault(instance_id, "upstream redeployed")
    for instance_id in sorted(restarts, key=lambda iid: order[iid]):
        steps.append(
            RepairStep(
                RepairOp.RESTART, instance_id, restarts[instance_id]
            )
        )

    return TransitionPlan(steps=steps, target=drift.target)


def _merge_reports(into: DeploymentReport, part: DeploymentReport) -> None:
    into.actions.extend(part.actions)
    into.sequential_seconds += part.sequential_seconds
    into.makespan_seconds += part.makespan_seconds
    into.critical_path_seconds += part.critical_path_seconds
    into.invalidate_caches()


def _replace_machine(
    system: DeployedSystem,
    machine_instance_id: str,
    journal: Optional[DeploymentJournal],
) -> None:
    """Stand up a replacement host for a lost machine instance.

    The fresh machine copies the dead one's identity (hostname, OS,
    address, sizing), every driver that pointed at the old object is
    re-aimed at it, and each affected driver drops back to its initial
    state -- the world-side truth the subsequent redeploy drives from.
    The journal records the observed regression per instance
    (:meth:`DeploymentJournal.mark_lost`), keeping its frontier honest.
    """
    infrastructure = system.infrastructure
    network = infrastructure.network
    old = system.machines[machine_instance_id]
    if network.has_machine(old.hostname):
        fresh = network.machine(old.hostname)
        if fresh is old:  # not actually lost: nothing to replace
            return
    else:
        fresh = infrastructure.add_machine(
            old.hostname,
            old.os.name,
            old.os.version,
            ip_address=old.ip_address,
            cpu_cores=old.cpu_cores,
            memory_mb=old.memory_mb,
            os_user_name=old.os_user_name,
        )
    for instance_id, machine in system.machines.items():
        if machine is old:
            system.machines[instance_id] = fresh
    clock = infrastructure.clock
    for instance in system.spec.instances_on_machine(machine_instance_id):
        driver = system.drivers[instance.id]
        previous = driver.state
        driver.context.machine = fresh
        driver.state = driver.machine_spec.initial
        if isinstance(driver, ServiceDriver):
            driver.discard_process()
        if journal is not None and previous != driver.machine_spec.initial:
            journal.mark_lost(instance.id, previous, clock.now)
    tracer = infrastructure.tracer
    if tracer is not None:
        tracer.instant(
            "machine-replaced", category="reconcile",
            timestamp=clock.now, lane=old.hostname,
            machine=machine_instance_id,
        )
        tracer.metrics.counter("reconcile.machines_replaced").inc()


def execute_plan(
    engine: DeploymentEngine,
    system: DeployedSystem,
    plan: TransitionPlan,
    *,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[DeploymentJournal] = None,
    jobs: Optional[int] = None,
    jobs_per_host: Optional[int] = None,
) -> DeploymentReport:
    """Execute a repair plan through the regular deployment machinery.

    Redeploys run under the write-ahead ``journal`` with full guard
    checking and ``policy`` retries; restarts reuse the engine's
    per-transition path (so each restart is journalled and traced like
    any other action).  The uninstall pass for extras is deliberately
    *not* journalled -- the journal describes the goal, and extras are
    exactly what the goal no longer contains.
    """
    report = DeploymentReport(jobs=jobs)

    extras = plan.instances(RepairOp.UNINSTALL)
    if extras:
        _merge_reports(
            report,
            engine.drive_instances(
                system, extras, INACTIVE, reverse=True,
                policy=policy, jobs=jobs, jobs_per_host=jobs_per_host,
            ),
        )
        _merge_reports(
            report,
            engine.drive_instances(
                system, extras, UNINSTALLED, reverse=True,
                policy=policy, jobs=jobs, jobs_per_host=jobs_per_host,
            ),
        )

    for machine_id in plan.instances(RepairOp.REPROVISION):
        _replace_machine(system, machine_id, journal)

    # Delta up-phase ops share the redeploy mechanics: after the down
    # phase has run, install/upgrade/reconfigure are all "drive to the
    # target through the normal state-machine path".
    redeploy = [
        step.instance_id
        for step in plan.steps
        if step.op in (
            RepairOp.REDEPLOY, RepairOp.INSTALL,
            RepairOp.UPGRADE, RepairOp.RECONFIGURE,
        )
    ]
    if redeploy:
        _merge_reports(
            report,
            engine.drive_instances(
                system, redeploy, plan.target,
                policy=policy, journal=journal,
                jobs=jobs, jobs_per_host=jobs_per_host,
            ),
        )

    for instance_id in plan.instances(RepairOp.RESTART):
        driver = system.driver(instance_id)
        if driver.state != ACTIVE:
            continue  # repaired away by an earlier step this round
        transition = driver.machine_spec.find(ACTIVE, "restart")
        engine._check_guard(system, instance_id, transition)
        engine._perform_with_retry(
            system, instance_id, transition, report,
            policy=policy, journal=journal,
        )

    return report


@dataclass
class ReconcileRound:
    """What one poll-plan-repair round observed and did."""

    index: int
    started_at: float
    finished_at: float
    drift_items: int
    drift_by_kind: dict[str, int]
    plan_size: int
    plan_by_op: dict[str, int]
    repaired: bool
    converged: bool
    error: Optional[str] = None
    #: Instances re-derived through the constraint solver this round.
    reconfigured: int = 0

    @property
    def time_to_repair(self) -> float:
        """Simulated seconds from drift observation to repaired world
        (0.0 for rounds that found no drift)."""
        return self.finished_at - self.started_at if self.drift_items else 0.0

    def to_payload(self) -> dict:
        return {
            "index": self.index,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "drift_items": self.drift_items,
            "drift_by_kind": dict(self.drift_by_kind),
            "plan_size": self.plan_size,
            "plan_by_op": dict(self.plan_by_op),
            "repaired": self.repaired,
            "converged": self.converged,
            "error": self.error,
            "reconfigured": self.reconfigured,
            "time_to_repair_s": self.time_to_repair,
        }


@dataclass
class ReconcileResult:
    """The outcome of a multi-round reconcile run."""

    rounds: list[ReconcileRound]

    @property
    def converged(self) -> bool:
        return bool(self.rounds) and self.rounds[-1].converged

    @property
    def rounds_with_drift(self) -> int:
        return sum(1 for r in self.rounds if r.drift_items)

    @property
    def median_time_to_repair(self) -> float:
        samples = [r.time_to_repair for r in self.rounds if r.drift_items]
        return statistics.median(samples) if samples else 0.0

    def to_payload(self) -> dict:
        return {
            "converged": self.converged,
            "rounds_with_drift": self.rounds_with_drift,
            "median_time_to_repair_s": self.median_time_to_repair,
            "rounds": [r.to_payload() for r in self.rounds],
        }


class ReconcileController:
    """The autonomic loop: poll for drift, plan minimally, repair,
    re-check -- on the simulated clock, round after round.

    ``goal`` defaults to the deployed spec and ``journal`` to the
    system's write-ahead journal.  When a ``session``/``goal_partial``
    pair is given, every round with redeploys first re-derives the
    affected hypergraph components through the cached incremental
    solver and insists the result still matches the goal -- catching
    configuration drift (a mutated goal spec) before acting on it.
    """

    def __init__(
        self,
        engine: DeploymentEngine,
        system: DeployedSystem,
        *,
        goal: Optional[InstallSpec] = None,
        journal: Optional[DeploymentJournal] = None,
        policy: Optional[RetryPolicy] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
        interval: float = 30.0,
        session=None,
        goal_partial=None,
    ) -> None:
        if (session is None) != (goal_partial is None):
            raise RuntimeEngageError(
                "goal revalidation needs both a ConfigurationSession and "
                "the goal's partial spec (or neither)"
            )
        if interval < 0:
            raise RuntimeEngageError("reconcile interval must be >= 0")
        self.engine = engine
        self.system = system
        self.goal = goal if goal is not None else system.spec
        self.journal = journal if journal is not None else system.journal
        self.policy = policy
        self.jobs = jobs
        self.jobs_per_host = jobs_per_host
        self.interval = interval
        self.session = session
        self.goal_partial = goal_partial
        self.target = (
            self.journal.target if self.journal is not None else ACTIVE
        )
        self.rounds: list[ReconcileRound] = []

    # -- One round -------------------------------------------------------

    def _revalidate_goal(self, plan: TransitionPlan) -> int:
        """Re-derive the components behind this round's redeploys and
        check them against the goal; returns how many instances were
        re-validated.  A mismatch means the goal spec was corrupted
        since configuration -- repairing toward it would deploy a
        system the solver never approved, so fail loudly instead."""
        affected = plan.instances(RepairOp.REDEPLOY)
        if self.session is None or not affected:
            return 0
        try:
            return self.session.revalidate_instances(
                self.goal_partial, self.goal, affected
            )
        except ConfigurationError as exc:
            if "goal drift" not in str(exc):
                raise
            raise RuntimeEngageError(str(exc)) from exc

    def poll(self) -> ReconcileRound:
        """One reconcile round: detect, plan, (re-validate,) repair,
        re-detect.  Execution failures are captured on the round (the
        loop keeps running; the next round re-plans from the journal's
        consistent frontier) -- goal drift raises."""
        clock = self.system.infrastructure.clock
        tracer = self.system.infrastructure.tracer
        index = len(self.rounds)
        started = clock.now
        drift = detect_drift(self.system, goal=self.goal, target=self.target)
        plan = plan_repair(self.system, drift, goal=self.goal)
        reconfigured = self._revalidate_goal(plan)
        error: Optional[str] = None
        repaired = False
        if not plan.is_noop:
            try:
                execute_plan(
                    self.engine, self.system, plan,
                    policy=self.policy, journal=self.journal,
                    jobs=self.jobs, jobs_per_host=self.jobs_per_host,
                )
                repaired = True
            except DeploymentError as exc:
                error = str(exc)
        if plan.is_noop and error is None:
            after = drift
        else:
            after = detect_drift(
                self.system, goal=self.goal, target=self.target
            )
        finished = clock.now
        round_ = ReconcileRound(
            index=index,
            started_at=started,
            finished_at=finished,
            drift_items=len(drift.items),
            drift_by_kind=drift.by_kind(),
            plan_size=len(plan),
            plan_by_op=plan.by_op(),
            repaired=repaired,
            converged=after.is_converged,
            error=error,
            reconfigured=reconfigured,
        )
        self.rounds.append(round_)
        if tracer is not None:
            tracer.span(
                f"round[{index}]", category="reconcile",
                start=started, duration=finished - started,
                lane="reconcile", drift=len(drift.items),
                plan=len(plan), converged=after.is_converged,
                **({"error": error} if error else {}),
            )
            metrics = tracer.metrics
            metrics.counter("reconcile.rounds").inc()
            if drift.items:
                metrics.counter("reconcile.drift_items").inc(
                    len(drift.items)
                )
                metrics.counter("reconcile.repairs").inc(len(plan))
                metrics.histogram("reconcile.time_to_repair_s").observe(
                    round_.time_to_repair
                )
        return round_

    # -- The loop --------------------------------------------------------

    def run(self, *, rounds: int = 1, churn=None) -> ReconcileResult:
        """Run ``rounds`` polls, ``interval`` simulated seconds apart.

        ``churn`` is an optional :class:`~repro.sim.faults.MachineChurn`
        whose :meth:`round <repro.sim.faults.MachineChurn.round>` fires
        between the wait and the poll -- the chaos-soak entry point.
        """
        for _ in range(rounds):
            clock = self.system.infrastructure.clock
            if self.interval:
                clock.advance(self.interval, "reconcile-wait")
            if churn is not None:
                churn.round(len(self.rounds))
            self.poll()
        return ReconcileResult(list(self.rounds))
