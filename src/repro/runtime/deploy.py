"""The deployment engine (S5.2).

"Given a full installation specification, the deployment engine executes
commands on the resource drivers for each resource instance in the
specification such that every driver state machine is in its active
state.  At this point, the system is defined to be deployed."

Instances are processed in dependency order; before every transition the
engine checks the transition's guard against the tracked states of the
upstream and downstream neighbours, exactly as the runtime system of the
paper does.  Execution is delegated to :mod:`repro.runtime.scheduler`:
the default serial strategy walks the order one instance at a time and
reports the *counterfactual* critical-path makespan, while ``jobs=N``
selects the event-driven DAG scheduler -- a ready queue dispatched to a
bounded pool of simulated workers, so "the process can be performed in
parallel, as long as the dependency ordering is met" becomes measured
wall-clock rather than a post-hoc formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.errors import (
    ActionTimeout,
    DeploymentError,
    GuardError,
    TransientError,
)
from repro.core.instances import InstallSpec, ResourceInstance
from repro.core.registry import ResourceTypeRegistry
from repro.drivers.base import DriverContext, DriverRegistry, ResourceDriver
from repro.drivers.library import MachineDriver, NullDriver
from repro.drivers.state_machine import ACTIVE, INACTIVE, UNINSTALLED
from repro.runtime.journal import DeploymentJournal, JournalEntry
from repro.runtime.retry import RetryPolicy
from repro.sim.infrastructure import Infrastructure
from repro.sim.machine import Machine, OsIdentity


def standard_driver_registry() -> DriverRegistry:
    """A registry pre-loaded with the generic drivers."""
    from repro.drivers.library import ArchiveDriver, PackageDriver, ServiceDriver

    registry = DriverRegistry()
    registry.register("null", NullDriver)
    registry.register("machine", MachineDriver)
    registry.register("package", PackageDriver)
    registry.register("archive", ArchiveDriver)
    registry.register("service", ServiceDriver)
    return registry


@dataclass
class ActionRecord:
    """One driver action *attempt* executed during deployment.

    With a retry policy in force an action may appear several times for
    the same (instance, action) pair: one record per attempt, each
    carrying the attempt number, its outcome (``"ok"``,
    ``"transient-error"``, ``"timeout"``, or ``"error"``), the backoff
    the engine waited after a retryable failure, and the error text --
    so reports show exactly what recovery cost.
    """

    instance_id: str
    action: str
    started_at: float
    duration: float
    attempt: int = 1
    outcome: str = "ok"
    backoff_seconds: float = 0.0
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.outcome == "ok"


@dataclass
class DeploymentReport:
    """What a deploy/stop/uninstall pass did and what it cost.

    ``makespan_seconds`` is the counterfactual critical-path bound in
    serial mode and the *measured* event-clock wall-time in parallel
    mode (``jobs`` set); ``critical_path_seconds`` carries the bound in
    both, so the two are directly comparable.
    """

    actions: list[ActionRecord] = field(default_factory=list)
    sequential_seconds: float = 0.0
    makespan_seconds: float = 0.0
    critical_path_seconds: float = 0.0
    #: Worker bound of the pass: None = serial, 0 = unbounded parallel.
    jobs: Optional[int] = None

    def __post_init__(self) -> None:
        self._indexed_count = -1
        self._by_instance: dict[str, list[ActionRecord]] = {}
        self._failed_attempts = 0
        self._backoff_total = 0.0

    def _reindex(self) -> None:
        """(Re)build the per-instance index and the attempt counters.

        Keyed on ``len(actions)`` so appends (including merged reports)
        invalidate lazily; repeated reads between mutations are O(1)
        instead of rescanning the action list per call.
        """
        if self._indexed_count == len(self.actions):
            return
        by_instance: dict[str, list[ActionRecord]] = {}
        failed = 0
        backoff = 0.0
        for action in self.actions:
            by_instance.setdefault(action.instance_id, []).append(action)
            if not action.succeeded:
                failed += 1
            backoff += action.backoff_seconds
        self._by_instance = by_instance
        self._failed_attempts = failed
        self._backoff_total = backoff
        self._indexed_count = len(self.actions)

    def invalidate_caches(self) -> None:
        """Force a reindex after in-place mutation (e.g. sorting)."""
        self._indexed_count = -1

    def actions_for(self, instance_id: str) -> list[ActionRecord]:
        self._reindex()
        return list(self._by_instance.get(instance_id, ()))

    @property
    def retries(self) -> int:
        """How many action attempts failed (and so were retried or
        aborted the run)."""
        self._reindex()
        return self._failed_attempts

    @property
    def total_backoff_seconds(self) -> float:
        self._reindex()
        return self._backoff_total


class DeployedSystem:
    """A deployed application: the spec plus live driver state."""

    def __init__(
        self,
        spec: InstallSpec,
        registry: ResourceTypeRegistry,
        infrastructure: Infrastructure,
        drivers: dict[str, ResourceDriver],
        machines: dict[str, Machine],
    ) -> None:
        self.spec = spec
        self.registry = registry
        self.infrastructure = infrastructure
        self.drivers = drivers
        self.machines = machines
        self.report: Optional[DeploymentReport] = None
        self.journal: Optional[DeploymentJournal] = None

    def driver(self, instance_id: str) -> ResourceDriver:
        return self.drivers[instance_id]

    def state_of(self, instance_id: str) -> str:
        return self.drivers[instance_id].state

    def states(self) -> dict[str, str]:
        return {iid: d.state for iid, d in self.drivers.items()}

    def is_deployed(self) -> bool:
        return all(d.state == ACTIVE for d in self.drivers.values())

    def machine_for(self, instance_id: str) -> Machine:
        machine_instance_id = self.spec[instance_id].machine_id(self.spec)
        return self.machines[machine_instance_id]

    def describe(self) -> str:
        """A human-readable status report (the `engage status` view)."""
        lines = ["instance          type                         state"]
        for instance in self.spec.topological_order():
            lines.append(
                f"{instance.id:<17} {str(instance.key):<28} "
                f"{self.state_of(instance.id)}"
            )
        processes = sum(
            len(machine.running_processes())
            for machine in set(self.machines.values())
        )
        lines.append(
            f"-- {len(self.spec)} instances on "
            f"{len(set(self.machines.values()))} machine(s), "
            f"{processes} running process(es)"
        )
        return "\n".join(lines)


class DeploymentEngine:
    """Drives every resource driver to its target basic state in
    dependency order, with guard checking."""

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        infrastructure: Infrastructure,
        driver_registry: Optional[DriverRegistry] = None,
    ) -> None:
        self.registry = registry
        self.infrastructure = infrastructure
        self.driver_registry = driver_registry or standard_driver_registry()

    # -- Deploy ------------------------------------------------------------

    def deploy(
        self,
        spec: InstallSpec,
        *,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[DeploymentJournal] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> DeployedSystem:
        """Install, configure, and start everything; returns the deployed
        system with every driver in ``active``.

        ``policy`` governs retries of failing driver actions.  Every
        completed transition is appended to a write-ahead journal; on
        fatal failure the run stops at a consistent frontier and raises
        :class:`~repro.core.errors.DeploymentFailure` carrying the
        journal, from which :meth:`resume` can finish the job.

        ``jobs`` selects the event-driven parallel scheduler with that
        many simulated workers (``0`` = unbounded); ``jobs_per_host``
        additionally bounds concurrency per target machine.  ``None``
        (the default) keeps the serial strategy.
        """
        machines = self._resolve_machines(spec)
        drivers = self._create_drivers(spec, machines)
        system = DeployedSystem(
            spec, self.registry, self.infrastructure, drivers, machines
        )
        if journal is None:
            journal = DeploymentJournal(spec, target=ACTIVE)
        system.journal = journal
        system.report = self._drive(
            system, ACTIVE, reverse=False, policy=policy, journal=journal,
            jobs=jobs, jobs_per_host=jobs_per_host,
        )
        return system

    def resume(
        self,
        journal: DeploymentJournal,
        *,
        policy: Optional[RetryPolicy] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> DeployedSystem:
        """Finish an interrupted deployment from its journal.

        Re-adopts the journal's frontier against this engine's
        infrastructure (reattaching the processes of already-active
        services, exactly like :func:`repro.runtime.state.load_system`)
        and drives only the remaining work; already-completed instances
        no-op.  Frontiers left by a parallel pass (completed instances
        scattered across independent branches, not a topological prefix)
        re-adopt the same way.  Raises :class:`DeploymentFailure` again
        if the remaining work fails too.

        A journal carrying a :class:`~repro.runtime.journal
        .SpecTransition` record was interrupted mid-way through a delta
        transition's down phase: the old spec's remaining stop/
        uninstall work is completed first (under the old spec's own
        drivers -- uninstalling the *old* version, not the new one),
        the vacated machines retire, and only then does the up phase
        resume under the journal's spec.
        """
        from repro.runtime.state import adopt_states

        if journal.transition is not None:
            from repro.runtime.delta import complete_down_phase

            complete_down_phase(
                self, journal,
                policy=policy, jobs=jobs, jobs_per_host=jobs_per_host,
            )

        system = self.prepare(journal.spec)
        adopt_states(system, journal.states(), partial=True)
        journal.reset_frontier()
        system.journal = journal
        system.report = self._drive(
            system,
            journal.target,
            reverse=False,
            policy=policy,
            journal=journal,
            jobs=jobs,
            jobs_per_host=jobs_per_host,
        )
        return system

    def _resolve_machines(self, spec: InstallSpec) -> dict[str, Machine]:
        """Map machine instances to simulated machines, creating any that
        provisioning has not already placed on the network."""
        machines: dict[str, Machine] = {}
        for instance in spec.machines():
            hostname = instance.config.get("hostname")
            if not hostname:
                host_record = instance.outputs.get("host")
                if isinstance(host_record, dict):
                    hostname = host_record.get("hostname")
            if not hostname:
                raise DeploymentError(
                    f"machine instance {instance.id!r} has no hostname; "
                    "run provisioning first"
                )
            network = self.infrastructure.network
            if network.has_machine(hostname):
                machines[instance.id] = network.machine(hostname)
            else:
                machines[instance.id] = self.infrastructure.add_machine(
                    hostname,
                    str(instance.config.get("os_name", "ubuntu-linux")),
                    str(instance.config.get("os_version", "10.04")),
                )
        return machines

    def _create_drivers(
        self, spec: InstallSpec, machines: dict[str, Machine]
    ) -> dict[str, ResourceDriver]:
        drivers: dict[str, ResourceDriver] = {}
        for instance in spec:
            resource_type = self.registry.effective(instance.key)
            machine = machines[instance.machine_id(spec)]
            context = DriverContext(
                instance=instance,
                resource_type=resource_type,
                machine=machine,
                infrastructure=self.infrastructure,
                spec=spec,
            )
            if instance.is_machine():
                driver: ResourceDriver = MachineDriver(context)
            else:
                driver = self.driver_registry.create(
                    resource_type.driver_name, context
                )
            drivers[instance.id] = driver
        return drivers

    # -- State transitions ---------------------------------------------------

    def _drive(
        self,
        system: DeployedSystem,
        target: str,
        *,
        reverse: bool,
        only: Optional[set[str]] = None,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[DeploymentJournal] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> DeploymentReport:
        """Drive instances (all, or just ``only``) to ``target`` in
        (reverse) dependency order.

        Execution strategy lives in :mod:`repro.runtime.scheduler`:
        serial fail-fast when ``jobs`` is None, the event-driven DAG
        scheduler otherwise.
        """
        from repro.runtime.scheduler import DagScheduler, execute_serial

        if jobs is None and jobs_per_host is None:
            return execute_serial(
                self, system, target, reverse=reverse, only=only,
                policy=policy, journal=journal,
            )
        return DagScheduler(
            self, system, target, reverse=reverse, only=only,
            policy=policy, journal=journal,
            jobs=jobs, jobs_per_host=jobs_per_host,
        ).run()

    def _drive_instance(
        self,
        system: DeployedSystem,
        instance_id: str,
        target: str,
        report: DeploymentReport,
        *,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[DeploymentJournal] = None,
    ) -> None:
        driver = system.driver(instance_id)
        path = driver.machine_spec.path_to(driver.state, target)
        for transition in path:
            self._check_guard(system, instance_id, transition)
            self._perform_with_retry(
                system, instance_id, transition, report,
                policy=policy, journal=journal,
            )
        if journal is not None and journal.target == target:
            journal.mark_completed(instance_id)
            tracer = self.infrastructure.tracer
            if tracer is not None:
                tracer.instant(
                    "completed", category="journal",
                    timestamp=self.infrastructure.clock.now,
                    lane=system.machine_for(instance_id).hostname,
                    instance=instance_id,
                )

    def _perform_with_retry(
        self,
        system: DeployedSystem,
        instance_id: str,
        transition,
        report: DeploymentReport,
        *,
        policy: Optional[RetryPolicy],
        journal: Optional[DeploymentJournal],
    ) -> None:
        """One transition, up to ``policy.max_attempts`` times, with
        exponential backoff between retryable failures.  Appends one
        :class:`ActionRecord` per attempt; journals only success."""
        driver = system.driver(instance_id)
        clock = self.infrastructure.clock
        tracer = self.infrastructure.tracer
        attempts = policy.max_attempts if policy is not None else 1
        timeout = policy.action_timeout if policy is not None else None
        for attempt in range(1, attempts + 1):
            started = clock.now
            try:
                driver.perform(transition.action, timeout=timeout)
            except Exception as exc:
                duration = clock.now - started
                if isinstance(exc, ActionTimeout):
                    outcome = "timeout"
                elif isinstance(exc, TransientError):
                    outcome = "transient-error"
                else:
                    outcome = "error"
                retrying = (
                    policy is not None
                    and attempt < attempts
                    and policy.is_retryable(exc)
                )
                backoff = 0.0
                if retrying:
                    backoff = policy.backoff_seconds(
                        attempt, instance_id, transition.action
                    )
                    if backoff > 0.0:
                        clock.advance(
                            backoff,
                            f"backoff:{instance_id}:{transition.action}",
                        )
                record = ActionRecord(
                    instance_id=instance_id,
                    action=transition.action,
                    started_at=started,
                    duration=duration,
                    attempt=attempt,
                    outcome=outcome,
                    backoff_seconds=backoff,
                    error=str(exc),
                )
                report.actions.append(record)
                if tracer is not None:
                    self._trace_attempt(tracer, system, record)
                if retrying:
                    continue
                raise DeploymentError(
                    f"action {transition.action!r} failed on "
                    f"{instance_id!r} (attempt {attempt} of {attempts}): "
                    f"{exc}"
                ) from exc
            record = ActionRecord(
                instance_id=instance_id,
                action=transition.action,
                started_at=started,
                duration=clock.now - started,
                attempt=attempt,
            )
            report.actions.append(record)
            if tracer is not None:
                self._trace_attempt(tracer, system, record)
            if journal is not None:
                journal.record(
                    JournalEntry(
                        instance_id=instance_id,
                        action=transition.action,
                        source=transition.source,
                        target=transition.target,
                        timestamp=clock.now,
                    )
                )
                if tracer is not None:
                    tracer.instant(
                        "record", category="journal", timestamp=clock.now,
                        lane=system.machine_for(instance_id).hostname,
                        instance=instance_id, action=transition.action,
                        target=transition.target,
                    )
            return

    def _trace_attempt(
        self, tracer, system: DeployedSystem, record: ActionRecord
    ) -> None:
        """One span per action attempt (plus a backoff span when the
        policy waited), on the target machine's lane, mirroring the
        :class:`ActionRecord` one-to-one."""
        lane = system.machine_for(record.instance_id).hostname
        args = {
            "instance": record.instance_id,
            "attempt": record.attempt,
            "outcome": record.outcome,
        }
        if record.error is not None:
            args["error"] = record.error
        tracer.span(
            record.action, category="action", start=record.started_at,
            duration=record.duration, lane=lane, **args,
        )
        metrics = tracer.metrics
        metrics.counter("deploy.actions").inc()
        if not record.succeeded:
            metrics.counter("deploy.failed_attempts").inc()
        if record.backoff_seconds > 0.0:
            metrics.histogram("deploy.backoff_seconds").observe(
                record.backoff_seconds
            )
            tracer.span(
                "backoff", category="backoff",
                start=record.started_at + record.duration,
                duration=record.backoff_seconds, lane=lane,
                instance=record.instance_id, action=record.action,
                attempt=record.attempt,
            )

    def _check_guard(
        self, system: DeployedSystem, instance_id: str, transition
    ) -> None:
        upstream = [
            system.state_of(u)
            for u in system.spec[instance_id].upstream_ids()
        ]
        downstream = [
            system.state_of(d)
            for d in system.spec.downstream_ids(instance_id)
        ]
        if not transition.guard_holds(upstream, downstream):
            raise GuardError(
                f"guard of {transition} not satisfied for {instance_id!r} "
                f"(upstream={upstream}, downstream={downstream})"
            )

    # -- Partial operations (used by upgrades and the reconcile loop) -----

    def drive_instances(
        self,
        system: DeployedSystem,
        instance_ids: Iterable[str],
        target: str,
        *,
        reverse: bool = False,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[DeploymentJournal] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> DeploymentReport:
        """Drive just ``instance_ids`` to ``target``: the delta-repair
        entry point.

        The reconcile planner computes a minimal instance set and this
        method executes it through the regular serial/DAG machinery --
        guards, retries, and write-ahead journalling included.  Guards
        are checked against the *global* state, so instances outside the
        set safely anchor the guards of those inside it."""
        return self._drive(
            system, target, reverse=reverse, only=set(instance_ids),
            policy=policy, journal=journal,
            jobs=jobs, jobs_per_host=jobs_per_host,
        )

    def prepare(
        self,
        spec: InstallSpec,
        reuse_drivers: Optional[dict[str, ResourceDriver]] = None,
    ) -> DeployedSystem:
        """Build a :class:`DeployedSystem` without performing any actions.

        ``reuse_drivers`` carries live drivers (with their current state
        and processes) over from a previous system for instances that
        are unchanged -- the heart of in-place upgrades.
        """
        machines = self._resolve_machines(spec)
        drivers = self._create_drivers(spec, machines)
        for instance_id, old_driver in (reuse_drivers or {}).items():
            if instance_id not in drivers:
                continue
            # Keep the old driver's state/process but point it at the
            # fresh instance and spec.
            old_driver.context.instance = spec[instance_id]
            old_driver.context.spec = spec
            drivers[instance_id] = old_driver
        return DeployedSystem(
            spec, self.registry, self.infrastructure, drivers, machines
        )

    def stop_instances(
        self,
        system: DeployedSystem,
        instance_ids: set[str],
        *,
        policy: Optional[RetryPolicy] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> DeploymentReport:
        """Drive just ``instance_ids`` to ``inactive``, in reverse
        dependency order, with guard checking."""
        return self._drive(
            system, INACTIVE, reverse=True, only=set(instance_ids),
            policy=policy, jobs=jobs, jobs_per_host=jobs_per_host,
        )

    def uninstall_instances(
        self,
        system: DeployedSystem,
        instance_ids: set[str],
        *,
        policy: Optional[RetryPolicy] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> DeploymentReport:
        """Drive just ``instance_ids`` to ``uninstalled`` (they must
        already be inactive), in reverse dependency order."""
        return self._drive(
            system, UNINSTALLED, reverse=True, only=set(instance_ids),
            policy=policy, jobs=jobs, jobs_per_host=jobs_per_host,
        )

    def activate(
        self,
        system: DeployedSystem,
        *,
        policy: Optional[RetryPolicy] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> DeploymentReport:
        """Drive everything to ``active``; already-active drivers no-op."""
        report = self._drive(
            system, ACTIVE, reverse=False, policy=policy,
            jobs=jobs, jobs_per_host=jobs_per_host,
        )
        system.report = report
        return report

    # -- Management operations --------------------------------------------------

    def shutdown(
        self,
        system: DeployedSystem,
        *,
        policy: Optional[RetryPolicy] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> DeploymentReport:
        """Stop all services in reverse dependency order (S5.2)."""
        return self._drive(
            system, INACTIVE, reverse=True, policy=policy,
            jobs=jobs, jobs_per_host=jobs_per_host,
        )

    def start(
        self,
        system: DeployedSystem,
        *,
        policy: Optional[RetryPolicy] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> DeploymentReport:
        """(Re)start everything in dependency order."""
        return self._drive(
            system, ACTIVE, reverse=False, policy=policy,
            jobs=jobs, jobs_per_host=jobs_per_host,
        )

    def uninstall(
        self,
        system: DeployedSystem,
        *,
        policy: Optional[RetryPolicy] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> DeploymentReport:
        """Stop and uninstall everything, reverse dependency order."""
        report = self._drive(
            system, INACTIVE, reverse=True, policy=policy,
            jobs=jobs, jobs_per_host=jobs_per_host,
        )
        removal = self._drive(
            system, UNINSTALLED, reverse=True, policy=policy,
            jobs=jobs, jobs_per_host=jobs_per_host,
        )
        report.actions.extend(removal.actions)
        report.sequential_seconds += removal.sequential_seconds
        report.makespan_seconds += removal.makespan_seconds
        report.critical_path_seconds += removal.critical_path_seconds
        return report
