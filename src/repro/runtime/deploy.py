"""The deployment engine (S5.2).

"Given a full installation specification, the deployment engine executes
commands on the resource drivers for each resource instance in the
specification such that every driver state machine is in its active
state.  At this point, the system is defined to be deployed."

Instances are processed in dependency order; before every transition the
engine checks the transition's guard against the tracked states of the
upstream and downstream neighbours, exactly as the runtime system of the
paper does.  Besides the sequential simulated cost, the engine records
per-instance durations and computes the *critical-path makespan* -- the
wall-clock a maximally parallel deployment would need ("the process can
be performed in parallel, as long as the dependency ordering is met").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import DeploymentError, GuardError
from repro.core.instances import InstallSpec, ResourceInstance
from repro.core.registry import ResourceTypeRegistry
from repro.drivers.base import DriverContext, DriverRegistry, ResourceDriver
from repro.drivers.library import MachineDriver, NullDriver
from repro.drivers.state_machine import ACTIVE, INACTIVE, UNINSTALLED
from repro.sim.infrastructure import Infrastructure
from repro.sim.machine import Machine, OsIdentity


def standard_driver_registry() -> DriverRegistry:
    """A registry pre-loaded with the generic drivers."""
    from repro.drivers.library import ArchiveDriver, PackageDriver, ServiceDriver

    registry = DriverRegistry()
    registry.register("null", NullDriver)
    registry.register("machine", MachineDriver)
    registry.register("package", PackageDriver)
    registry.register("archive", ArchiveDriver)
    registry.register("service", ServiceDriver)
    return registry


@dataclass
class ActionRecord:
    """One driver action executed during deployment."""

    instance_id: str
    action: str
    started_at: float
    duration: float


@dataclass
class DeploymentReport:
    """What a deploy/stop/uninstall pass did and what it cost."""

    actions: list[ActionRecord] = field(default_factory=list)
    sequential_seconds: float = 0.0
    makespan_seconds: float = 0.0

    def actions_for(self, instance_id: str) -> list[ActionRecord]:
        return [a for a in self.actions if a.instance_id == instance_id]


class DeployedSystem:
    """A deployed application: the spec plus live driver state."""

    def __init__(
        self,
        spec: InstallSpec,
        registry: ResourceTypeRegistry,
        infrastructure: Infrastructure,
        drivers: dict[str, ResourceDriver],
        machines: dict[str, Machine],
    ) -> None:
        self.spec = spec
        self.registry = registry
        self.infrastructure = infrastructure
        self.drivers = drivers
        self.machines = machines
        self.report: Optional[DeploymentReport] = None

    def driver(self, instance_id: str) -> ResourceDriver:
        return self.drivers[instance_id]

    def state_of(self, instance_id: str) -> str:
        return self.drivers[instance_id].state

    def states(self) -> dict[str, str]:
        return {iid: d.state for iid, d in self.drivers.items()}

    def is_deployed(self) -> bool:
        return all(d.state == ACTIVE for d in self.drivers.values())

    def machine_for(self, instance_id: str) -> Machine:
        machine_instance_id = self.spec[instance_id].machine_id(self.spec)
        return self.machines[machine_instance_id]

    def describe(self) -> str:
        """A human-readable status report (the `engage status` view)."""
        lines = ["instance          type                         state"]
        for instance in self.spec.topological_order():
            lines.append(
                f"{instance.id:<17} {str(instance.key):<28} "
                f"{self.state_of(instance.id)}"
            )
        processes = sum(
            len(machine.running_processes())
            for machine in set(self.machines.values())
        )
        lines.append(
            f"-- {len(self.spec)} instances on "
            f"{len(set(self.machines.values()))} machine(s), "
            f"{processes} running process(es)"
        )
        return "\n".join(lines)


class DeploymentEngine:
    """Drives every resource driver to its target basic state in
    dependency order, with guard checking."""

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        infrastructure: Infrastructure,
        driver_registry: Optional[DriverRegistry] = None,
    ) -> None:
        self.registry = registry
        self.infrastructure = infrastructure
        self.driver_registry = driver_registry or standard_driver_registry()

    # -- Deploy ------------------------------------------------------------

    def deploy(self, spec: InstallSpec) -> DeployedSystem:
        """Install, configure, and start everything; returns the deployed
        system with every driver in ``active``."""
        machines = self._resolve_machines(spec)
        drivers = self._create_drivers(spec, machines)
        system = DeployedSystem(
            spec, self.registry, self.infrastructure, drivers, machines
        )
        system.report = self._drive_all(system, ACTIVE, reverse=False)
        return system

    def _resolve_machines(self, spec: InstallSpec) -> dict[str, Machine]:
        """Map machine instances to simulated machines, creating any that
        provisioning has not already placed on the network."""
        machines: dict[str, Machine] = {}
        for instance in spec.machines():
            hostname = instance.config.get("hostname")
            if not hostname:
                host_record = instance.outputs.get("host")
                if isinstance(host_record, dict):
                    hostname = host_record.get("hostname")
            if not hostname:
                raise DeploymentError(
                    f"machine instance {instance.id!r} has no hostname; "
                    "run provisioning first"
                )
            network = self.infrastructure.network
            if network.has_machine(hostname):
                machines[instance.id] = network.machine(hostname)
            else:
                machines[instance.id] = self.infrastructure.add_machine(
                    hostname,
                    str(instance.config.get("os_name", "ubuntu-linux")),
                    str(instance.config.get("os_version", "10.04")),
                )
        return machines

    def _create_drivers(
        self, spec: InstallSpec, machines: dict[str, Machine]
    ) -> dict[str, ResourceDriver]:
        drivers: dict[str, ResourceDriver] = {}
        for instance in spec:
            resource_type = self.registry.effective(instance.key)
            machine = machines[instance.machine_id(spec)]
            context = DriverContext(
                instance=instance,
                resource_type=resource_type,
                machine=machine,
                infrastructure=self.infrastructure,
                spec=spec,
            )
            if instance.is_machine():
                driver: ResourceDriver = MachineDriver(context)
            else:
                driver = self.driver_registry.create(
                    resource_type.driver_name, context
                )
            drivers[instance.id] = driver
        return drivers

    # -- State transitions ---------------------------------------------------

    def _drive_all(
        self, system: DeployedSystem, target: str, *, reverse: bool
    ) -> DeploymentReport:
        report = DeploymentReport()
        order = system.spec.topological_order()
        if reverse:
            order = list(reversed(order))
        finish_times: dict[str, float] = {}
        for instance in order:
            started = self.infrastructure.clock.now
            self._drive_instance(system, instance.id, target, report)
            duration = self.infrastructure.clock.now - started
            neighbour_finishes = [
                finish_times.get(other, 0.0)
                for other in (
                    system.spec.downstream_ids(instance.id)
                    if reverse
                    else instance.upstream_ids()
                )
            ]
            earliest = max(neighbour_finishes, default=0.0)
            finish_times[instance.id] = earliest + duration
        report.sequential_seconds = sum(a.duration for a in report.actions)
        report.makespan_seconds = max(finish_times.values(), default=0.0)
        return report

    def _drive_instance(
        self,
        system: DeployedSystem,
        instance_id: str,
        target: str,
        report: DeploymentReport,
    ) -> None:
        driver = system.driver(instance_id)
        path = driver.machine_spec.path_to(driver.state, target)
        for transition in path:
            self._check_guard(system, instance_id, transition)
            started = self.infrastructure.clock.now
            try:
                driver.perform(transition.action)
            except Exception as exc:
                raise DeploymentError(
                    f"action {transition.action!r} failed on "
                    f"{instance_id!r}: {exc}"
                ) from exc
            report.actions.append(
                ActionRecord(
                    instance_id=instance_id,
                    action=transition.action,
                    started_at=started,
                    duration=self.infrastructure.clock.now - started,
                )
            )

    def _check_guard(
        self, system: DeployedSystem, instance_id: str, transition
    ) -> None:
        upstream = [
            system.state_of(u)
            for u in system.spec[instance_id].upstream_ids()
        ]
        downstream = [
            system.state_of(d)
            for d in system.spec.downstream_ids(instance_id)
        ]
        if not transition.guard_holds(upstream, downstream):
            raise GuardError(
                f"guard of {transition} not satisfied for {instance_id!r} "
                f"(upstream={upstream}, downstream={downstream})"
            )

    # -- Partial operations (used by the in-place upgrade strategy) -------

    def prepare(
        self,
        spec: InstallSpec,
        reuse_drivers: Optional[dict[str, ResourceDriver]] = None,
    ) -> DeployedSystem:
        """Build a :class:`DeployedSystem` without performing any actions.

        ``reuse_drivers`` carries live drivers (with their current state
        and processes) over from a previous system for instances that
        are unchanged -- the heart of in-place upgrades.
        """
        machines = self._resolve_machines(spec)
        drivers = self._create_drivers(spec, machines)
        for instance_id, old_driver in (reuse_drivers or {}).items():
            if instance_id not in drivers:
                continue
            # Keep the old driver's state/process but point it at the
            # fresh instance and spec.
            old_driver.context.instance = spec[instance_id]
            old_driver.context.spec = spec
            drivers[instance_id] = old_driver
        return DeployedSystem(
            spec, self.registry, self.infrastructure, drivers, machines
        )

    def stop_instances(
        self, system: DeployedSystem, instance_ids: set[str]
    ) -> DeploymentReport:
        """Drive just ``instance_ids`` to ``inactive``, in reverse
        dependency order, with guard checking."""
        report = DeploymentReport()
        for instance in reversed(system.spec.topological_order()):
            if instance.id in instance_ids:
                self._drive_instance(system, instance.id, INACTIVE, report)
        report.sequential_seconds = sum(a.duration for a in report.actions)
        return report

    def uninstall_instances(
        self, system: DeployedSystem, instance_ids: set[str]
    ) -> DeploymentReport:
        """Drive just ``instance_ids`` to ``uninstalled`` (they must
        already be inactive), in reverse dependency order."""
        report = DeploymentReport()
        for instance in reversed(system.spec.topological_order()):
            if instance.id in instance_ids:
                self._drive_instance(
                    system, instance.id, UNINSTALLED, report
                )
        report.sequential_seconds = sum(a.duration for a in report.actions)
        return report

    def activate(self, system: DeployedSystem) -> DeploymentReport:
        """Drive everything to ``active``; already-active drivers no-op."""
        report = self._drive_all(system, ACTIVE, reverse=False)
        system.report = report
        return report

    # -- Management operations --------------------------------------------------

    def shutdown(self, system: DeployedSystem) -> DeploymentReport:
        """Stop all services in reverse dependency order (S5.2)."""
        return self._drive_all(system, INACTIVE, reverse=True)

    def start(self, system: DeployedSystem) -> DeploymentReport:
        """(Re)start everything in dependency order."""
        return self._drive_all(system, ACTIVE, reverse=False)

    def uninstall(self, system: DeployedSystem) -> DeploymentReport:
        """Stop and uninstall everything, reverse dependency order."""
        report = self._drive_all(system, INACTIVE, reverse=True)
        removal = self._drive_all(system, UNINSTALLED, reverse=True)
        report.actions.extend(removal.actions)
        report.sequential_seconds += removal.sequential_seconds
        report.makespan_seconds += removal.makespan_seconds
        return report
