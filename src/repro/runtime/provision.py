"""Provisioning (S5.2).

Two runtime services from the paper:

* *Server discovery*: "Engage provides a set of runtime tools to
  determine properties of servers, such as hostname, IP address,
  operating system" -- :func:`discover_machine` turns an existing
  simulated machine into partial-instance configuration.
* *Cloud provisioning*: "If a machine resource instance in the partial
  installation specification does not include configuration details, and
  Engage is being run in a cloud environment, a new virtual server is
  provisioned to perform the role of that machine" --
  :func:`provision_partial_spec` walks the partial spec and fills every
  machine instance in, provisioning from the cloud provider when needed.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.errors import ProvisioningError
from repro.core.instances import PartialInstallSpec, PartialInstance
from repro.core.registry import ResourceTypeRegistry
from repro.core.values import PortEnv
from repro.sim.cloud import CloudProvider
from repro.sim.infrastructure import Infrastructure
from repro.sim.machine import Machine


def discover_machine(machine: Machine) -> dict[str, Any]:
    """Configuration values discovered from a live machine's facts."""
    facts = machine.facts()
    return {
        "hostname": facts["hostname"],
        "os_user_name": facts["os_user_name"],
    }


def machine_os_identity(
    registry: ResourceTypeRegistry, instance: PartialInstance
) -> tuple[str, str]:
    """The (os_name, os_version) a machine type stands for.

    Server types in the resource library carry ``os_name``/``os_version``
    config ports whose defaults identify the platform (e.g.
    ``Mac-OSX 10.6`` -> ``("mac-osx", "10.6")``).
    """
    resource_type = registry.effective(instance.key)
    values: dict[str, str] = {}
    for port_name in ("os_name", "os_version"):
        if port_name in instance.config:
            values[port_name] = str(instance.config[port_name])
            continue
        try:
            config_port = resource_type.config_port(port_name)
        except Exception:
            raise ProvisioningError(
                f"machine type {instance.key} declares no {port_name!r} "
                "config port; cannot select an image"
            ) from None
        values[port_name] = str(config_port.default.evaluate(PortEnv()))
    return values["os_name"], values["os_version"]


def provision_partial_spec(
    registry: ResourceTypeRegistry,
    partial: PartialInstallSpec,
    infrastructure: Infrastructure,
    provider: Optional[CloudProvider] = None,
) -> PartialInstallSpec:
    """Fill in machine configuration, provisioning cloud servers on demand.

    Returns a new partial spec in which every machine instance has a
    ``hostname`` naming a live machine on the network.
    """
    provider = provider or infrastructure.default_provider()
    provisioned = PartialInstallSpec()
    for instance in partial:
        resource_type = registry.effective(instance.key)
        if not resource_type.is_machine():
            provisioned.add(instance)
            continue
        config = dict(instance.config)
        hostname = config.get("hostname")
        if hostname and infrastructure.network.has_machine(str(hostname)):
            machine = infrastructure.network.machine(str(hostname))
            discovered = discover_machine(machine)
            for name, value in discovered.items():
                config.setdefault(name, value)
        elif hostname:
            # A named server that is not yet on the network: treat it as a
            # pre-existing on-premises machine and register it.
            os_name, os_version = machine_os_identity(registry, instance)
            infrastructure.add_machine(str(hostname), os_name, os_version)
        else:
            if provider is None:
                raise ProvisioningError(
                    f"machine instance {instance.id!r} has no hostname and "
                    "no cloud provider is configured"
                )
            os_name, os_version = machine_os_identity(registry, instance)
            image = provider.find_image(os_name, os_version)
            machine = provider.provision(image.image_id)
            config.update(discover_machine(machine))
        provisioned.add(
            PartialInstance(
                id=instance.id,
                key=instance.key,
                inside_id=instance.inside_id,
                config=config,
            )
        )
    return provisioned
