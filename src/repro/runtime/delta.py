"""Delta deployment planning: spec-to-spec transitions for live fleets.

The paper's upgrade protocol stops everything, replaces everything, and
restarts everything -- "all upgrades using this approach experience the
worst case upgrade time" (S5.2).  This module treats reconfiguration as
plan synthesis instead: diff the *live* system (drivers + journal +
world) against a newly configured full spec and emit a minimal,
dependency-ordered :class:`~repro.runtime.reconcile.TransitionPlan`
covering the changed-goal case that PR 7's repair planner refuses:

* ``INSTALL`` for instances only the new spec contains (machines
  included -- new hosts register on first touch);
* ``UPGRADE`` / ``RECONFIGURE`` for instances whose key, config, or
  placement changed -- torn down and re-deployed in place;
* ``UNINSTALL`` for instances only the old spec contains, in reverse
  dependency order, and ``RETIRE`` for the machines they vacate;
* ``RESTART`` for unchanged dependents in the stop closure (their
  upstream comes back with fresh endpoints) and for services found
  crashed.

Execution runs through :meth:`DeploymentEngine.drive_instances`, so a
delta transition gets the DAG scheduler, :class:`RetryPolicy`, and the
write-ahead journal that plain upgrades bypass.  The journal carries a
:class:`~repro.runtime.journal.SpecTransition` record while the old
spec's down phase is in flight, so a crash *anywhere* in the transition
resumes with ``deploy --resume`` -- the down phase finishes under the
old spec's drivers, the machines retire, and the up phase completes
under the new spec, exactly where it left off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import DeploymentFailure, RuntimeEngageError
from repro.core.instances import InstallSpec, ResourceInstance
from repro.drivers.state_machine import ACTIVE, INACTIVE, UNINSTALLED
from repro.runtime.deploy import (
    DeployedSystem,
    DeploymentEngine,
    DeploymentReport,
)
from repro.runtime.journal import (
    DeploymentJournal,
    JournalEntry,
    SpecTransition,
)
from repro.runtime.reconcile import (
    RepairOp,
    RepairStep,
    TransitionPlan,
    _merge_reports,
    detect_drift,
)
from repro.runtime.retry import RetryPolicy
from repro.runtime.upgrade import SpecDiff, diff_specs


def _machine_hostname(instance: ResourceInstance) -> Optional[str]:
    """The hostname a machine instance is bound to (config first, then
    the provisioner's output record) -- mirrors
    :meth:`DeploymentEngine._resolve_machines`."""
    hostname = instance.config.get("hostname")
    if not hostname:
        host_record = instance.outputs.get("host")
        if isinstance(host_record, dict):
            hostname = host_record.get("hostname")
    return str(hostname) if hostname else None


@dataclass
class DeltaPlan:
    """A planned spec-to-spec transition, phase by phase.

    ``plan`` is the shared :class:`TransitionPlan` presentation (one
    step per instance, execution order); the phase lists below are what
    :func:`execute_delta` actually drives:

    * ``stop_down`` -- reverse old-spec order: every instance that must
      leave ``active`` before teardown (replaced + removed + their
      dependent closure);
    * ``uninstall_down`` -- reverse old-spec order: replaced + removed;
    * ``retire_hostnames`` -- machines only the old spec wants,
      deregistered after the down phase empties them;
    * ``up`` -- new-spec order: everything not already converged
      (added + replaced + stopped closure + stragglers);
    * ``restart`` -- services whose journal record says converged but
      whose process died: bounced after the up phase.

    ``len(plan)`` counts steps; the elasticity benchmark compares it to
    the fleet size to assert the plan scales with the *diff*.
    """

    plan: TransitionPlan
    old_spec: InstallSpec
    new_spec: InstallSpec
    diff: SpecDiff
    target: str = ACTIVE
    stop_down: list[str] = field(default_factory=list)
    uninstall_down: list[str] = field(default_factory=list)
    retire_hostnames: list[str] = field(default_factory=list)
    up: list[str] = field(default_factory=list)
    restart: list[str] = field(default_factory=list)
    #: Instances re-derived through the warm constraint solver (0 when
    #: planning without a session).
    revalidated: int = 0

    @property
    def is_noop(self) -> bool:
        return self.plan.is_noop

    def __len__(self) -> int:
        return len(self.plan)

    def to_payload(self) -> dict:
        return {
            "target": self.target,
            "noop": self.is_noop,
            "fleet_size": len(self.new_spec),
            "diff": self.diff.to_payload(),
            "plan": self.plan.to_payload(),
            "phases": {
                "stop": list(self.stop_down),
                "uninstall": list(self.uninstall_down),
                "retire": list(self.retire_hostnames),
                "up": list(self.up),
                "restart": list(self.restart),
            },
            "revalidated": self.revalidated,
        }


@dataclass
class DeltaResult:
    """The outcome of an executed delta transition."""

    system: DeployedSystem
    journal: DeploymentJournal
    plan: DeltaPlan
    report: DeploymentReport


def plan_delta(
    system: DeployedSystem,
    new_spec: InstallSpec,
    *,
    target: str = ACTIVE,
    session=None,
    new_partial=None,
) -> DeltaPlan:
    """Diff the live ``system`` against ``new_spec`` and plan the
    minimal transition.

    The definition-level diff (:func:`diff_specs`) decides what is
    added/replaced/removed; the live drift report
    (:func:`detect_drift` with the subset restriction lifted) folds in
    what the world actually looks like -- unchanged instances that
    never converged are re-driven, crashed services restarted.  Lost
    machines are *not* delta work: reconcile repairs the world first,
    then the delta moves it.

    With a ``session``/``new_partial`` pair, every instance the plan
    deploys is first re-derived through the warm per-component solver
    and checked against ``new_spec``
    (:meth:`ConfigurationSession.revalidate_instances`) -- the same
    goal-drift guard the reconcile loop runs before repairing.
    """
    old_spec = system.spec
    diff = diff_specs(old_spec, new_spec)
    drift = detect_drift(system, goal=new_spec, target=target, allow_new=True)
    if drift.lost_machines:
        raise RuntimeEngageError(
            "cannot plan a delta transition over lost machines "
            f"{drift.lost_machines}: reconcile the fleet first "
            "(see repro.runtime.reconcile)"
        )

    old_order = {
        instance.id: index
        for index, instance in enumerate(old_spec.topological_order())
    }
    new_order = {
        instance.id: index
        for index, instance in enumerate(new_spec.topological_order())
    }

    replaced = set(diff.upgraded) | set(diff.reconfigured) | set(diff.moved)
    removed = set(diff.removed)
    teardown = replaced | removed

    # Downstream closure over the OLD spec: stopping a replaced/removed
    # instance requires every dependent inactive first (guards), even
    # dependents that are themselves unchanged.
    closure = set(teardown)
    frontier = list(teardown)
    while frontier:
        current = frontier.pop()
        for dependent in old_spec.downstream_ids(current):
            if dependent not in closure:
                closure.add(dependent)
                frontier.append(dependent)
    stop_only = closure - teardown

    stop_down = sorted(closure, key=lambda iid: old_order[iid], reverse=True)
    uninstall_down = sorted(
        teardown, key=lambda iid: old_order[iid], reverse=True
    )

    new_machine_hosts = {
        _machine_hostname(instance) for instance in new_spec.machines()
    }
    retire_hostnames = sorted(
        hostname
        for instance in old_spec.machines()
        if instance.id in removed
        and (hostname := _machine_hostname(instance)) is not None
        and hostname not in new_machine_hosts
    )

    # Live stragglers: unchanged instances drift says never converged
    # (an interrupted earlier deploy), and crashed-but-converged
    # services.  Replaced/added instances are already planned above.
    missing = set(drift.missing_instances)
    added = set(diff.added)
    stragglers = (missing - added - replaced) - stop_only
    restart_live = sorted(
        iid
        for iid in drift.crashed_services
        if iid not in closure and iid not in added and iid not in missing
    )

    up = sorted(
        added | replaced | stop_only | stragglers,
        key=lambda iid: new_order[iid],
    )

    steps: list[RepairStep] = []
    for iid in uninstall_down:
        if iid in replaced:
            continue  # one UPGRADE/RECONFIGURE step covers the teardown
        if old_spec[iid].is_machine():
            steps.append(
                RepairStep(RepairOp.RETIRE, iid, "machine removed from spec")
            )
        else:
            steps.append(
                RepairStep(RepairOp.UNINSTALL, iid, "removed from spec")
            )
    upgraded = set(diff.upgraded)
    moved = set(diff.moved)
    for iid in sorted(replaced, key=lambda iid: new_order[iid]):
        if iid in upgraded:
            steps.append(
                RepairStep(
                    RepairOp.UPGRADE, iid,
                    f"key changed: {old_spec[iid].key} -> {new_spec[iid].key}",
                )
            )
        elif iid in moved:
            steps.append(
                RepairStep(
                    RepairOp.UPGRADE, iid,
                    "moved: "
                    f"{old_spec[iid].machine_id(old_spec)} -> "
                    f"{new_spec[iid].machine_id(new_spec)}",
                )
            )
        else:
            steps.append(
                RepairStep(RepairOp.RECONFIGURE, iid, "config changed")
            )
    for iid in sorted(added, key=lambda iid: new_order[iid]):
        reason = (
            "new machine" if new_spec[iid].is_machine() else "added to spec"
        )
        steps.append(RepairStep(RepairOp.INSTALL, iid, reason))
    for iid in sorted(stragglers, key=lambda iid: new_order[iid]):
        steps.append(RepairStep(RepairOp.REDEPLOY, iid, "not at target"))
    for iid in sorted(stop_only, key=lambda iid: new_order[iid]):
        steps.append(RepairStep(RepairOp.RESTART, iid, "upstream replaced"))
    for iid in restart_live:
        steps.append(RepairStep(RepairOp.RESTART, iid, "process died"))

    delta = DeltaPlan(
        plan=TransitionPlan(steps=steps, target=target),
        old_spec=old_spec,
        new_spec=new_spec,
        diff=diff,
        target=target,
        stop_down=stop_down,
        uninstall_down=uninstall_down,
        retire_hostnames=retire_hostnames,
        up=up,
        restart=restart_live,
    )

    if session is not None or new_partial is not None:
        if session is None or new_partial is None:
            raise RuntimeEngageError(
                "delta revalidation needs both a ConfigurationSession and "
                "the new goal's partial spec (or neither)"
            )
        affected = sorted(
            (added | replaced | stragglers), key=lambda iid: new_order[iid]
        )
        delta.revalidated = session.revalidate_instances(
            new_partial, new_spec, affected
        )

    return delta


def rebase_journal(
    system: DeployedSystem, delta: DeltaPlan
) -> DeploymentJournal:
    """Build the transition's write-ahead journal, bound to the *new*
    spec.

    Every entry of the system's journal that concerns an old-spec
    instance is carried over (per-instance chains stay intact); where
    the carried record disagrees with -- or is silent about -- the live
    driver state, an ``observe:adopted`` entry pins the frontier to the
    facts, so a resume after a crash reconstructs exactly the states the
    transition started from.  Unchanged instances already at the target
    that the down phase will not touch are marked completed: the up
    phase skips them, which is what makes the plan O(diff).
    """
    journal = DeploymentJournal(delta.new_spec, target=delta.target)
    old_ids = set(delta.old_spec.ids())
    old_journal = system.journal
    if old_journal is not None:
        for entry in old_journal.entries:
            if entry.instance_id in old_ids:
                journal.record(entry)
    frontier = journal.states()
    clock = system.infrastructure.clock
    for instance in delta.old_spec.topological_order():
        iid = instance.id
        if iid not in system.drivers:
            continue
        live = system.state_of(iid)
        recorded = frontier.get(iid)
        if recorded is None:
            if live != system.driver(iid).machine_spec.initial:
                journal.record(
                    JournalEntry(iid, "observe:adopted", live, live, clock.now)
                )
        elif recorded != live:
            journal.record(
                JournalEntry(iid, "observe:adopted", recorded, live, clock.now)
            )
    stop_set = set(delta.stop_down)
    for iid in delta.diff.unchanged:
        if iid in stop_set or iid not in system.drivers:
            continue
        if system.state_of(iid) == delta.target:
            journal.mark_completed(iid)
    return journal


def _run_down_phase(
    engine: DeploymentEngine,
    old_system: DeployedSystem,
    journal: DeploymentJournal,
    stop_ids: list[str],
    uninstall_ids: list[str],
    report: DeploymentReport,
    *,
    policy: Optional[RetryPolicy] = None,
    jobs: Optional[int] = None,
    jobs_per_host: Optional[int] = None,
) -> None:
    """Drive the old spec down: stop the closure, uninstall the
    teardown set -- journalled, so each completed transition survives a
    crash.  Filtered by live state: a resume must not *install* an
    instance merely to uninstall it again."""
    stop_now = [
        iid for iid in stop_ids if old_system.state_of(iid) == ACTIVE
    ]
    if stop_now:
        _merge_reports(
            report,
            engine.drive_instances(
                old_system, stop_now, INACTIVE, reverse=True,
                policy=policy, journal=journal,
                jobs=jobs, jobs_per_host=jobs_per_host,
            ),
        )
    uninstall_now = [
        iid
        for iid in uninstall_ids
        if old_system.state_of(iid) != UNINSTALLED
    ]
    if uninstall_now:
        _merge_reports(
            report,
            engine.drive_instances(
                old_system, uninstall_now, UNINSTALLED, reverse=True,
                policy=policy, journal=journal,
                jobs=jobs, jobs_per_host=jobs_per_host,
            ),
        )


def _finish_down_phase(
    engine: DeploymentEngine, journal: DeploymentJournal
) -> None:
    """Retire the vacated machines and close the transition record --
    from here on the journal speaks only the new spec's language."""
    transition = journal.transition
    if transition is None:
        return
    for hostname in transition.retire:
        if engine.infrastructure.network.has_machine(hostname):
            engine.infrastructure.remove_machine(hostname)
    journal.finish_transition()


def _new_system_for_failure(
    engine: DeploymentEngine,
    old_system: DeployedSystem,
    delta: DeltaPlan,
) -> DeployedSystem:
    """A new-spec system snapshot for a failure bundle.

    A down-phase failure is raised holding the *old* system, but the
    resumable bundle must be keyed by the journal's spec -- the new one
    -- or reloading would rebind the journal to the wrong spec.
    Surviving unchanged drivers come across live; everything else sits
    at its initial state, which is exactly what the journal's
    transition record says still needs doing."""
    survivors = {
        iid: old_system.drivers[iid]
        for iid in delta.diff.unchanged
        if iid in old_system.drivers
    }
    return engine.prepare(delta.new_spec, reuse_drivers=survivors)


def execute_delta(
    engine: DeploymentEngine,
    system: DeployedSystem,
    delta: DeltaPlan,
    *,
    policy: Optional[RetryPolicy] = None,
    jobs: Optional[int] = None,
    jobs_per_host: Optional[int] = None,
) -> DeltaResult:
    """Execute a planned delta transition on the live ``system``.

    Phases: (1) journal rebase + transition record, (2) down phase on
    the old spec (stop closure, uninstall teardown -- reverse order),
    (3) machine retirement + transition close, (4) up phase on the new
    spec through :meth:`DeploymentEngine.drive_instances` (DAG
    scheduler, retries, journalling), (5) restarts of crashed-but-
    converged services.  On failure the raised
    :class:`DeploymentFailure` carries the new-spec system and the
    transition journal: persist them with the world and ``deploy
    --resume`` finishes the transition.
    """
    journal = rebase_journal(system, delta)
    report = DeploymentReport(jobs=jobs)

    if delta.stop_down or delta.uninstall_down or delta.retire_hostnames:
        journal.begin_transition(
            SpecTransition(
                from_spec=delta.old_spec,
                pending=list(delta.uninstall_down),
                stop=list(delta.stop_down),
                retire=list(delta.retire_hostnames),
            )
        )
        try:
            _run_down_phase(
                engine, system, journal,
                delta.stop_down, delta.uninstall_down, report,
                policy=policy, jobs=jobs, jobs_per_host=jobs_per_host,
            )
        except DeploymentFailure as failure:
            raise DeploymentFailure(
                f"delta down phase failed: {failure}",
                journal=journal,
                completed=set(journal.completed),
                failed=dict(journal.failed),
                skipped=set(journal.skipped),
                report=report,
                system=_new_system_for_failure(engine, system, delta),
            ) from failure
        _finish_down_phase(engine, journal)

    survivors = {
        iid: system.drivers[iid]
        for iid in delta.diff.unchanged
        if iid in system.drivers
    }
    new_system = engine.prepare(delta.new_spec, reuse_drivers=survivors)
    new_system.journal = journal
    journal.reset_frontier()
    up_ids = [
        instance.id
        for instance in delta.new_spec.topological_order()
        if instance.id not in journal.completed
    ]
    if up_ids:
        _merge_reports(
            report,
            engine.drive_instances(
                new_system, up_ids, delta.target,
                policy=policy, journal=journal,
                jobs=jobs, jobs_per_host=jobs_per_host,
            ),
        )

    for iid in delta.restart:
        driver = new_system.driver(iid)
        if driver.state != ACTIVE:
            continue  # handled by the up phase after all
        transition = driver.machine_spec.find(ACTIVE, "restart")
        engine._check_guard(new_system, iid, transition)
        engine._perform_with_retry(
            new_system, iid, transition, report,
            policy=policy, journal=journal,
        )

    journal.sort_entries_by_time()
    new_system.report = report
    return DeltaResult(
        system=new_system, journal=journal, plan=delta, report=report
    )


def complete_down_phase(
    engine: DeploymentEngine,
    journal: DeploymentJournal,
    *,
    policy: Optional[RetryPolicy] = None,
    jobs: Optional[int] = None,
    jobs_per_host: Optional[int] = None,
) -> None:
    """Finish an interrupted delta down phase from its journal.

    Called by :meth:`DeploymentEngine.resume` when the journal carries
    a :class:`SpecTransition`: the old system is reconstructed from the
    recorded old spec, its drivers adopt the journal frontier (live
    processes reattach), the remaining stop/uninstall work runs --
    filtered by adopted state, so finished work no-ops -- the vacated
    machines retire, and the transition record closes.  The caller then
    resumes the up phase normally."""
    from repro.runtime.state import adopt_states

    transition = journal.transition
    if transition is None:
        return
    journal.reset_frontier()
    old_system = engine.prepare(transition.from_spec)
    old_ids = set(transition.from_spec.ids())
    frontier = {
        iid: state
        for iid, state in journal.states().items()
        if iid in old_ids
    }
    adopt_states(old_system, frontier, partial=True)
    report = DeploymentReport(jobs=jobs)
    try:
        _run_down_phase(
            engine, old_system, journal,
            list(transition.stop), list(transition.pending), report,
            policy=policy, jobs=jobs, jobs_per_host=jobs_per_host,
        )
    except DeploymentFailure as failure:
        delta_like_system = engine.prepare(
            journal.spec,
            reuse_drivers={
                iid: old_system.drivers[iid]
                for iid in old_ids
                if iid in journal.spec
                and iid not in set(transition.pending)
            },
        )
        raise DeploymentFailure(
            f"delta down phase failed again: {failure}",
            journal=journal,
            completed=set(journal.completed),
            failed=dict(journal.failed),
            skipped=set(journal.skipped),
            report=report,
            system=delta_like_system,
        ) from failure
    _finish_down_phase(engine, journal)
