"""Persistent deployment state.

"Given that Engage has a full description of the deployed system,
multiple upgrade strategies are possible" (S5.2) -- the real Engage kept
that description on disk so a later invocation could manage (stop,
upgrade, monitor) a system it did not itself deploy.  This module is
that persistence: :func:`save_system` serialises a deployed system's
specification and driver states; :func:`load_system` re-adopts it
against the same infrastructure, reattaching service drivers to their
still-running processes by name.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.errors import RuntimeEngageError
from repro.core.registry import ResourceTypeRegistry
from repro.drivers.base import DriverRegistry
from repro.drivers.library import ServiceDriver
from repro.drivers.state_machine import ACTIVE
from repro.dsl.json_spec import full_from_json, full_to_json
from repro.runtime.deploy import DeployedSystem, DeploymentEngine
from repro.sim.infrastructure import Infrastructure

#: Format marker so future layout changes can be detected.
STATE_FORMAT = "engage-state-1"


def save_system(system: DeployedSystem) -> str:
    """Serialise a deployed system (spec + per-instance driver states)."""
    payload = {
        "format": STATE_FORMAT,
        "spec": json.loads(full_to_json(system.spec)),
        "states": system.states(),
    }
    return json.dumps(payload, indent=2) + "\n"


def load_system(
    registry: ResourceTypeRegistry,
    infrastructure: Infrastructure,
    drivers: DriverRegistry,
    text: str,
) -> DeployedSystem:
    """Re-adopt a previously saved system.

    The machines must still exist on the infrastructure's network (state
    files describe deployments of *this* world; they are not machine
    images).  Service drivers whose saved state is ``active`` reattach to
    the running process with their service name; a missing process is an
    error -- the state file claims something the world contradicts.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise RuntimeEngageError(f"malformed state file: {exc}") from exc
    if not isinstance(payload, dict):
        raise RuntimeEngageError("state file must be a JSON object")
    if payload.get("format") != STATE_FORMAT:
        raise RuntimeEngageError(
            f"unsupported state format: {payload.get('format')!r}"
        )
    spec = full_from_json(json.dumps(payload["spec"]))
    states = payload["states"]
    missing = sorted(set(spec.ids()) - set(states))
    if missing:
        raise RuntimeEngageError(
            f"state file has no driver state for {missing}"
        )

    engine = DeploymentEngine(registry, infrastructure, drivers)
    system = engine.prepare(spec)
    for instance_id, state in states.items():
        if instance_id not in system.drivers:
            raise RuntimeEngageError(
                f"state file mentions unknown instance {instance_id!r}"
            )
        driver = system.drivers[instance_id]
        if state not in driver.machine_spec.states:
            raise RuntimeEngageError(
                f"{instance_id}: saved state {state!r} is not a state of "
                "its driver"
            )
        driver.state = state
        if isinstance(driver, ServiceDriver) and state == ACTIVE:
            machine = system.machine_for(instance_id)
            process = machine.find_process(driver.service_name())
            if process is None:
                raise RuntimeEngageError(
                    f"{instance_id}: saved as active but no process "
                    f"{driver.service_name()!r} exists on "
                    f"{machine.hostname}"
                )
            # A dead process is adopted as-is: that is precisely the
            # state the monitor repairs (`engage-sim watch`).
            driver.adopt_process(process)
    return system
