"""Persistent deployment state.

"Given that Engage has a full description of the deployed system,
multiple upgrade strategies are possible" (S5.2) -- the real Engage kept
that description on disk so a later invocation could manage (stop,
upgrade, monitor) a system it did not itself deploy.  This module is
that persistence: :func:`save_system` serialises a deployed system's
specification and driver states; :func:`load_system` re-adopts it
against the same infrastructure, reattaching service drivers to their
still-running processes by name.

Two formats exist.  ``engage-state-1`` is spec + states.
``engage-state-2`` extends it with the write-ahead deployment journal
(:class:`~repro.runtime.journal.DeploymentJournal`), so an interrupted
deployment can be persisted at its consistent frontier and later
resumed with :meth:`DeploymentEngine.resume`.  :func:`load_system`
accepts both; :func:`load_system_and_journal` additionally returns the
journal (``None`` for v1 files).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.errors import RuntimeEngageError
from repro.core.registry import ResourceTypeRegistry
from repro.drivers.base import DriverRegistry
from repro.drivers.library import ServiceDriver
from repro.drivers.state_machine import ACTIVE
from repro.dsl.json_spec import full_from_json, full_to_json
from repro.runtime.deploy import DeployedSystem, DeploymentEngine
from repro.runtime.journal import DeploymentJournal
from repro.sim.infrastructure import Infrastructure

#: Format marker so future layout changes can be detected.
STATE_FORMAT = "engage-state-1"
#: The journalled format: v1 plus a "journal" section.
JOURNAL_FORMAT = "engage-state-2"


def save_system(
    system: DeployedSystem,
    journal: Optional[DeploymentJournal] = None,
) -> str:
    """Serialise a deployed system (spec + per-instance driver states).

    With ``journal`` the output uses the ``engage-state-2`` format and
    embeds the write-ahead journal, making the file resumable.
    """
    payload = {
        "format": JOURNAL_FORMAT if journal is not None else STATE_FORMAT,
        "spec": json.loads(full_to_json(system.spec)),
        "states": system.states(),
    }
    if journal is not None:
        payload["journal"] = journal.to_payload()
    return json.dumps(payload, indent=2) + "\n"


def adopt_states(
    system: DeployedSystem,
    states: dict[str, str],
    *,
    partial: bool = False,
) -> None:
    """Set each driver to its saved state, reattaching processes.

    Service drivers adopted as ``active`` must find the running process
    with their service name on their machine; a missing process is an
    error -- the state claims something the world contradicts.  With
    ``partial=True`` instances absent from ``states`` stay in their
    driver's initial state (used when re-adopting a journal frontier);
    otherwise every instance must have a state.
    """
    if not partial:
        missing = sorted(set(system.spec.ids()) - set(states))
        if missing:
            raise RuntimeEngageError(
                f"state file has no driver state for {missing}"
            )
    for instance_id, state in states.items():
        if instance_id not in system.drivers:
            raise RuntimeEngageError(
                f"state file mentions unknown instance {instance_id!r}"
            )
        driver = system.drivers[instance_id]
        if state not in driver.machine_spec.states:
            raise RuntimeEngageError(
                f"{instance_id}: saved state {state!r} is not a state of "
                "its driver"
            )
        driver.state = state
        if isinstance(driver, ServiceDriver) and state == ACTIVE:
            machine = system.machine_for(instance_id)
            process = machine.find_process(driver.service_name())
            if process is None:
                raise RuntimeEngageError(
                    f"{instance_id}: saved as active but no process "
                    f"{driver.service_name()!r} exists on "
                    f"{machine.hostname}"
                )
            # A dead process is adopted as-is: that is precisely the
            # state the monitor repairs (`engage-sim watch`).
            driver.adopt_process(process)


def _parse_state_payload(text: str) -> dict:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise RuntimeEngageError(f"malformed state file: {exc}") from exc
    if not isinstance(payload, dict):
        raise RuntimeEngageError("state file must be a JSON object")
    if payload.get("format") not in (STATE_FORMAT, JOURNAL_FORMAT):
        raise RuntimeEngageError(
            f"unsupported state format: {payload.get('format')!r}"
        )
    return payload


def load_system_and_journal(
    registry: ResourceTypeRegistry,
    infrastructure: Infrastructure,
    drivers: DriverRegistry,
    text: str,
) -> tuple[DeployedSystem, Optional[DeploymentJournal]]:
    """Re-adopt a previously saved system, plus its journal if saved.

    The machines must still exist on the infrastructure's network (state
    files describe deployments of *this* world; they are not machine
    images).
    """
    payload = _parse_state_payload(text)
    spec = full_from_json(json.dumps(payload["spec"]))
    engine = DeploymentEngine(registry, infrastructure, drivers)
    system = engine.prepare(spec)
    adopt_states(system, payload["states"])
    journal: Optional[DeploymentJournal] = None
    if payload.get("format") == JOURNAL_FORMAT:
        journal = DeploymentJournal.from_payload(
            spec, payload.get("journal", {})
        )
        system.journal = journal
    return system, journal


def load_system(
    registry: ResourceTypeRegistry,
    infrastructure: Infrastructure,
    drivers: DriverRegistry,
    text: str,
) -> DeployedSystem:
    """Re-adopt a previously saved system (either format)."""
    system, _ = load_system_and_journal(
        registry, infrastructure, drivers, text
    )
    return system
