"""The Engage runtime (S5): deployment engine, multi-host coordination,
provisioning, monitoring, and upgrades with rollback."""

from repro.runtime.coordinator import (
    MasterCoordinator,
    MultiHostDeployment,
    MultiHostReport,
    machine_waves,
    split_spec,
)
from repro.runtime.deploy import (
    ActionRecord,
    DeployedSystem,
    DeploymentEngine,
    DeploymentReport,
    standard_driver_registry,
)
from repro.runtime.delta import (
    DeltaPlan,
    DeltaResult,
    execute_delta,
    plan_delta,
    rebase_journal,
)
from repro.runtime.journal import (
    DeploymentJournal,
    JournalDiff,
    JournalEntry,
    SpecTransition,
)
from repro.runtime.monitor import (
    MONIT_KEY,
    MonitorEvent,
    ProcessMonitor,
    add_monitoring,
)
from repro.runtime.provision import (
    discover_machine,
    machine_os_identity,
    provision_partial_spec,
)
from repro.runtime.reconcile import (
    DriftItem,
    DriftKind,
    DriftReport,
    ReconcileController,
    ReconcileResult,
    ReconcileRound,
    RepairOp,
    RepairStep,
    TransitionPlan,
    detect_drift,
    execute_plan,
    plan_repair,
)
from repro.runtime.retry import DEFAULT_CHAOS_POLICY, RetryPolicy
from repro.runtime.scheduler import DagScheduler, execute_serial
from repro.runtime.state import (
    JOURNAL_FORMAT,
    STATE_FORMAT,
    adopt_states,
    load_system,
    load_system_and_journal,
    save_system,
)
from repro.runtime.upgrade import (
    SpecDiff,
    UpgradeEngine,
    UpgradeResult,
    diff_specs,
)

__all__ = [
    "ActionRecord",
    "DEFAULT_CHAOS_POLICY",
    "DeltaPlan",
    "DeltaResult",
    "DeployedSystem",
    "DeploymentEngine",
    "DagScheduler",
    "DeploymentJournal",
    "DeploymentReport",
    "DriftItem",
    "DriftKind",
    "DriftReport",
    "JournalDiff",
    "ReconcileController",
    "ReconcileResult",
    "ReconcileRound",
    "RepairOp",
    "RepairStep",
    "TransitionPlan",
    "detect_drift",
    "execute_plan",
    "execute_serial",
    "plan_repair",
    "JOURNAL_FORMAT",
    "JournalEntry",
    "RetryPolicy",
    "adopt_states",
    "load_system_and_journal",
    "MasterCoordinator",
    "MultiHostDeployment",
    "MultiHostReport",
    "MONIT_KEY",
    "MonitorEvent",
    "ProcessMonitor",
    "SpecDiff",
    "SpecTransition",
    "UpgradeEngine",
    "UpgradeResult",
    "add_monitoring",
    "diff_specs",
    "execute_delta",
    "plan_delta",
    "rebase_journal",
    "discover_machine",
    "load_system",
    "machine_os_identity",
    "save_system",
    "STATE_FORMAT",
    "machine_waves",
    "provision_partial_spec",
    "split_spec",
    "standard_driver_registry",
]
