"""Upgrades with backup and rollback (S5.2).

"The user ... provide[s] a partial install specification describing the
desired new state of the system.  This is used to compute a full install
specification for the deployed system.  The current system is then backed
up, and any components that will be removed or that cannot be upgraded
in-place are uninstalled.  The new system is now deployed, per the
install specification, upgrading and adding components as needed.  If the
upgrade fails, the partially installed components are uninstalled and the
old version restored from the backup."

As the paper admits, "all upgrades using this approach experience the
worst case upgrade time" -- the diff is informational; execution is
stop-everything / replace / restart, with machine snapshots as backup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import DeploymentError, UpgradeError
from repro.core.instances import InstallSpec, PartialInstallSpec
from repro.core.registry import ResourceTypeRegistry
from repro.config.engine import ConfigurationEngine
from repro.runtime.deploy import DeployedSystem, DeploymentEngine
from repro.runtime.retry import RetryPolicy
from repro.sim.infrastructure import Infrastructure


@dataclass
class SpecDiff:
    """Instance-level difference between the old and new full specs."""

    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    upgraded: list[str] = field(default_factory=list)  # same id, new key
    reconfigured: list[str] = field(default_factory=list)  # same key, new config
    moved: list[str] = field(default_factory=list)  # same key/config, new host
    unchanged: list[str] = field(default_factory=list)

    def to_payload(self) -> dict:
        return {
            "added": list(self.added),
            "removed": list(self.removed),
            "upgraded": list(self.upgraded),
            "reconfigured": list(self.reconfigured),
            "moved": list(self.moved),
            "unchanged": len(self.unchanged),
        }


def diff_specs(old: InstallSpec, new: InstallSpec) -> SpecDiff:
    diff = SpecDiff()
    old_ids = set(old.ids())
    new_ids = set(new.ids())
    diff.added = sorted(new_ids - old_ids)
    diff.removed = sorted(old_ids - new_ids)
    for instance_id in sorted(old_ids & new_ids):
        before = old[instance_id]
        after = new[instance_id]
        if before.key != after.key:
            diff.upgraded.append(instance_id)
        elif before.config != after.config:
            diff.reconfigured.append(instance_id)
        elif (
            not before.is_machine()
            and before.machine_id(old) != after.machine_id(new)
        ):
            # Same key, same config -- but relocated: the old host must
            # lose the instance and the new host gain it.  Comparing
            # key/config alone used to classify this "unchanged" and
            # leave the instance running on the old machine.
            diff.moved.append(instance_id)
        else:
            diff.unchanged.append(instance_id)
    return diff


def _describe_exception(exc: BaseException) -> str:
    """``"ExceptionType: message"`` -- never empty.

    ``str(exc)`` alone is empty for bare exceptions and silently drops
    the type either way, which left CLI failure output blank exactly
    when the error was least expected."""
    message = str(exc)
    name = type(exc).__name__
    return f"{name}: {message}" if message else name


@dataclass
class UpgradeResult:
    """Outcome of an upgrade attempt.

    ``error`` is a human-readable ``"ExceptionType: message"`` string;
    ``exception`` carries the original exception object for callers
    that need to branch on its type (the CLI names the class in its
    failure line)."""

    succeeded: bool
    rolled_back: bool
    diff: SpecDiff
    system: DeployedSystem
    error: Optional[str] = None
    exception: Optional[BaseException] = None


class UpgradeEngine:
    """Executes the backup / replace / rollback protocol."""

    def __init__(
        self,
        config_engine: ConfigurationEngine,
        deployment_engine: DeploymentEngine,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        jobs: Optional[int] = None,
        jobs_per_host: Optional[int] = None,
    ) -> None:
        self._config = config_engine
        self._deploy = deployment_engine
        #: Applied to every deployment pass the upgrade performs --
        #: including the rollback redeploy, so a transient fault during
        #: recovery does not turn a failed upgrade into a lost system.
        self._retry_policy = retry_policy
        #: Worker bounds forwarded to every deployment pass (stop,
        #: uninstall, redeploy, rollback) -- None keeps them serial.
        self._jobs = jobs
        self._jobs_per_host = jobs_per_host

    def _pass_kwargs(self) -> dict:
        return {
            "policy": self._retry_policy,
            "jobs": self._jobs,
            "jobs_per_host": self._jobs_per_host,
        }

    def upgrade(
        self,
        system: DeployedSystem,
        new_partial: PartialInstallSpec,
        *,
        strategy: str = "replace",
    ) -> UpgradeResult:
        """Upgrade a deployed system to the state described by
        ``new_partial``.  On any failure the machines are restored from
        backup and the old system redeployed; the returned result says
        which happened.

        ``strategy`` selects the execution plan:

        * ``"replace"`` -- the paper's implemented approach: stop and
          uninstall everything, deploy the new specification ("all
          upgrades ... experience the worst case upgrade time").
        * ``"in_place"`` -- the optimisation the paper leaves as future
          work: untouched instances keep running; only changed/removed
          instances and their transitive dependents are stopped,
          replaced, and restarted.
        * ``"delta"`` -- plan synthesis through the delta planner
          (:mod:`repro.runtime.delta`): the same minimal transition as
          ``in_place`` but executed through ``drive_instances`` with a
          write-ahead journal, the DAG scheduler, and retries.  Still
          transactional here (failure rolls back from backup); use
          ``deploy --delta`` for the journalled resume-on-crash path.
        """
        if strategy not in ("replace", "in_place", "delta"):
            raise UpgradeError(f"unknown upgrade strategy: {strategy!r}")
        new_spec = self._config.configure(new_partial).spec
        diff = diff_specs(system.spec, new_spec)

        # Back up every machine (filesystem + package database) before
        # touching anything.
        infrastructure = self._deploy.infrastructure
        backups: dict[str, dict] = {}
        for machine in set(system.machines.values()):
            backups[machine.hostname] = {
                "machine": machine.snapshot(),
                "packages": infrastructure.package_manager(machine).snapshot(),
            }

        old_spec = system.spec
        try:
            if strategy == "replace":
                # Stop and remove the old system (worst-case strategy).
                self._deploy.uninstall(system, **self._pass_kwargs())
                new_system = self._deploy.deploy(
                    new_spec, **self._pass_kwargs()
                )
            elif strategy == "delta":
                from repro.runtime.delta import execute_delta, plan_delta

                delta = plan_delta(system, new_spec)
                new_system = execute_delta(
                    self._deploy, system, delta, **self._pass_kwargs()
                ).system
            else:
                new_system = self._upgrade_in_place(system, new_spec, diff)
            return UpgradeResult(
                succeeded=True,
                rolled_back=False,
                diff=diff,
                system=new_system,
            )
        except Exception as exc:
            rolled_back_system = self._rollback(
                system, old_spec, new_spec, backups
            )
            return UpgradeResult(
                succeeded=False,
                rolled_back=True,
                diff=diff,
                system=rolled_back_system,
                error=_describe_exception(exc),
                exception=exc,
            )

    def _upgrade_in_place(
        self,
        system: DeployedSystem,
        new_spec: InstallSpec,
        diff: SpecDiff,
    ) -> DeployedSystem:
        """Replace only what changed, plus its transitive dependents.

        Guards make the closure necessary: stopping a changed instance
        requires every downstream dependent inactive first, so dependents
        of changed instances stop (and later restart) too, even when
        they themselves are unchanged.
        """
        old_spec = system.spec
        changed = (
            set(diff.upgraded) | set(diff.reconfigured) | set(diff.moved)
        )
        to_remove = set(diff.removed) | changed

        # Downstream closure over the OLD spec: everything that
        # (transitively) depends on a changed/removed instance.
        closure = set(to_remove)
        frontier = list(to_remove)
        while frontier:
            current = frontier.pop()
            for dependent in old_spec.downstream_ids(current):
                if dependent not in closure:
                    closure.add(dependent)
                    frontier.append(dependent)

        # 1. Stop the closure (reverse dependency order, guards hold
        #    because the closure is downstream-closed).
        self._deploy.stop_instances(system, closure, **self._pass_kwargs())
        # 2. Uninstall removed and changed instances.
        self._deploy.uninstall_instances(
            system, to_remove, **self._pass_kwargs()
        )

        # 3. Build the new system, reusing live drivers for everything
        #    that survived (active instances keep running untouched;
        #    stopped-but-unchanged dependents keep their installed state).
        reuse = {
            instance_id: system.driver(instance_id)
            for instance_id in old_spec.ids()
            if instance_id in new_spec
            and instance_id not in to_remove
        }
        new_system = self._deploy.prepare(new_spec, reuse_drivers=reuse)
        # 4. Install what is new/changed and restart the closure, in
        #    dependency order (already-active drivers no-op).
        self._deploy.activate(new_system, **self._pass_kwargs())
        return new_system

    def _rollback(
        self,
        system: DeployedSystem,
        old_spec: InstallSpec,
        new_spec: InstallSpec,
        backups: dict[str, dict],
    ) -> DeployedSystem:
        """Restore machine filesystems and redeploy the old system.

        The failed new-spec deploy may have registered machines the old
        system never had; restoring only the backed-up hosts would
        leave those as ghost hosts on the network, so every machine the
        new spec introduced (no backup recorded for its hostname) is
        deregistered first.  Hosts the delta path retired before
        failing are re-registered so their snapshot restore lands on a
        network-visible machine again.
        """
        infrastructure = self._deploy.infrastructure
        network = infrastructure.network
        for instance in new_spec.machines():
            hostname = instance.config.get("hostname")
            if not hostname:
                host_record = instance.outputs.get("host")
                if isinstance(host_record, dict):
                    hostname = host_record.get("hostname")
            if (
                hostname
                and hostname not in backups
                and network.has_machine(hostname)
            ):
                infrastructure.remove_machine(hostname)
        for machine in set(system.machines.values()):
            backup = backups[machine.hostname]
            if not network.has_machine(machine.hostname):
                network.register_machine(machine)
            machine.restore(backup["machine"])
            infrastructure.package_manager(machine).restore(backup["packages"])
        try:
            return self._deploy.deploy(old_spec, **self._pass_kwargs())
        except DeploymentError as exc:  # pragma: no cover - defensive
            raise UpgradeError(
                f"rollback failed after upgrade failure: {exc}"
            ) from exc
