"""The write-ahead deployment journal.

Every transition the deployment engine completes is appended to a
:class:`DeploymentJournal` *after* the driver action succeeds (the
driver state machine is the authority; the journal records facts, it
does not promise them).  When a deployment fails fatally the journal --
persisted in the ``engage-state-2`` format by
:mod:`repro.runtime.state` -- is everything a later invocation needs to
resume: the full spec, the target basic state, each completed
transition, and the completed/failed/skipped partition of instances.

Folding the entries gives the *frontier*: the per-instance driver state
at the moment the run stopped.  The frontier is consistent by
construction: a failed action never advances its state machine, and the
engine drives instances in dependency order, so no dependent of a
failed instance has been acted on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.errors import RuntimeEngageError
from repro.core.instances import InstallSpec
from repro.drivers.state_machine import ACTIVE, UNINSTALLED


@dataclass
class JournalEntry:
    """One completed driver transition."""

    instance_id: str
    action: str
    source: str
    target: str
    timestamp: float

    def to_payload(self) -> dict:
        return {
            "instance_id": self.instance_id,
            "action": self.action,
            "source": self.source,
            "target": self.target,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JournalEntry":
        try:
            entry = cls(
                instance_id=payload["instance_id"],
                action=payload["action"],
                source=payload["source"],
                target=payload["target"],
                timestamp=float(payload["timestamp"]),
            )
            # float() above rejects bad timestamps; the string fields
            # must be checked explicitly or a None/int instance id
            # round-trips straight into the resume frontier.
            for value in (
                entry.instance_id, entry.action, entry.source, entry.target
            ):
                if not isinstance(value, str):
                    raise TypeError(f"expected string, got {value!r}")
        except (KeyError, TypeError, ValueError) as exc:
            raise RuntimeEngageError(
                f"malformed journal entry: {payload!r}"
            ) from exc
        return entry


@dataclass
class JournalDiff:
    """How the journal's record diverges from a goal specification.

    ``missing`` lists goal instances never completed (in goal order),
    ``extra`` lists journalled instances absent from the goal, and
    ``failed``/``skipped`` echo the journal's failure partition
    restricted to the goal.  An all-empty diff means the journal claims
    the goal is met -- a *record-level* statement; :mod:`reconcile
    <repro.runtime.reconcile>` checks the live world on top of it.
    """

    missing: list[str] = field(default_factory=list)
    extra: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.missing or self.extra or self.failed or self.skipped)

    def to_payload(self) -> dict:
        return {
            "missing": list(self.missing),
            "extra": list(self.extra),
            "failed": list(self.failed),
            "skipped": list(self.skipped),
        }


class DeploymentJournal:
    """An append-only record of one deployment pass over a spec."""

    def __init__(self, spec: InstallSpec, target: str = ACTIVE) -> None:
        self.spec = spec
        self.target = target
        self.entries: list[JournalEntry] = []
        self.completed: set[str] = set()
        self.failed: dict[str, str] = {}  # instance id -> error message
        self.skipped: set[str] = set()

    # -- Recording -------------------------------------------------------

    def record(self, entry: JournalEntry) -> None:
        self.entries.append(entry)

    def mark_completed(self, instance_id: str) -> None:
        self.completed.add(instance_id)
        self.failed.pop(instance_id, None)
        self.skipped.discard(instance_id)

    def mark_failed(self, instance_id: str, error: str) -> None:
        # Symmetric with mark_completed: an instance that completed in
        # an earlier pass and fails now must not stay in both partitions
        # of the persisted payload.
        self.completed.discard(instance_id)
        self.skipped.discard(instance_id)
        self.failed[instance_id] = error

    def mark_skipped(self, instance_ids: Iterable[str]) -> None:
        self.skipped.update(instance_ids)

    def mark_lost(
        self,
        instance_id: str,
        source: str,
        timestamp: float,
        *,
        reason: str = "machine-lost",
    ) -> None:
        """Record an *observed* regression to ``uninstalled``.

        When drift detection finds that the world moved beneath the
        journal (a machine was lost, taking its instances with it), the
        frontier must follow the facts: a pseudo-action entry
        (``observe:<reason>``, ``source`` -> ``uninstalled``) keeps the
        per-instance entry chain valid, and the instance leaves the
        completed partition so :meth:`remaining` re-includes it."""
        self.record(
            JournalEntry(
                instance_id=instance_id,
                action=f"observe:{reason}",
                source=source,
                target=UNINSTALLED,
                timestamp=timestamp,
            )
        )
        self.completed.discard(instance_id)

    def reset_frontier(self) -> None:
        """Forget failure bookkeeping before a resume re-drives the
        remaining work (completed entries stay, of course)."""
        self.failed.clear()
        self.skipped.clear()

    def sort_entries_by_time(self) -> None:
        """Order entries by completion timestamp.

        A parallel pass appends entries in dispatch order, which
        interleaves worker timelines arbitrarily; sorting by timestamp
        (stable, so each instance's per-entry order survives) restores
        the global completion order the serial engine produces
        naturally.  :meth:`states` folds per instance, so the frontier
        is unchanged either way.
        """
        self.entries.sort(key=lambda entry: entry.timestamp)

    # -- Derived views ---------------------------------------------------

    def states(self) -> dict[str, str]:
        """The frontier: last recorded target per instance; instances
        never journalled are still in their driver's initial state."""
        states: dict[str, str] = {}
        for entry in self.entries:
            states[entry.instance_id] = entry.target
        return states

    def remaining(self) -> list[str]:
        """Instance ids that have not reached the target state."""
        return [
            instance.id
            for instance in self.spec.topological_order()
            if instance.id not in self.completed
        ]

    def diff(self, goal_spec: InstallSpec) -> JournalDiff:
        """Diff this journal's record against ``goal_spec``.

        ``missing`` follows the goal's dependency order (it is a valid
        work list); ``extra`` collects every journalled instance the
        goal no longer wants, sorted."""
        goal_ids = set(goal_spec.ids())
        journalled = (
            self.completed
            | set(self.failed)
            | self.skipped
            | {entry.instance_id for entry in self.entries}
        )
        return JournalDiff(
            missing=[
                instance.id
                for instance in goal_spec.topological_order()
                if instance.id not in self.completed
            ],
            extra=sorted(journalled - goal_ids),
            failed=sorted(iid for iid in self.failed if iid in goal_ids),
            skipped=sorted(iid for iid in self.skipped if iid in goal_ids),
        )

    def is_complete(self) -> bool:
        return not self.remaining()

    # -- Persistence payload (embedded by repro.runtime.state) -----------

    def to_payload(self) -> dict:
        return {
            "target": self.target,
            "entries": [entry.to_payload() for entry in self.entries],
            "completed": sorted(self.completed),
            "failed": dict(sorted(self.failed.items())),
            "skipped": sorted(self.skipped),
        }

    @classmethod
    def from_payload(
        cls, spec: InstallSpec, payload: dict
    ) -> "DeploymentJournal":
        if not isinstance(payload, dict):
            raise RuntimeEngageError("journal payload must be an object")
        journal = cls(spec, target=payload.get("target", ACTIVE))
        for entry_payload in payload.get("entries", ()):
            journal.record(JournalEntry.from_payload(entry_payload))
        journal.completed = set(payload.get("completed", ()))
        failed = payload.get("failed", {})
        if not isinstance(failed, dict):
            raise RuntimeEngageError("journal 'failed' must be an object")
        journal.failed = dict(failed)
        journal.skipped = set(payload.get("skipped", ()))
        unknown = (
            set(journal.completed)
            | set(journal.failed)
            | journal.skipped
            | {entry.instance_id for entry in journal.entries}
        ) - set(spec.ids())
        if unknown:
            raise RuntimeEngageError(
                f"journal mentions unknown instances: {sorted(unknown)}"
            )
        # An instance may live in at most one of the three partitions.
        # mark_completed/mark_failed keep them disjoint at runtime, so a
        # payload violating this was hand-edited or corrupted -- and a
        # silent last-write-wins here would fabricate a frontier.
        overlap = (
            (journal.completed & set(journal.failed))
            | (journal.completed & journal.skipped)
            | (set(journal.failed) & journal.skipped)
        )
        if overlap:
            raise RuntimeEngageError(
                "journal instances in more than one of completed/failed/"
                f"skipped: {sorted(overlap)}"
            )
        # Per-instance entries must chain: each transition starts where
        # the previous one left off, or the folded frontier is a lie.
        last_target: dict[str, str] = {}
        for entry in journal.entries:
            previous = last_target.get(entry.instance_id)
            if previous is not None and entry.source != previous:
                raise RuntimeEngageError(
                    f"journal entries for {entry.instance_id!r} do not "
                    f"chain: {entry.action!r} starts from {entry.source!r} "
                    f"but the previous entry left it in {previous!r}"
                )
            last_target[entry.instance_id] = entry.target
        return journal
