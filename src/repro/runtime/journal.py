"""The write-ahead deployment journal.

Every transition the deployment engine completes is appended to a
:class:`DeploymentJournal` *after* the driver action succeeds (the
driver state machine is the authority; the journal records facts, it
does not promise them).  When a deployment fails fatally the journal --
persisted in the ``engage-state-2`` format by
:mod:`repro.runtime.state` -- is everything a later invocation needs to
resume: the full spec, the target basic state, each completed
transition, and the completed/failed/skipped partition of instances.

Folding the entries gives the *frontier*: the per-instance driver state
at the moment the run stopped.  The frontier is consistent by
construction: a failed action never advances its state machine, and the
engine drives instances in dependency order, so no dependent of a
failed instance has been acted on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.errors import RuntimeEngageError
from repro.core.instances import InstallSpec
from repro.drivers.state_machine import ACTIVE, UNINSTALLED


@dataclass
class JournalEntry:
    """One completed driver transition."""

    instance_id: str
    action: str
    source: str
    target: str
    timestamp: float

    def to_payload(self) -> dict:
        return {
            "instance_id": self.instance_id,
            "action": self.action,
            "source": self.source,
            "target": self.target,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JournalEntry":
        try:
            entry = cls(
                instance_id=payload["instance_id"],
                action=payload["action"],
                source=payload["source"],
                target=payload["target"],
                timestamp=float(payload["timestamp"]),
            )
            # float() above rejects bad timestamps; the string fields
            # must be checked explicitly or a None/int instance id
            # round-trips straight into the resume frontier.
            for value in (
                entry.instance_id, entry.action, entry.source, entry.target
            ):
                if not isinstance(value, str):
                    raise TypeError(f"expected string, got {value!r}")
        except (KeyError, TypeError, ValueError) as exc:
            raise RuntimeEngageError(
                f"malformed journal entry: {payload!r}"
            ) from exc
        return entry


@dataclass
class JournalDiff:
    """How the journal's record diverges from a goal specification.

    ``missing`` lists goal instances never completed (in goal order),
    ``extra`` lists journalled instances absent from the goal, and
    ``failed``/``skipped`` echo the journal's failure partition
    restricted to the goal.  An all-empty diff means the journal claims
    the goal is met -- a *record-level* statement; :mod:`reconcile
    <repro.runtime.reconcile>` checks the live world on top of it.
    """

    missing: list[str] = field(default_factory=list)
    extra: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.missing or self.extra or self.failed or self.skipped)

    def to_payload(self) -> dict:
        return {
            "missing": list(self.missing),
            "extra": list(self.extra),
            "failed": list(self.failed),
            "skipped": list(self.skipped),
        }


@dataclass
class SpecTransition:
    """The in-flight record of a spec-to-spec delta transition.

    A delta transition first drives instances of the *old* spec down
    (stop the dependent closure, uninstall replaced/removed instances,
    retire vacated machines) before the journal's own spec -- the new
    one -- takes over.  While that down phase is running, the journal
    must be able to describe work on instances the new spec has never
    heard of; this record carries everything a resuming engine needs to
    reconstruct the old system and finish the down phase: the full old
    spec, the ids still to be uninstalled (reverse dependency order),
    the ids that only need stopping (the dependent closure), and the
    hostnames to retire from the infrastructure once the down phase is
    done.  :meth:`DeploymentJournal.finish_transition` clears it and
    purges the old-only ids, returning the journal to the invariant
    that it mentions only instances of its own spec.
    """

    from_spec: InstallSpec
    pending: list[str] = field(default_factory=list)
    stop: list[str] = field(default_factory=list)
    retire: list[str] = field(default_factory=list)

    def to_payload(self) -> dict:
        from repro.dsl.json_spec import full_to_json

        return {
            "from_spec": json.loads(full_to_json(self.from_spec)),
            "pending": list(self.pending),
            "stop": list(self.stop),
            "retire": list(self.retire),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SpecTransition":
        from repro.dsl.json_spec import full_from_json

        if not isinstance(payload, dict):
            raise RuntimeEngageError(
                "journal 'transition' must be an object"
            )
        try:
            from_spec = full_from_json(json.dumps(payload["from_spec"]))
        except KeyError as exc:
            raise RuntimeEngageError(
                "journal transition is missing 'from_spec'"
            ) from exc
        transition = cls(
            from_spec=from_spec,
            pending=[str(iid) for iid in payload.get("pending", ())],
            stop=[str(iid) for iid in payload.get("stop", ())],
            retire=[str(host) for host in payload.get("retire", ())],
        )
        old_ids = set(from_spec.ids())
        unknown = (set(transition.pending) | set(transition.stop)) - old_ids
        if unknown:
            raise RuntimeEngageError(
                "journal transition names instances outside its old "
                f"spec: {sorted(unknown)}"
            )
        return transition


class DeploymentJournal:
    """An append-only record of one deployment pass over a spec."""

    def __init__(self, spec: InstallSpec, target: str = ACTIVE) -> None:
        self.spec = spec
        self.target = target
        self.entries: list[JournalEntry] = []
        self.completed: set[str] = set()
        self.failed: dict[str, str] = {}  # instance id -> error message
        self.skipped: set[str] = set()
        self.transition: Optional[SpecTransition] = None

    # -- Recording -------------------------------------------------------

    def record(self, entry: JournalEntry) -> None:
        self.entries.append(entry)

    def mark_completed(self, instance_id: str) -> None:
        self.completed.add(instance_id)
        self.failed.pop(instance_id, None)
        self.skipped.discard(instance_id)

    def mark_failed(self, instance_id: str, error: str) -> None:
        # Symmetric with mark_completed: an instance that completed in
        # an earlier pass and fails now must not stay in both partitions
        # of the persisted payload.
        self.completed.discard(instance_id)
        self.skipped.discard(instance_id)
        self.failed[instance_id] = error

    def mark_skipped(self, instance_ids: Iterable[str]) -> None:
        self.skipped.update(instance_ids)

    def mark_lost(
        self,
        instance_id: str,
        source: str,
        timestamp: float,
        *,
        reason: str = "machine-lost",
    ) -> None:
        """Record an *observed* regression to ``uninstalled``.

        When drift detection finds that the world moved beneath the
        journal (a machine was lost, taking its instances with it), the
        frontier must follow the facts: a pseudo-action entry
        (``observe:<reason>``, ``source`` -> ``uninstalled``) keeps the
        per-instance entry chain valid, and the instance leaves the
        completed partition so :meth:`remaining` re-includes it."""
        self.record(
            JournalEntry(
                instance_id=instance_id,
                action=f"observe:{reason}",
                source=source,
                target=UNINSTALLED,
                timestamp=timestamp,
            )
        )
        self.completed.discard(instance_id)

    # -- Spec-to-spec transitions ----------------------------------------

    def begin_transition(self, transition: SpecTransition) -> None:
        """Arm the journal for a delta down phase on ``transition``'s
        old spec.  Persisted with the journal, so a crash anywhere in
        the down phase leaves enough to resume it."""
        if self.transition is not None:
            raise RuntimeEngageError(
                "a spec transition is already in progress"
            )
        self.transition = transition

    def finish_transition(self) -> None:
        """The down phase is done: drop the transition record and purge
        every mention of instances the journal's own spec does not
        know, restoring the single-spec invariant ``from_payload``
        checks."""
        if self.transition is None:
            raise RuntimeEngageError("no spec transition is in progress")
        known = set(self.spec.ids())
        self.entries = [
            entry for entry in self.entries if entry.instance_id in known
        ]
        self.completed &= known
        self.failed = {
            iid: error for iid, error in self.failed.items() if iid in known
        }
        self.skipped &= known
        self.transition = None

    def reset_frontier(self) -> None:
        """Forget failure bookkeeping before a resume re-drives the
        remaining work (completed entries stay, of course)."""
        self.failed.clear()
        self.skipped.clear()

    def sort_entries_by_time(self) -> None:
        """Order entries by completion timestamp.

        A parallel pass appends entries in dispatch order, which
        interleaves worker timelines arbitrarily; sorting by timestamp
        (stable, so each instance's per-entry order survives) restores
        the global completion order the serial engine produces
        naturally.  :meth:`states` folds per instance, so the frontier
        is unchanged either way.
        """
        self.entries.sort(key=lambda entry: entry.timestamp)

    # -- Merging (multi-host fleets) -------------------------------------

    @classmethod
    def merged(
        cls,
        spec: InstallSpec,
        journals: Iterable["DeploymentJournal"],
        target: str = ACTIVE,
    ) -> "DeploymentJournal":
        """One fleet journal from per-slave journals.

        Each slave journals its own sub-spec; since every instance lives
        on exactly one slave, concatenating the entries and stable-
        sorting by timestamp preserves each instance's chain while
        restoring the global completion order.  The completed/failed/
        skipped partitions union (disjoint across slaves for the same
        reason).
        """
        journal = cls(spec, target=target)
        for source in journals:
            journal.entries.extend(source.entries)
            journal.completed |= source.completed
            journal.failed.update(source.failed)
            journal.skipped |= source.skipped
        journal.sort_entries_by_time()
        return journal

    # -- Derived views ---------------------------------------------------

    def states(self) -> dict[str, str]:
        """The frontier: last recorded target per instance; instances
        never journalled are still in their driver's initial state."""
        states: dict[str, str] = {}
        for entry in self.entries:
            states[entry.instance_id] = entry.target
        return states

    def remaining(self) -> list[str]:
        """Instance ids that have not reached the target state."""
        return [
            instance.id
            for instance in self.spec.topological_order()
            if instance.id not in self.completed
        ]

    def diff(self, goal_spec: InstallSpec) -> JournalDiff:
        """Diff this journal's record against ``goal_spec``.

        ``missing`` follows the goal's dependency order (it is a valid
        work list); ``extra`` collects every journalled instance the
        goal no longer wants, sorted."""
        goal_ids = set(goal_spec.ids())
        journalled = (
            self.completed
            | set(self.failed)
            | self.skipped
            | {entry.instance_id for entry in self.entries}
        )
        return JournalDiff(
            missing=[
                instance.id
                for instance in goal_spec.topological_order()
                if instance.id not in self.completed
            ],
            extra=sorted(journalled - goal_ids),
            failed=sorted(iid for iid in self.failed if iid in goal_ids),
            skipped=sorted(iid for iid in self.skipped if iid in goal_ids),
        )

    def is_complete(self) -> bool:
        return not self.remaining()

    # -- Persistence payload (embedded by repro.runtime.state) -----------

    def to_payload(self) -> dict:
        payload = {
            "target": self.target,
            "entries": [entry.to_payload() for entry in self.entries],
            "completed": sorted(self.completed),
            "failed": dict(sorted(self.failed.items())),
            "skipped": sorted(self.skipped),
        }
        if self.transition is not None:
            payload["transition"] = self.transition.to_payload()
        return payload

    @classmethod
    def from_payload(
        cls, spec: InstallSpec, payload: dict
    ) -> "DeploymentJournal":
        if not isinstance(payload, dict):
            raise RuntimeEngageError("journal payload must be an object")
        journal = cls(spec, target=payload.get("target", ACTIVE))
        for entry_payload in payload.get("entries", ()):
            journal.record(JournalEntry.from_payload(entry_payload))
        journal.completed = set(payload.get("completed", ()))
        failed = payload.get("failed", {})
        if not isinstance(failed, dict):
            raise RuntimeEngageError("journal 'failed' must be an object")
        journal.failed = dict(failed)
        journal.skipped = set(payload.get("skipped", ()))
        if "transition" in payload:
            journal.transition = SpecTransition.from_payload(
                payload["transition"]
            )
        # While a delta down phase is in flight the journal legitimately
        # records work on instances only the *old* spec knows; those ids
        # are purged by finish_transition, so outside a transition the
        # journal must mention its own spec's instances only.
        known = set(spec.ids())
        if journal.transition is not None:
            known |= set(journal.transition.from_spec.ids())
        unknown = (
            set(journal.completed)
            | set(journal.failed)
            | journal.skipped
            | {entry.instance_id for entry in journal.entries}
        ) - known
        if unknown:
            raise RuntimeEngageError(
                f"journal mentions unknown instances: {sorted(unknown)}"
            )
        # An instance may live in at most one of the three partitions.
        # mark_completed/mark_failed keep them disjoint at runtime, so a
        # payload violating this was hand-edited or corrupted -- and a
        # silent last-write-wins here would fabricate a frontier.
        overlap = (
            (journal.completed & set(journal.failed))
            | (journal.completed & journal.skipped)
            | (set(journal.failed) & journal.skipped)
        )
        if overlap:
            raise RuntimeEngageError(
                "journal instances in more than one of completed/failed/"
                f"skipped: {sorted(overlap)}"
            )
        # Per-instance entries must chain: each transition starts where
        # the previous one left off, or the folded frontier is a lie.
        last_target: dict[str, str] = {}
        for entry in journal.entries:
            previous = last_target.get(entry.instance_id)
            if previous is not None and entry.source != previous:
                raise RuntimeEngageError(
                    f"journal entries for {entry.instance_id!r} do not "
                    f"chain: {entry.action!r} starts from {entry.source!r} "
                    f"but the previous entry left it in {previous!r}"
                )
            last_target[entry.instance_id] = entry.target
        return journal
