"""Engage: a deployment management system (PLDI 2012 reproduction).

Engage configures, installs, and manages complex multi-component,
multi-machine application stacks.  Three layers:

* ``repro.core`` + ``repro.dsl`` -- the declarative resource model: typed
  ports, inside/environment/peer dependencies, subtyping, a concrete DSL.
* ``repro.config`` + ``repro.sat`` -- the configuration engine: a partial
  installation specification expands to a full one via hypergraph
  generation, Boolean constraints, and a from-scratch CDCL SAT solver.
* ``repro.drivers`` + ``repro.runtime`` + ``repro.sim`` -- the runtime:
  guarded driver state machines, a dependency-ordered deployment engine,
  multi-host coordination, provisioning, monitoring, and upgrades with
  rollback, all against a simulated infrastructure substrate.

Quickstart::

    from repro import (
        ConfigurationEngine, DeploymentEngine, PartialInstallSpec,
        PartialInstance, as_key, standard_registry, standard_drivers,
        standard_infrastructure,
    )

    registry = standard_registry()
    infra = standard_infrastructure()
    partial = PartialInstallSpec([
        PartialInstance("server", as_key("Mac-OSX 10.6"),
                        config={"hostname": "demo"}),
        PartialInstance("tomcat", as_key("Tomcat 6.0.18"), inside_id="server"),
        PartialInstance("openmrs", as_key("OpenMRS 1.8"), inside_id="tomcat"),
    ])
    full = ConfigurationEngine(registry).configure(partial).spec
    system = DeploymentEngine(registry, infra, standard_drivers()).deploy(full)
    assert system.is_deployed()
"""

from repro.core import (
    EngageError,
    InstallSpec,
    PartialInstallSpec,
    PartialInstance,
    ResourceInstance,
    ResourceKey,
    ResourceTypeRegistry,
    Version,
    VersionRange,
    as_key,
    assert_well_formed,
    check_registry,
    define,
)
from repro.config import (
    ConfigurationEngine,
    ConfigurationResult,
    ConfigurationSession,
    check_spec,
)
from repro.dsl import (
    format_module,
    full_to_json,
    line_count,
    load_resources,
    parse_module,
    partial_from_json,
    partial_to_json,
)
from repro.library import (
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.runtime import (
    DeployedSystem,
    DeploymentEngine,
    MasterCoordinator,
    ProcessMonitor,
    UpgradeEngine,
    add_monitoring,
    provision_partial_spec,
)
from repro.sim import Infrastructure

__version__ = "1.0.0"

__all__ = [
    "ConfigurationEngine",
    "ConfigurationSession",
    "ConfigurationResult",
    "DeployedSystem",
    "DeploymentEngine",
    "EngageError",
    "Infrastructure",
    "InstallSpec",
    "MasterCoordinator",
    "PartialInstallSpec",
    "PartialInstance",
    "ProcessMonitor",
    "ResourceInstance",
    "ResourceKey",
    "ResourceTypeRegistry",
    "UpgradeEngine",
    "Version",
    "VersionRange",
    "add_monitoring",
    "as_key",
    "assert_well_formed",
    "check_registry",
    "check_spec",
    "define",
    "format_module",
    "full_to_json",
    "line_count",
    "load_resources",
    "parse_module",
    "partial_from_json",
    "partial_to_json",
    "provision_partial_spec",
    "standard_drivers",
    "standard_infrastructure",
    "standard_registry",
    "__version__",
]
