"""Resource drivers: the imperative half of a resource (S5.1).

A driver reads the metadata of its resource instance and manages the
component's lifecycle against the simulated infrastructure.  "Each
guarded action is implemented in an underlying programming language
(Python in our implementation)" -- here too: an action named ``X`` is the
method ``do_X``.

Guard *evaluation* belongs to the runtime (it tracks every instance's
state); the driver just refuses to run an action whose transition does
not exist from the current state, and the runtime refuses when the guard
is false.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Type

from repro.core.errors import DriverError
from repro.core.instances import InstallSpec, ResourceInstance
from repro.core.registry import ResourceTypeRegistry
from repro.core.resource_type import ResourceType
from repro.drivers.state_machine import (
    StateMachineSpec,
    service_state_machine,
)
from repro.sim.infrastructure import Infrastructure
from repro.sim.machine import Machine
from repro.sim.oslpm import OsPackageManager


@dataclass
class DriverContext:
    """Everything a driver action may touch."""

    instance: ResourceInstance
    resource_type: ResourceType
    machine: Machine
    infrastructure: Infrastructure
    spec: InstallSpec

    @property
    def package_manager(self) -> OsPackageManager:
        return self.infrastructure.package_manager(self.machine)

    def config(self, name: str, default=None):
        return self.instance.config.get(name, default)

    def input(self, name: str, default=None):
        return self.instance.inputs.get(name, default)

    def output(self, name: str, default=None):
        return self.instance.outputs.get(name, default)


class ResourceDriver:
    """Base driver: a state machine plus Python action implementations.

    Subclasses override :meth:`state_machine` (rarely) and the ``do_*``
    methods (always).  ``self.state`` tracks the current state; only the
    runtime should call :meth:`perform`.
    """

    #: Default simulated durations (seconds) per action, overridable.
    action_seconds: dict[str, float] = {
        "install": 20.0,
        "start": 5.0,
        "stop": 2.0,
        "restart": 6.0,
        "uninstall": 8.0,
    }

    def __init__(self, context: DriverContext) -> None:
        self.context = context
        self.machine_spec = self.state_machine()
        self.state = self.machine_spec.initial

    # -- Overridables ---------------------------------------------------

    def state_machine(self) -> StateMachineSpec:
        return service_state_machine()

    # -- Runtime interface ----------------------------------------------

    def transition_for(self, action: str):
        return self.machine_spec.find(self.state, action)

    def action_cost(self, action: str) -> float:
        """Fixed simulated seconds this driver charges for ``action``
        (handlers may consume more, e.g. downloads and unpacking)."""
        return self.action_seconds.get(action, 1.0)

    def estimated_cost(self, target: str) -> float:
        """Lower-bound cost of driving from the current state to
        ``target`` -- the parallel scheduler's critical-path estimate."""
        return sum(
            self.action_cost(transition.action)
            for transition in self.machine_spec.path_to(self.state, target)
        )

    #: Path of the per-machine audit log every action appends to.
    LOG_PATH = "/var/log/engage.log"

    def perform(self, action: str, *, timeout: Optional[float] = None) -> None:
        """Execute ``action``: run its implementation, advance the state,
        charge simulated time, and append to the machine's audit log.
        The runtime must have checked the guard already.

        ``timeout`` is the per-action budget granted by the caller's
        retry policy; an installed fault plan uses it to decide whether
        a hang merely slows the action or aborts it with
        :class:`~repro.core.errors.ActionTimeout`.  A fault fires
        *before* the handler runs, so a faulted action has no side
        effects and does not advance the state machine -- retries start
        from a clean slate.
        """
        transition = self.machine_spec.find(self.state, action)
        handler = getattr(self, f"do_{action}", None)
        if handler is None:
            raise DriverError(
                f"driver {type(self).__name__} does not implement "
                f"action {action!r}"
            )
        duration = self.action_cost(action)
        clock = self.context.infrastructure.clock
        clock.advance(duration, f"{action}:{self.context.instance.id}")
        plan = getattr(self.context.infrastructure, "fault_plan", None)
        try:
            if plan is not None:
                plan.fire(
                    f"driver:{self.context.instance.id}:{action}",
                    clock,
                    timeout=timeout,
                )
            handler()
        except Exception:
            self._log(action, transition.source, "FAILED")
            raise
        self.state = transition.target
        self._log(action, transition.source, transition.target)

    def _log(self, action: str, source: str, target: str) -> None:
        clock = self.context.infrastructure.clock
        self.context.machine.fs.append_file(
            self.LOG_PATH,
            f"[{clock.now:10.1f}] {self.context.instance.id}: "
            f"{action} ({source} -> {target})\n",
        )

    # -- Default no-op actions -------------------------------------------

    def do_install(self) -> None:
        """Default: nothing to do."""

    def do_start(self) -> None:
        """Default: nothing to do."""

    def do_stop(self) -> None:
        """Default: nothing to do."""

    def do_restart(self) -> None:
        self.do_stop()
        self.do_start()

    def do_uninstall(self) -> None:
        """Default: nothing to do."""


class DriverRegistry:
    """Maps the ``driver_name`` of resource types to driver classes."""

    def __init__(self) -> None:
        self._drivers: dict[str, Type[ResourceDriver]] = {}
        self._fallback: Optional[str] = None

    def register(self, name: str, driver_class: Type[ResourceDriver]) -> None:
        if name in self._drivers:
            raise DriverError(f"driver name already registered: {name!r}")
        self._drivers[name] = driver_class

    def set_fallback(self, name: str) -> None:
        """Use driver ``name`` for any unregistered driver name (the CLI
        sets this so DSL-defined resources deploy with generic drivers)."""
        if name not in self._drivers:
            raise DriverError(f"fallback driver not registered: {name!r}")
        self._fallback = name

    def has(self, name: str) -> bool:
        return name in self._drivers

    def create(self, name: str, context: DriverContext) -> ResourceDriver:
        driver_class = self._drivers.get(name)
        if driver_class is None and self._fallback is not None:
            driver_class = self._drivers[self._fallback]
        if driver_class is None:
            raise DriverError(f"no driver registered under {name!r}")
        return driver_class(context)

    def names(self) -> list[str]:
        return sorted(self._drivers)
