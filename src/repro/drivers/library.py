"""Generic, reusable drivers.

The paper notes that automating the Jasper JDBC connector needed "no
additional Python code ... as we were able to reuse existing generic
driver code for downloading and extracting archives".  These are those
generic drivers; the resource library subclasses them where a component
needs more than the generic behaviour.
"""

from __future__ import annotations

import re
from typing import Optional, Sequence

from repro.core.errors import DriverError
from repro.drivers.base import DriverContext, ResourceDriver
from repro.drivers.state_machine import (
    StateMachineSpec,
    machine_state_machine,
    package_state_machine,
)
from repro.sim.network import ConnectionRefused
from repro.sim.process import SimProcess


def package_slug(name: str) -> str:
    """Canonical artifact name for a resource-type name."""
    return re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-")


class NullDriver(ResourceDriver):
    """All actions are bookkeeping no-ops."""

    action_seconds = {
        "install": 0.0,
        "start": 0.0,
        "stop": 0.0,
        "restart": 0.0,
        "uninstall": 0.0,
    }

    def state_machine(self) -> StateMachineSpec:
        return package_state_machine()


class MachineDriver(ResourceDriver):
    """A machine: provisioning happened before deployment, so lifecycle
    actions only track state."""

    action_seconds = {
        "install": 0.0,
        "start": 0.0,
        "stop": 0.0,
        "uninstall": 0.0,
    }

    def state_machine(self) -> StateMachineSpec:
        return machine_state_machine()


class PackageDriver(ResourceDriver):
    """Installs an OS-level package via the machine's package manager.

    The artifact name defaults to the slug of the resource-type name and
    the version to the key's version; subclasses may override
    :attr:`package_name`.  Passive: no daemon is spawned.
    """

    package_name: Optional[str] = None
    install_root = "/opt"
    #: Artifact names that must be installed first (OSLPM-level deps).
    os_prerequisites: Sequence[str] = ()

    action_seconds = {
        "install": 2.0,  # plus download/unpack time charged by the OSLPM
        "start": 0.0,
        "stop": 0.0,
        "uninstall": 2.0,
    }

    def state_machine(self) -> StateMachineSpec:
        return package_state_machine()

    def artifact(self) -> tuple[str, str]:
        name = self.package_name or package_slug(self.context.instance.key.name)
        version = str(self.context.instance.key.version)
        return name, version

    def do_install(self) -> None:
        name, version = self.artifact()
        self.context.package_manager.install(
            name,
            version,
            prerequisites=self.os_prerequisites,
            install_root=self.install_root,
            owner=self.context.instance.id,
        )

    def do_uninstall(self) -> None:
        name, _ = self.artifact()
        if self.context.package_manager.is_installed(name):
            self.context.package_manager.remove(
                name, owner=self.context.instance.id
            )

    def install_path(self) -> str:
        name, _ = self.artifact()
        return self.context.package_manager.install_path(name)


class ArchiveDriver(PackageDriver):
    """Download-and-extract only (e.g. the MySQL JDBC connector)."""


class ServiceDriver(PackageDriver):
    """A long-running daemon: package install plus process management.

    On ``start`` the driver first *connects to its upstream endpoints* --
    the TCP addresses named in :meth:`upstream_endpoints` -- exactly the
    intermittent failure mode the paper warns about when dependencies
    have not completed startup.  A refused connection raises
    :class:`DriverError`, so a runtime that ignores guards fails loudly.
    """

    action_seconds = {
        "install": 5.0,
        "start": 5.0,
        "stop": 2.0,
        "restart": 7.0,
        "uninstall": 4.0,
    }

    def __init__(self, context: DriverContext) -> None:
        super().__init__(context)
        self._process: Optional[SimProcess] = None

    def state_machine(self) -> StateMachineSpec:
        from repro.drivers.state_machine import service_state_machine

        return service_state_machine()  # Figure 3, including restart

    # -- Overridables ------------------------------------------------------

    def service_name(self) -> str:
        return self.context.instance.id

    def listen_ports(self) -> Sequence[int]:
        """TCP ports the daemon binds.  Default: the ``port`` config."""
        port = self.context.config("port")
        return [port] if isinstance(port, int) else []

    def upstream_endpoints(self) -> Sequence[tuple[str, int]]:
        """(hostname, port) pairs that must accept connections before this
        service can start.  Default: none."""
        return []

    def write_config_files(self) -> None:
        """Hook: materialise configuration files during install."""

    # -- Actions ----------------------------------------------------------

    def do_install(self) -> None:
        super().do_install()
        self.write_config_files()

    def do_start(self) -> None:
        for hostname, port in self.upstream_endpoints():
            try:
                self.context.infrastructure.network.connect(hostname, port)
            except ConnectionRefused as exc:
                raise DriverError(
                    f"{self.context.instance.id}: dependency not reachable "
                    f"during startup: {exc}"
                ) from exc
        self._process = self.context.machine.spawn_process(
            self.service_name(),
            command=f"{self.service_name()} --daemon",
            listen_ports=self.listen_ports(),
            instance_id=self.context.instance.id,
        )

    def do_stop(self) -> None:
        if self._process is not None:
            self.context.machine.kill_process(self._process.pid)
            self._process = None

    def do_restart(self) -> None:
        self.do_stop()
        self.do_start()

    def do_uninstall(self) -> None:
        self.do_stop()
        super().do_uninstall()

    @property
    def process(self) -> Optional[SimProcess]:
        return self._process

    def adopt_process(self, process: SimProcess) -> None:
        """Take ownership of a replacement process (used by the monitor
        after it restarts a failed service)."""
        self._process = process

    def discard_process(self) -> None:
        """Forget the managed process without stopping it.

        Used when the machine hosting it is gone (permanent loss):
        there is nothing left to stop, and a later redeploy must not
        try to kill a pid on a dead host."""
        self._process = None
