"""Resource drivers: guarded state machines (S5.1, Figure 3) and the
generic driver library (packages, archives, services, machines)."""

from repro.drivers.base import DriverContext, DriverRegistry, ResourceDriver
from repro.drivers.library import (
    ArchiveDriver,
    MachineDriver,
    NullDriver,
    PackageDriver,
    ServiceDriver,
    package_slug,
)
from repro.drivers.state_machine import (
    ACTIVE,
    BASIC_STATES,
    INACTIVE,
    UNINSTALLED,
    Direction,
    GuardAtom,
    StateMachineSpec,
    Transition,
    down,
    machine_state_machine,
    package_state_machine,
    service_state_machine,
    up,
)

__all__ = [
    "ACTIVE",
    "BASIC_STATES",
    "INACTIVE",
    "UNINSTALLED",
    "ArchiveDriver",
    "Direction",
    "DriverContext",
    "DriverRegistry",
    "GuardAtom",
    "MachineDriver",
    "NullDriver",
    "PackageDriver",
    "ResourceDriver",
    "ServiceDriver",
    "StateMachineSpec",
    "Transition",
    "down",
    "machine_state_machine",
    "package_slug",
    "package_state_machine",
    "service_state_machine",
    "up",
]
