"""Driver state machines (S5.1, Figure 3).

A driver state machine is ``(Q, uninstalled, inactive, active, A, delta)``
with three distinguished *basic states*.  Transitions carry guards that
are conjunctions of basic-state predicates over the *upstream* (all
resource instances this one depends on) or *downstream* (all instances
depending on this one) neighbours:

* ``up(s)``   -- the paper's "⊑ s": every upstream machine is in basic
  state ``s``;
* ``down(s)`` -- the paper's "⊒ s": every downstream machine is in ``s``.

Figure 3's Tomcat machine is :func:`service_state_machine`:
``install`` (uninstalled -> inactive), ``start [up(active)]``
(inactive -> active), ``stop [down(inactive)]`` (active -> inactive),
``restart [up(active)]`` (active -> active), ``uninstall``
(inactive -> uninstalled).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable, Optional

from repro.core.errors import DriverError

UNINSTALLED = "uninstalled"
INACTIVE = "inactive"
ACTIVE = "active"
BASIC_STATES = (UNINSTALLED, INACTIVE, ACTIVE)


class Direction(Enum):
    """Which neighbourhood a guard predicate quantifies over."""

    UPSTREAM = "up"
    DOWNSTREAM = "down"


@dataclass(frozen=True)
class GuardAtom:
    """``up(s)`` or ``down(s)``: all neighbours in that direction are in
    basic state ``s``."""

    direction: Direction
    state: str

    def __post_init__(self) -> None:
        if self.state not in BASIC_STATES:
            raise DriverError(f"guards range over basic states, got {self.state!r}")

    def holds(self, neighbour_states: Iterable[str]) -> bool:
        return all(state == self.state for state in neighbour_states)

    def __str__(self) -> str:
        return f"{self.direction.value}({self.state})"


def up(state: str) -> GuardAtom:
    return GuardAtom(Direction.UPSTREAM, state)


def down(state: str) -> GuardAtom:
    return GuardAtom(Direction.DOWNSTREAM, state)


@dataclass(frozen=True)
class Transition:
    """A guarded action between two states."""

    action: str
    source: str
    target: str
    guard: tuple[GuardAtom, ...] = ()

    def guard_holds(
        self,
        upstream_states: Iterable[str],
        downstream_states: Iterable[str],
    ) -> bool:
        upstream = list(upstream_states)
        downstream = list(downstream_states)
        for atom in self.guard:
            neighbours = (
                upstream if atom.direction == Direction.UPSTREAM else downstream
            )
            if not atom.holds(neighbours):
                return False
        return True

    def __str__(self) -> str:
        guard = (
            " [" + " & ".join(str(a) for a in self.guard) + "]"
            if self.guard
            else ""
        )
        return f"{self.source} --{self.action}{guard}--> {self.target}"


class StateMachineSpec:
    """The set of states and guarded transitions of one driver."""

    def __init__(
        self,
        transitions: Iterable[Transition],
        *,
        initial: str = UNINSTALLED,
    ) -> None:
        self._transitions = list(transitions)
        self.initial = initial
        self.states: set[str] = set(BASIC_STATES)
        for transition in self._transitions:
            self.states.add(transition.source)
            self.states.add(transition.target)
        if initial not in self.states:
            raise DriverError(f"initial state {initial!r} has no transitions")
        # Reject nondeterminism: (state, action) picks one transition.
        seen: set[tuple[str, str]] = set()
        for transition in self._transitions:
            pair = (transition.source, transition.action)
            if pair in seen:
                raise DriverError(
                    f"duplicate transition {transition.action!r} from "
                    f"{transition.source!r}"
                )
            seen.add(pair)

    def transitions(self) -> list[Transition]:
        return list(self._transitions)

    def transitions_from(self, state: str) -> list[Transition]:
        return [t for t in self._transitions if t.source == state]

    def find(self, state: str, action: str) -> Transition:
        for transition in self._transitions:
            if transition.source == state and transition.action == action:
                return transition
        raise DriverError(
            f"no transition {action!r} from state {state!r}"
        )

    def has(self, state: str, action: str) -> bool:
        return any(
            t.source == state and t.action == action for t in self._transitions
        )

    def path_to(self, source: str, target: str) -> list[Transition]:
        """A shortest action sequence from ``source`` to ``target``.

        Used by the deployment engine to plan how to drive an instance to
        ``active`` (or back).  BFS over the transition relation.
        """
        if source == target:
            return []
        frontier: list[tuple[str, list[Transition]]] = [(source, [])]
        visited = {source}
        while frontier:
            state, path = frontier.pop(0)
            for transition in self.transitions_from(state):
                if transition.target in visited:
                    continue
                extended = path + [transition]
                if transition.target == target:
                    return extended
                visited.add(transition.target)
                frontier.append((transition.target, extended))
        raise DriverError(f"no path from {source!r} to {target!r}")


def service_state_machine() -> StateMachineSpec:
    """Figure 3: the lifecycle of a long-running service."""
    return StateMachineSpec(
        [
            Transition("install", UNINSTALLED, INACTIVE),
            Transition("start", INACTIVE, ACTIVE, (up(ACTIVE),)),
            Transition("restart", ACTIVE, ACTIVE, (up(ACTIVE),)),
            Transition("stop", ACTIVE, INACTIVE, (down(INACTIVE),)),
            Transition("uninstall", INACTIVE, UNINSTALLED),
        ]
    )


def package_state_machine() -> StateMachineSpec:
    """A passive package (library, archive): no daemon, so activation is
    immediate -- but still requires upstream components active, keeping
    the dependency discipline uniform."""
    return StateMachineSpec(
        [
            Transition("install", UNINSTALLED, INACTIVE),
            Transition("start", INACTIVE, ACTIVE, (up(ACTIVE),)),
            Transition("stop", ACTIVE, INACTIVE, (down(INACTIVE),)),
            Transition("uninstall", INACTIVE, UNINSTALLED),
        ]
    )


def machine_state_machine() -> StateMachineSpec:
    """A machine: installation is provisioning, performed before
    deployment, so install/start are unguarded no-op bookkeeping."""
    return StateMachineSpec(
        [
            Transition("install", UNINSTALLED, INACTIVE),
            Transition("start", INACTIVE, ACTIVE),
            Transition("stop", ACTIVE, INACTIVE, (down(INACTIVE),)),
            Transition("uninstall", INACTIVE, UNINSTALLED),
        ]
    )
