"""The ``engage-sim`` command-line interface.

The paper's Engage was a command-line deployment tool; this module is
the reproduction's equivalent, driving the whole pipeline from files:

* ``check``      parse DSL files, run well-formedness and report;
* ``configure``  expand a JSON partial spec to a full spec;
* ``graph``      print the dependency hypergraph (Figure 5 style);
* ``explain``    diagnose an unsatisfiable partial spec;
* ``deploy``     configure and run a simulated deployment (optionally
  traced: ``--trace FILE`` / ``--metrics``);
* ``trace``      render a saved bundle as Chrome trace-event JSON, or
  validate an existing trace file.

Every command accepts ``--types FILE ...`` to load DSL resource files;
by default the built-in standard library is preloaded (disable with
``--no-stdlib``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence, TextIO

from repro.core import ResourceTypeRegistry, check_registry
from repro.core.errors import EngageError
from repro.config import (
    ConfigurationEngine,
    ConfigurationSession,
    explain_message,
    generate_graph,
)
from repro.dsl import (
    full_to_json,
    line_count,
    load_resources,
    partial_from_json,
    partial_to_json,
)
from repro.library import (
    ensure_artifact,
    standard_drivers,
    standard_infrastructure,
    standard_registry,
)
from repro.runtime import DeploymentEngine, provision_partial_spec


def _build_registry(args) -> ResourceTypeRegistry:
    registry = (
        ResourceTypeRegistry() if args.no_stdlib else standard_registry()
    )
    for path in args.types or ():
        with open(path, "r", encoding="utf-8") as handle:
            load_resources(handle.read(), registry)
    return registry


def _read_partial(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return partial_from_json(handle.read())


def cmd_check(args, out: TextIO) -> int:
    registry = _build_registry(args)
    problems = check_registry(registry)
    out.write(f"{len(registry)} resource types loaded\n")
    if problems:
        out.write("well-formedness problems:\n")
        for problem in problems:
            out.write(f"  {problem}\n")
        return 1
    out.write("well-formed.\n")
    return 0


def _run_stats(path: str, result) -> dict:
    """One configure call's stats, JSON-shaped (for --stats-json)."""
    import dataclasses

    payload = {
        "partial": path,
        "instances": len(result.spec),
        "timings": dataclasses.asdict(result.timings),
        "constraint_stats": dataclasses.asdict(result.constraint_stats),
        "solver_stats": dataclasses.asdict(result.solver_stats),
        "cache": (
            dataclasses.asdict(result.cache)
            if result.cache is not None else None
        ),
        "partition": None,
    }
    if result.partition is not None:
        info = result.partition
        payload["partition"] = {
            "count": info.count,
            "largest": info.largest,
            "partition_ms": info.partition_ms,
            "workers": info.workers,
            "wire": (
                dataclasses.asdict(info.wire)
                if info.wire is not None else None
            ),
            "components": [
                dataclasses.asdict(component)
                for component in info.components
            ],
        }
    return payload


def _write_stats_json(path: str, runs: list, out: TextIO) -> None:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"runs": runs}, handle, indent=1)
        handle.write("\n")
    out.write(f"stats written to {path} ({len(runs)} run(s))\n")


def cmd_configure(args, out: TextIO) -> int:
    registry = _build_registry(args)
    paths = args.partial
    workers = args.workers
    if workers is not None and args.partition is False:
        out.write(
            "error: --workers requires partitioned configuration "
            "(drop --no-partition)\n"
        )
        return 2
    partition = (
        bool(args.partition) if args.partition is not None
        else workers is not None
    )
    runs: list = []
    if not args.session:
        if len(paths) > 1 or args.repeat != 1:
            out.write(
                "error: multiple partial specs / --repeat require --session\n"
            )
            return 2
        partial = _read_partial(paths[0])
        engine = ConfigurationEngine(
            registry, verify_registry=not args.no_verify,
            partition=partition, workers=workers,
        )
        try:
            result = engine.configure(partial)
        finally:
            engine.close()
        if args.stats_json:
            _write_stats_json(
                args.stats_json, [_run_stats(paths[0], result)], out
            )
        return _write_full_spec(result, args, out)
    if args.output and len(paths) > 1:
        out.write("error: --output only works with a single partial spec\n")
        return 2
    partials = [_read_partial(path) for path in paths]
    session = ConfigurationSession(
        registry, verify_registry=not args.no_verify,
        partition=partition, workers=workers,
    )
    result = None
    try:
        for round_number in range(args.repeat):
            for path, partial in zip(paths, partials):
                result = session.configure(partial)
                if args.stats_json:
                    runs.append(_run_stats(path, result))
                cache = result.cache
                flags = ", ".join(
                    name
                    for name, on in (
                        ("graph-hit", cache.graph_hit),
                        ("cnf-hit", cache.cnf_hit),
                        ("solver-reused", cache.solver_reused),
                        ("spec-reused", cache.typecheck_skipped),
                    )
                    if on
                ) or "cold"
                components = ""
                if result.partition is not None:
                    components = f", {result.partition.count} components"
                    if result.partition.workers:
                        components += (
                            f" on {result.partition.workers} workers"
                        )
                out.write(
                    f"[{round_number + 1}] {path}: "
                    f"{len(result.spec)} instances "
                    f"in {result.timings.total_ms:.2f} ms "
                    f"({flags}{components})\n"
                )
    finally:
        session.close()
    stats = session.stats
    out.write(
        f"session: {stats.configure_calls} calls, "
        f"{stats.graph_hits} graph hits / {stats.graph_misses} misses, "
        f"{stats.solver_reuses} solver reuses, "
        f"{stats.typecheck_skips} spec reuses\n"
    )
    if args.stats_json:
        _write_stats_json(args.stats_json, runs, out)
    if args.output and result is not None:
        return _write_full_spec(result, args, out)
    return 0


def _write_full_spec(result, args, out: TextIO) -> int:
    text = full_to_json(result.spec)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        out.write(
            f"wrote {len(result.spec)} instances "
            f"({line_count(text)} lines) to {args.output}\n"
        )
        if result.partition is not None:
            info = result.partition
            pool = (
                f" on {info.workers} workers" if info.workers else ""
            )
            out.write(
                f"partitioned: {info.count} components "
                f"(largest {info.largest} nodes){pool}\n"
            )
    else:
        out.write(text)
    return 0


def cmd_graph(args, out: TextIO) -> int:
    registry = _build_registry(args)
    partial = _read_partial(args.partial)
    graph = generate_graph(registry, partial)
    if getattr(args, "dot", False):
        from repro.dsl import graph_to_dot

        out.write(graph_to_dot(graph))
        return 0
    out.write(f"{len(graph)} instance nodes:\n")
    for node in graph.nodes():
        marker = " *" if node.from_partial else ""
        out.write(f"  {node.instance_id}: {node.key}{marker}\n")
    out.write(f"{len(graph.edges())} hyperedges:\n")
    for edge in graph.edges():
        out.write(f"  {edge}\n")
    return 0


def cmd_explain(args, out: TextIO) -> int:
    registry = _build_registry(args)
    partial = _read_partial(args.partial)
    message = explain_message(registry, partial)
    if message is None:
        out.write("satisfiable: a full installation specification exists.\n")
        return 0
    out.write(message + "\n")
    return 1


def _ordered_types(registry: ResourceTypeRegistry) -> list:
    """Raw types ordered so supertypes precede subtypes (reloadable)."""
    emitted: list = []
    done: set = set()
    pending = [registry.raw(key) for key in registry.keys()]
    while pending:
        progressed = False
        remaining = []
        for resource_type in pending:
            if resource_type.extends is None or resource_type.extends in done:
                emitted.append(resource_type)
                done.add(resource_type.key)
                progressed = True
            else:
                remaining.append(resource_type)
        pending = remaining
        if not progressed:  # extends chain outside the registry
            emitted.extend(pending)
            break
    return emitted


def cmd_render(args, out: TextIO) -> int:
    """Pretty-print every loaded resource type back to DSL text."""
    from repro.dsl import format_module

    registry = _build_registry(args)
    out.write(format_module(_ordered_types(registry)))
    return 0


def cmd_dimacs(args, out: TextIO) -> int:
    """Emit the generated Boolean constraints in DIMACS CNF."""
    from repro.config import generate_constraints
    from repro.sat import dimacs_text

    registry = _build_registry(args)
    partial = _read_partial(args.partial)
    graph = generate_graph(registry, partial)
    formula, stats = generate_constraints(graph)
    out.write(dimacs_text(formula))
    out.write(
        f"c {stats.variables} vars, {stats.clauses} clauses, "
        f"{stats.facts} facts, {stats.hyperedges} hyperedges\n"
    )
    return 0


BUNDLE_FORMAT = "engage-bundle-1"


def _save_bundle(
    path: str, registry, infrastructure, system, journal=None
) -> None:
    """Persist world + deployment state + resource types in one file.

    With ``journal`` the embedded state uses the resumable
    ``engage-state-2`` format (``engage-sim deploy --resume``).
    """
    import json

    from repro.dsl import format_module
    from repro.runtime import save_system
    from repro.sim import save_world

    bundle = {
        "format": BUNDLE_FORMAT,
        "types": format_module(_ordered_types(registry)),
        "world": json.loads(save_world(infrastructure)),
        "state": json.loads(save_system(system, journal)),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=1)
        handle.write("\n")


def _load_bundle(path: str):
    """Rebuild (registry, infrastructure, drivers, system, journal)
    from a bundle; ``journal`` is ``None`` for non-resumable bundles."""
    import json

    from repro.core.errors import RuntimeEngageError
    from repro.runtime import load_system_and_journal
    from repro.sim import load_world

    with open(path, "r", encoding="utf-8") as handle:
        try:
            bundle = json.load(handle)
        except json.JSONDecodeError as exc:
            raise RuntimeEngageError(f"malformed bundle: {exc}") from exc
    if not isinstance(bundle, dict) or bundle.get("format") != BUNDLE_FORMAT:
        found = bundle.get("format") if isinstance(bundle, dict) else bundle
        raise RuntimeEngageError(f"unsupported bundle format: {found!r}")
    registry = ResourceTypeRegistry()
    load_resources(bundle["types"], registry)
    infrastructure = load_world(json.dumps(bundle["world"]))
    drivers = standard_drivers()
    drivers.set_fallback("service")
    system, journal = load_system_and_journal(
        registry, infrastructure, drivers, json.dumps(bundle["state"])
    )
    return registry, infrastructure, drivers, system, journal


def cmd_status(args, out: TextIO) -> int:
    _, infrastructure, _, system, journal = _load_bundle(args.bundle)
    if getattr(args, "json", False):
        import json

        from repro.drivers.state_machine import ACTIVE
        from repro.runtime import detect_drift

        target = journal.target if journal is not None else ACTIVE
        drift = detect_drift(system, target=target)
        payload = {
            "bundle": args.bundle,
            "clock_seconds": infrastructure.clock.now,
            "converged": drift.is_converged,
            "instances": system.states(),
            "drift": drift.to_payload(),
            "journal": None,
        }
        if journal is not None:
            payload["journal"] = {
                "target": journal.target,
                "entries": len(journal.entries),
                "completed": len(journal.completed),
                "failed": sorted(journal.failed),
                "skipped": sorted(journal.skipped),
                "frontier": journal.states(),
                "diff": journal.diff(system.spec).to_payload(),
            }
        out.write(json.dumps(payload, indent=1) + "\n")
        return 0 if drift.is_converged else 1
    out.write(system.describe() + "\n")
    out.write(
        f"simulated clock: {infrastructure.clock.now / 60:.1f} minutes\n"
    )
    return 0 if system.is_deployed() else 1


def cmd_stop(args, out: TextIO) -> int:
    registry, infrastructure, drivers, system, _ = _load_bundle(args.bundle)
    DeploymentEngine(registry, infrastructure, drivers).shutdown(system)
    _save_bundle(args.bundle, registry, infrastructure, system)
    out.write("stopped; bundle updated.\n")
    return 0


def cmd_start(args, out: TextIO) -> int:
    registry, infrastructure, drivers, system, _ = _load_bundle(args.bundle)
    DeploymentEngine(registry, infrastructure, drivers).start(system)
    _save_bundle(args.bundle, registry, infrastructure, system)
    out.write("started; bundle updated.\n")
    return 0 if system.is_deployed() else 1


def _load_goal_partial(args, registry, infrastructure):
    """Merge ``--types`` into a bundle's registry, publish any new
    artifacts, and read + provision the new goal's partial spec --
    shared by ``upgrade``, ``plan``, and ``deploy --delta``."""
    from repro.dsl import lower_module, parse_module

    for path in getattr(args, "types", None) or ():
        with open(path, "r", encoding="utf-8") as handle:
            # Skip types the bundle already carries (same key).
            for resource_type in lower_module(
                parse_module(handle.read()), registry
            ):
                if not registry.has(resource_type.key):
                    registry.register(resource_type)
    _publish_missing_artifacts(registry, infrastructure)
    partial = _read_partial(args.partial)
    return provision_partial_spec(registry, partial, infrastructure)


def cmd_upgrade(args, out: TextIO) -> int:
    """Upgrade a saved deployment to a new partial specification."""
    from repro.runtime import UpgradeEngine

    registry, infrastructure, drivers, system, _ = _load_bundle(args.bundle)
    partial = _load_goal_partial(args, registry, infrastructure)
    config_engine = ConfigurationEngine(registry, verify_registry=False)
    deploy_engine = DeploymentEngine(registry, infrastructure, drivers)
    upgrader = UpgradeEngine(config_engine, deploy_engine)
    result = upgrader.upgrade(system, partial, strategy=args.strategy)
    if result.succeeded:
        changed = (
            result.diff.upgraded + result.diff.reconfigured
            + result.diff.moved
        )
        out.write(
            f"upgrade succeeded ({args.strategy}); "
            f"changed: {changed}, "
            f"added: {result.diff.added}, removed: {result.diff.removed}\n"
        )
    else:
        out.write(
            f"upgrade FAILED and was rolled back: {result.error}\n"
        )
    _save_bundle(args.bundle, registry, infrastructure, result.system)
    out.write("bundle updated.\n")
    return 0 if result.succeeded else 1


def cmd_plan(args, out: TextIO) -> int:
    """Dry-run a delta transition: print the plan as JSON, touch
    nothing."""
    import json

    from repro.runtime import plan_delta

    registry, infrastructure, _, system, _ = _load_bundle(args.bundle)
    partial = _load_goal_partial(args, registry, infrastructure)
    config_engine = ConfigurationEngine(registry, verify_registry=False)
    new_spec = config_engine.configure(partial).spec
    delta = plan_delta(system, new_spec)
    payload = delta.to_payload()
    payload["bundle"] = args.bundle
    text = json.dumps(payload, indent=1) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        out.write(
            f"plan written to {args.output} ({len(delta)} step(s) for a "
            f"{len(new_spec)}-instance goal)\n"
        )
    else:
        out.write(text)
    return 0


def cmd_inject_fault(args, out: TextIO) -> int:
    """Fail a running service process (testing/chaos helper)."""
    registry, infrastructure, drivers, system, _ = _load_bundle(args.bundle)
    driver = system.drivers.get(args.instance)
    if driver is None:
        out.write(f"error: no instance {args.instance!r}\n")
        return 2
    process = getattr(driver, "process", None)
    if process is None or not process.is_running():
        out.write(f"error: {args.instance!r} has no running process\n")
        return 2
    process.fail()
    machine = system.machine_for(args.instance)
    _save_bundle(args.bundle, registry, infrastructure, system)
    out.write(
        f"failed process {process.name!r} (instance {args.instance!r}) "
        f"on {machine.hostname}; bundle updated.\n"
    )
    return 0


def cmd_watch(args, out: TextIO) -> int:
    """One monitoring pass: restart every failed service (monit)."""
    from repro.runtime import ProcessMonitor

    registry, infrastructure, drivers, system, _ = _load_bundle(args.bundle)
    monitor = ProcessMonitor(system)
    events = monitor.poll()
    for event in events:
        out.write(
            f"restarted {event.process_name} (instance "
            f"{event.instance_id})\n"
        )
    if not events:
        out.write("all services healthy.\n")
    _save_bundle(args.bundle, registry, infrastructure, system)
    return 0


def cmd_reconcile(args, out: TextIO) -> int:
    """Run the autonomic reconcile loop against a saved deployment."""
    import json

    from repro.runtime import ReconcileController
    from repro.sim import MachineChurn

    registry, infrastructure, drivers, system, journal = _load_bundle(
        args.bundle
    )
    tracer = _install_tracer(args, infrastructure)
    policy = _retry_policy_from_args(args)
    engine = DeploymentEngine(registry, infrastructure, drivers)
    churn = None
    if args.churn_rate > 0.0:
        churn = MachineChurn(
            system, seed=args.churn_seed, rate=args.churn_rate
        )
        out.write(
            f"churn: losing machines (seed={args.churn_seed}, "
            f"rate={args.churn_rate})\n"
        )
    watching = args.watch or churn is not None
    controller = ReconcileController(
        engine, system, journal=journal, policy=policy,
        jobs=args.jobs, jobs_per_host=args.jobs_per_host,
        interval=args.interval if watching else 0.0,
    )
    rounds = args.max_rounds if watching else 1
    result = controller.run(rounds=rounds, churn=churn)
    for round_ in result.rounds:
        status = "converged" if round_.converged else "DRIFTED"
        detail = ""
        if round_.drift_items:
            kinds = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(round_.drift_by_kind.items())
            )
            detail = (
                f" drift={round_.drift_items} ({kinds}) "
                f"plan={round_.plan_size} "
                f"repair={round_.time_to_repair:.1f}s"
            )
        if round_.error:
            detail += f" error: {round_.error}"
        out.write(f"round {round_.index}: {status}{detail}\n")
    if result.rounds_with_drift:
        out.write(
            f"median time-to-repair: "
            f"{result.median_time_to_repair:.1f}s over "
            f"{result.rounds_with_drift} drifted round(s)\n"
        )
    if args.json:
        out.write(json.dumps(result.to_payload(), indent=1) + "\n")
    _finish_trace(args, tracer, out)
    if result.converged:
        _save_bundle(args.bundle, registry, infrastructure, system, journal)
        out.write("converged; bundle updated.\n")
        return 0
    out.write("NOT converged; bundle left untouched.\n")
    return 1


def _publish_missing_artifacts(registry, infrastructure) -> None:
    from repro.drivers import package_slug

    for key in registry.keys():
        resource_type = registry.effective(key)
        if not resource_type.abstract and not resource_type.is_machine():
            ensure_artifact(
                infrastructure, package_slug(key.name), str(key.version)
            )


def _retry_policy_from_args(args):
    """A RetryPolicy when any retry flag was given, else None."""
    from repro.runtime import RetryPolicy

    if not (
        args.max_retries > 0
        or args.backoff is not None
        or args.timeout is not None
    ):
        return None
    return RetryPolicy(
        max_attempts=args.max_retries + 1,
        backoff_base=args.backoff if args.backoff is not None else 1.0,
        action_timeout=args.timeout,
    )


def _install_tracer(args, infrastructure):
    """A Tracer on the infrastructure when --trace/--metrics was given."""
    if not (getattr(args, "trace", None) or getattr(args, "metrics", False)):
        return None
    from repro.obs import Tracer

    tracer = Tracer(clock=infrastructure.clock)
    infrastructure.set_tracer(tracer)
    return tracer


def _finish_trace(args, tracer, out: TextIO) -> None:
    """Write the trace file and/or metrics summary after a deploy."""
    if tracer is None:
        return
    if args.trace:
        from repro.obs import write_trace

        write_trace(args.trace, tracer)
        out.write(
            f"trace written to {args.trace} ({len(tracer)} events)\n"
        )
    if args.metrics:
        out.write(tracer.metrics.render())


def _install_chaos(args, infrastructure, out: TextIO) -> None:
    """Install a seeded fault plan when --chaos-rate was given."""
    if getattr(args, "chaos_rate", 0.0) > 0.0:
        from repro.sim import FaultPlan

        infrastructure.set_fault_plan(
            FaultPlan.seeded(args.chaos_seed, args.chaos_rate)
        )
        out.write(
            f"chaos: injecting faults (seed={args.chaos_seed}, "
            f"rate={args.chaos_rate})\n"
        )


def _write_deploy_outcome(system, infrastructure, out: TextIO) -> None:
    out.write("deployment state:\n")
    for instance in system.spec.topological_order():
        out.write(
            f"  {instance.id:<16} {str(instance.key):<28} "
            f"{system.state_of(instance.id)}\n"
        )
    report = system.report
    if report is not None and report.retries:
        out.write(
            f"recovered from {report.retries} failed attempt(s), "
            f"{report.total_backoff_seconds:.1f}s total backoff\n"
        )
    if report is not None and report.jobs is not None:
        jobs_label = "unbounded" if report.jobs == 0 else str(report.jobs)
        speedup = (
            report.sequential_seconds / report.makespan_seconds
            if report.makespan_seconds > 0
            else 1.0
        )
        out.write(
            f"parallel deploy (jobs={jobs_label}): makespan "
            f"{report.makespan_seconds:.1f}s vs sequential "
            f"{report.sequential_seconds:.1f}s "
            f"(speedup {speedup:.2f}x, critical path "
            f"{report.critical_path_seconds:.1f}s)\n"
        )
    out.write(
        f"simulated time: {infrastructure.clock.now / 60:.1f} minutes\n"
    )


def _write_failure(failure, out: TextIO) -> None:
    out.write(f"deployment FAILED: {failure}\n")
    out.write(f"  completed: {sorted(failure.completed)}\n")
    out.write(f"  failed:    {sorted(failure.failed)}\n")
    out.write(f"  skipped:   {sorted(failure.skipped)}\n")
    if failure.report is not None and failure.report.retries:
        out.write(
            f"  attempts:  {failure.report.retries} failed attempt(s), "
            f"{failure.report.total_backoff_seconds:.1f}s total backoff\n"
        )


def _bus_chaos_from_args(args):
    """A BusChaos schedule (or None) from the ``--partition-at`` /
    ``--failover-at`` / ``--crash-slave`` family of flags."""
    from repro.runtime import BusChaos

    if (
        args.partition_at is None
        and args.failover_at is None
        and not args.crash_slave
    ):
        return None
    return BusChaos(
        partition_at=args.partition_at,
        partition_for=args.partition_for,
        crash_machine=args.crash_slave,
        crash_after_actions=args.crash_after,
        crash_down_for=args.rejoin_after,
        failover_at=args.failover_at,
    )


def _deploy_over_bus(
    args, registry, infrastructure, drivers, spec, policy, tracer, out
) -> int:
    """Run the deployment through the message-bus control plane."""
    from repro.core.errors import DeploymentError
    from repro.runtime import BusCoordinator
    from repro.sim.faults import LinkFaultPlan

    faults = None
    if args.bus_drop or args.bus_dup or args.bus_jitter:
        faults = LinkFaultPlan(
            args.bus_seed,
            drop=args.bus_drop,
            duplicate=args.bus_dup,
            jitter=args.bus_jitter,
        )
    coordinator = BusCoordinator(
        registry, infrastructure, drivers, link_faults=faults
    )
    try:
        deployment = coordinator.deploy(
            spec,
            policy=policy,
            jobs=args.jobs,
            jobs_per_host=args.jobs_per_host,
            chaos=_bus_chaos_from_args(args),
        )
    except DeploymentError as error:
        out.write(f"bus deployment FAILED: {error}\n")
        _finish_trace(args, tracer, out)
        return 1
    report = deployment.report
    out.write("deployment state:\n")
    states = deployment.states()
    for instance in spec.topological_order():
        out.write(
            f"  {instance.id:<16} {str(instance.key):<28} "
            f"{states[instance.id]}\n"
        )
    stats = report.bus_stats
    out.write(
        f"bus: {stats['total_sent']} messages sent, "
        f"{stats['total_delivered']} delivered, "
        f"{stats['dropped']} dropped, "
        f"{stats['partition_losses']} lost to partitions\n"
    )
    out.write(
        f"control plane: {report.retransmits} retransmit(s), "
        f"{report.redundant_acks} redundant ack(s), "
        f"{report.crashes} crash(es), {len(report.rejoins)} rejoin(s), "
        f"masters: {', '.join(report.masters)}\n"
    )
    if report.partition is not None:
        out.write(
            f"partition: at {report.partition['at']:.1f}s for "
            f"{report.partition['for']:.1f}s "
            f"({', '.join(report.partition['slaves'])})\n"
        )
    if report.failover is not None:
        out.write(
            f"failover: {report.failover['master']} adopted at "
            f"{report.failover['at']:.1f}s\n"
        )
    out.write(
        f"waves: {len(report.waves)}; makespan "
        f"{report.parallel_makespan_seconds:.1f}s vs sequential "
        f"{report.sequential_seconds:.1f}s\n"
    )
    out.write(
        f"simulated time: {infrastructure.clock.now / 60:.1f} minutes\n"
    )
    if args.save:
        engine = DeploymentEngine(registry, infrastructure, drivers)
        system = deployment.merged_system(engine)
        _save_bundle(
            args.save, registry, infrastructure, system, system.journal
        )
        out.write(f"bundle saved to {args.save}\n")
    _finish_trace(args, tracer, out)
    return 0 if deployment.is_deployed() else 1


def cmd_deploy(args, out: TextIO) -> int:
    from repro.core.errors import DeploymentFailure

    policy = _retry_policy_from_args(args)

    if args.delta:
        if not args.partial:
            out.write(
                "error: a partial spec (the new goal) is required with "
                "--delta\n"
            )
            return 2
        from repro.runtime import execute_delta, plan_delta

        registry, infrastructure, drivers, system, _ = _load_bundle(
            args.delta
        )
        tracer = _install_tracer(args, infrastructure)
        partial = _load_goal_partial(args, registry, infrastructure)
        config_engine = ConfigurationEngine(registry, verify_registry=False)
        new_spec = config_engine.configure(partial).spec
        delta = plan_delta(system, new_spec)
        by_op = ", ".join(
            f"{op}: {count}" for op, count in sorted(delta.plan.by_op().items())
        )
        out.write(
            f"delta plan: {len(delta)} step(s) toward a "
            f"{len(new_spec)}-instance goal"
            + (f" ({by_op})" if by_op else " (nothing to do)")
            + "\n"
        )
        _install_chaos(args, infrastructure, out)
        engine = DeploymentEngine(registry, infrastructure, drivers)
        save_to = args.save or args.delta
        try:
            result = execute_delta(
                engine, system, delta,
                policy=policy, jobs=args.jobs,
                jobs_per_host=args.jobs_per_host,
            )
        except DeploymentFailure as failure:
            _write_failure(failure, out)
            _save_bundle(
                save_to, registry, infrastructure, failure.system,
                failure.journal,
            )
            out.write(
                f"resumable bundle saved to {save_to} "
                f"(finish with: deploy --resume {save_to})\n"
            )
            _finish_trace(args, tracer, out)
            return 1
        system = result.system
        _write_deploy_outcome(system, infrastructure, out)
        _finish_trace(args, tracer, out)
        _save_bundle(
            save_to, registry, infrastructure, system, result.journal
        )
        out.write(f"bundle saved to {save_to}\n")
        return 0 if system.is_deployed() else 1

    if args.resume:
        registry, infrastructure, drivers, system, journal = _load_bundle(
            args.resume
        )
        if journal is None:
            out.write(
                f"error: {args.resume} has no deployment journal to "
                "resume from\n"
            )
            return 2
        tracer = _install_tracer(args, infrastructure)
        _install_chaos(args, infrastructure, out)
        engine = DeploymentEngine(registry, infrastructure, drivers)
        out.write(
            f"resuming: {len(journal.completed)} of "
            f"{len(journal.spec)} instances already deployed\n"
        )
        save_to = args.save or args.resume
        try:
            system = engine.resume(
                journal,
                policy=policy,
                jobs=args.jobs,
                jobs_per_host=args.jobs_per_host,
            )
        except DeploymentFailure as failure:
            _write_failure(failure, out)
            _save_bundle(
                save_to, registry, infrastructure, failure.system,
                failure.journal,
            )
            out.write(f"resumable bundle saved to {save_to}\n")
            _finish_trace(args, tracer, out)
            return 1
        _write_deploy_outcome(system, infrastructure, out)
        _finish_trace(args, tracer, out)
        _save_bundle(
            save_to, registry, infrastructure, system, system.journal
        )
        out.write(f"bundle saved to {save_to}\n")
        return 0 if system.is_deployed() else 1

    if not args.partial:
        out.write("error: a partial spec is required (or use --resume)\n")
        return 2
    registry = _build_registry(args)
    partial = _read_partial(args.partial)
    infrastructure = standard_infrastructure()
    tracer = _install_tracer(args, infrastructure)
    # Make sure DSL-defined packages have downloadable artifacts.
    _publish_missing_artifacts(registry, infrastructure)
    drivers = standard_drivers()
    drivers.set_fallback("service")

    partial = provision_partial_spec(registry, partial, infrastructure)
    engine = ConfigurationEngine(
        registry, verify_registry=not args.no_verify, tracer=tracer
    )
    result = engine.configure(partial)
    out.write(
        f"configured {len(result.spec)} instances from "
        f"{len(partial)} in the partial specification\n"
    )
    _install_chaos(args, infrastructure, out)
    if args.bus:
        return _deploy_over_bus(
            args, registry, infrastructure, drivers, result.spec,
            policy, tracer, out,
        )
    deploy = DeploymentEngine(registry, infrastructure, drivers)
    try:
        system = deploy.deploy(
            result.spec,
            policy=policy,
            jobs=args.jobs,
            jobs_per_host=args.jobs_per_host,
        )
    except DeploymentFailure as failure:
        _write_failure(failure, out)
        if args.save:
            _save_bundle(
                args.save, registry, infrastructure, failure.system,
                failure.journal,
            )
            out.write(
                f"resumable bundle saved to {args.save} "
                f"(finish with: deploy --resume {args.save})\n"
            )
        _finish_trace(args, tracer, out)
        return 1
    _write_deploy_outcome(system, infrastructure, out)
    if args.save:
        _save_bundle(
            args.save, registry, infrastructure, system, system.journal
        )
        out.write(f"bundle saved to {args.save}\n")
    _finish_trace(args, tracer, out)
    return 0 if system.is_deployed() else 1


def cmd_trace(args, out: TextIO) -> int:
    """Render a saved bundle's history into a Chrome trace file, or
    validate an existing trace file against the schema."""
    import json

    from repro.obs import (
        chrome_trace,
        trace_from_clock_events,
        validate_chrome_trace,
    )

    if args.validate:
        with open(args.validate, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                out.write(f"invalid trace: not JSON ({exc})\n")
                return 1
        problems = validate_chrome_trace(payload)
        if problems:
            out.write("invalid Chrome trace:\n")
            for problem in problems:
                out.write(f"  {problem}\n")
            return 1
        out.write(
            f"valid Chrome trace: "
            f"{len(payload['traceEvents'])} events\n"
        )
        return 0

    if not args.bundle:
        out.write("error: a bundle is required (or use --validate)\n")
        return 2
    _, infrastructure, _, system, journal = _load_bundle(args.bundle)
    host_of = {
        instance.id: system.machine_for(instance.id).hostname
        for instance in system.spec
    }
    events = trace_from_clock_events(
        infrastructure.clock.events(),
        journal_entries=journal.entries if journal is not None else (),
        lane_of=host_of,
    )
    payload = chrome_trace(events, metadata={"bundle": args.bundle})
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=1) + "\n")
        out.write(
            f"trace written to {args.output} ({len(events)} events)\n"
        )
    else:
        out.write(json.dumps(payload, indent=1) + "\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="engage-sim",
        description="Engage deployment management (PLDI 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, with_partial: bool = True):
        p.add_argument(
            "--types", action="append", metavar="FILE", default=[],
            help="a DSL resource file to load (repeatable)",
        )
        p.add_argument(
            "--no-stdlib", action="store_true",
            help="do not preload the built-in resource library",
        )
        p.add_argument(
            "--no-verify", action="store_true",
            help="skip registry well-formedness verification",
        )
        if with_partial:
            p.add_argument(
                "partial", metavar="PARTIAL_SPEC.json",
                help="partial installation specification (Figure 2 JSON)",
            )

    check = sub.add_parser("check", help="validate DSL resource files")
    common(check, with_partial=False)

    configure = sub.add_parser(
        "configure", help="expand a partial spec to a full spec"
    )
    common(configure, with_partial=False)
    configure.add_argument(
        "partial", metavar="PARTIAL_SPEC.json", nargs="+",
        help="partial installation specification(s) (Figure 2 JSON)",
    )
    configure.add_argument(
        "-o", "--output", metavar="FILE", help="write the full spec here"
    )
    configure.add_argument(
        "--session", action="store_true",
        help="run through an incremental ConfigurationSession and report "
        "per-call timing and cache hits",
    )
    configure.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="with --session: configure each partial spec N times",
    )
    configure.add_argument(
        "--partition", dest="partition", action="store_true", default=None,
        help="split the hypergraph into connected components and solve "
        "each independently (bit-identical result, faster on fleets)",
    )
    configure.add_argument(
        "--no-partition", dest="partition", action="store_false",
        help="force the monolithic single-formula pipeline (default)",
    )
    configure.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="solve the partitioned components on a persistent process "
        "pool of N workers (0 = one per core; implies --partition; "
        "bit-identical result)",
    )
    configure.add_argument(
        "--stats-json", dest="stats_json", metavar="FILE",
        help="write phase timings and per-component stats for every "
        "configure call as JSON",
    )

    graph = sub.add_parser("graph", help="print the dependency hypergraph")
    common(graph)
    graph.add_argument(
        "--dot", action="store_true",
        help="emit Graphviz DOT instead of text (Figure 5 style)",
    )

    explain = sub.add_parser(
        "explain", help="diagnose an unsatisfiable partial spec"
    )
    common(explain)

    deploy = sub.add_parser(
        "deploy", help="configure and run a simulated deployment"
    )
    common(deploy, with_partial=False)
    deploy.add_argument(
        "partial", metavar="PARTIAL_SPEC.json", nargs="?",
        help="partial installation specification (Figure 2 JSON); "
        "omit when using --resume",
    )
    deploy.add_argument(
        "--save", metavar="BUNDLE",
        help="persist world + deployment for later status/stop/start; "
        "on failure the bundle is resumable",
    )
    deploy.add_argument(
        "--resume", metavar="BUNDLE",
        help="resume an interrupted deployment from its journal "
        "(a bundle written by a failed 'deploy --save')",
    )
    deploy.add_argument(
        "--delta", metavar="BUNDLE",
        help="transition the deployment saved in BUNDLE to the given "
        "partial spec by planning only the difference (journalled and "
        "resumable, unlike 'upgrade'); saves back to BUNDLE unless "
        "--save is given",
    )
    deploy.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retry each failing driver action up to N times "
        "(transient faults only; default 0)",
    )
    deploy.add_argument(
        "--backoff", type=float, default=None, metavar="SECONDS",
        help="base backoff between retries (exponential, deterministic "
        "jitter; default 1.0 when retries are enabled)",
    )
    deploy.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-action simulated-time budget; hung actions are "
        "abandoned (and retried) after this long",
    )
    deploy.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="deploy with the event-driven parallel scheduler using N "
        "simulated workers (0 = unbounded; default: serial)",
    )
    deploy.add_argument(
        "--jobs-per-host", type=int, default=None, metavar="N",
        help="with --jobs: at most N concurrent instances per target "
        "machine",
    )
    deploy.add_argument(
        "--bus", action="store_true",
        help="coordinate the deployment over the simulated message bus "
        "(master/slave control plane; enables the fault flags below)",
    )
    deploy.add_argument(
        "--bus-seed", type=int, default=0, metavar="SEED",
        help="seed for --bus-drop/--bus-dup/--bus-jitter link faults",
    )
    deploy.add_argument(
        "--bus-drop", type=float, default=0.0, metavar="RATE",
        help="with --bus: drop this fraction of messages (0..1)",
    )
    deploy.add_argument(
        "--bus-dup", type=float, default=0.0, metavar="RATE",
        help="with --bus: duplicate this fraction of messages (0..1)",
    )
    deploy.add_argument(
        "--bus-jitter", type=float, default=0.0, metavar="SECONDS",
        help="with --bus: add up to this much random delivery delay "
        "(reorders messages)",
    )
    deploy.add_argument(
        "--partition-at", type=float, default=None, metavar="SECONDS",
        help="with --bus: cut the network between master and slaves "
        "this long after the deployment starts",
    )
    deploy.add_argument(
        "--partition-for", type=float, default=30.0, metavar="SECONDS",
        help="with --partition-at: heal the partition after this long "
        "(default 30)",
    )
    deploy.add_argument(
        "--failover-at", type=float, default=None, metavar="SECONDS",
        help="with --bus: kill the master at this time; a standby "
        "adopts the control log and finishes the deployment",
    )
    deploy.add_argument(
        "--crash-slave", metavar="MACHINE",
        help="with --bus: crash this slave machine mid-deploy; it "
        "rejoins and resumes from its write-ahead journal",
    )
    deploy.add_argument(
        "--crash-after", type=int, default=3, metavar="N",
        help="with --crash-slave: crash after N driver actions "
        "(default 3)",
    )
    deploy.add_argument(
        "--rejoin-after", type=float, default=25.0, metavar="SECONDS",
        help="with --crash-slave: rejoin this long after the crash "
        "(default 25)",
    )
    deploy.add_argument(
        "--chaos-rate", type=float, default=0.0, metavar="RATE",
        help="inject deterministic transient faults into this fraction "
        "of driver actions (0..1; testing helper)",
    )
    deploy.add_argument(
        "--chaos-seed", type=int, default=0, metavar="SEED",
        help="seed for --chaos-rate fault decisions",
    )
    deploy.add_argument(
        "--trace", metavar="FILE",
        help="write a Chrome trace-event JSON file of the deployment "
        "(open in Perfetto or chrome://tracing)",
    )
    deploy.add_argument(
        "--metrics", action="store_true",
        help="print a plain-text metrics summary after the deployment",
    )

    status = sub.add_parser(
        "status", help="show the state of a saved deployment"
    )
    status.add_argument(
        "bundle", metavar="BUNDLE",
        help="bundle file written by 'deploy --save'",
    )
    status.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable drift/journal summary (exit 0 "
        "iff the deployment matches its goal)",
    )

    for name, help_text in (
        ("stop", "stop a saved deployment (reverse dependency order)"),
        ("start", "start a saved deployment (dependency order)"),
        ("watch", "restart any failed services of a saved deployment"),
    ):
        manage = sub.add_parser(name, help=help_text)
        manage.add_argument(
            "bundle", metavar="BUNDLE",
            help="bundle file written by 'deploy --save'",
        )

    upgrade = sub.add_parser(
        "upgrade", help="upgrade a saved deployment to a new partial spec"
    )
    upgrade.add_argument("bundle", metavar="BUNDLE")
    upgrade.add_argument("partial", metavar="NEW_PARTIAL_SPEC.json")
    upgrade.add_argument(
        "--types", action="append", metavar="FILE", default=[],
        help="additional DSL resource files (e.g. the new version's type)",
    )
    upgrade.add_argument(
        "--strategy", choices=("replace", "in_place", "delta"),
        default="replace",
        help="worst-case replace (paper), in-place (extension), or "
        "delta (planner-driven, journalled)",
    )

    plan = sub.add_parser(
        "plan",
        help="dry-run a delta transition: print the spec-to-spec plan "
        "as JSON without executing it",
    )
    plan.add_argument(
        "bundle", metavar="BUNDLE",
        help="bundle file written by 'deploy --save'",
    )
    plan.add_argument(
        "partial", metavar="NEW_PARTIAL_SPEC.json",
        help="the new goal's partial installation specification",
    )
    plan.add_argument(
        "--types", action="append", metavar="FILE", default=[],
        help="additional DSL resource files (e.g. the new version's type)",
    )
    plan.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the plan JSON here instead of stdout",
    )

    reconcile = sub.add_parser(
        "reconcile",
        help="detect drift and repair a saved deployment (self-healing)",
    )
    reconcile.add_argument(
        "bundle", metavar="BUNDLE",
        help="bundle file written by 'deploy --save'",
    )
    reconcile.add_argument(
        "--watch", action="store_true",
        help="keep polling for up to --max-rounds rounds instead of a "
        "single detect-and-repair pass",
    )
    reconcile.add_argument(
        "--max-rounds", type=int, default=10, metavar="N",
        help="rounds to run with --watch or churn (default 10)",
    )
    reconcile.add_argument(
        "--interval", type=float, default=30.0, metavar="SECONDS",
        help="simulated seconds between rounds (default 30)",
    )
    reconcile.add_argument(
        "--churn-rate", type=float, default=0.0, metavar="RATE",
        help="per-round probability of each machine being permanently "
        "lost (chaos soak; implies multiple rounds)",
    )
    reconcile.add_argument(
        "--churn-seed", type=int, default=0, metavar="SEED",
        help="seed for --churn-rate machine-loss decisions",
    )
    reconcile.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retry each failing repair action up to N times",
    )
    reconcile.add_argument(
        "--backoff", type=float, default=None, metavar="SECONDS",
        help="base backoff between retries",
    )
    reconcile.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-action simulated-time budget",
    )
    reconcile.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="execute repairs with the parallel scheduler using N "
        "simulated workers (0 = unbounded; default: serial)",
    )
    reconcile.add_argument(
        "--jobs-per-host", type=int, default=None, metavar="N",
        help="with --jobs: at most N concurrent instances per machine",
    )
    reconcile.add_argument(
        "--json", action="store_true",
        help="emit the per-round reconcile result as JSON",
    )
    reconcile.add_argument(
        "--trace", metavar="FILE",
        help="write a Chrome trace-event JSON file of the repair rounds",
    )
    reconcile.add_argument(
        "--metrics", action="store_true",
        help="print a plain-text metrics summary after the run",
    )

    inject = sub.add_parser(
        "inject-fault", help="fail a running service (chaos helper)"
    )
    inject.add_argument("bundle", metavar="BUNDLE")
    inject.add_argument("instance", metavar="INSTANCE_ID")

    trace = sub.add_parser(
        "trace",
        help="render a saved bundle as Chrome trace JSON, or validate "
        "a trace file",
    )
    trace.add_argument(
        "bundle", metavar="BUNDLE", nargs="?",
        help="bundle file written by 'deploy --save'",
    )
    trace.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the trace here instead of stdout",
    )
    trace.add_argument(
        "--validate", metavar="TRACE_FILE",
        help="validate an existing Chrome trace JSON file instead of "
        "rendering a bundle",
    )

    render = sub.add_parser(
        "render", help="pretty-print loaded resource types as DSL"
    )
    common(render, with_partial=False)

    dimacs = sub.add_parser(
        "dimacs", help="emit the Boolean constraints in DIMACS CNF"
    )
    common(dimacs)
    return parser


_COMMANDS = {
    "check": cmd_check,
    "configure": cmd_configure,
    "graph": cmd_graph,
    "explain": cmd_explain,
    "deploy": cmd_deploy,
    "status": cmd_status,
    "stop": cmd_stop,
    "start": cmd_start,
    "watch": cmd_watch,
    "reconcile": cmd_reconcile,
    "upgrade": cmd_upgrade,
    "plan": cmd_plan,
    "inject-fault": cmd_inject_fault,
    "trace": cmd_trace,
    "render": cmd_render,
    "dimacs": cmd_dimacs,
}


def main(
    argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None
) -> int:
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except BrokenPipeError:
        return 0  # e.g. `engage-sim graph ... | head`
    except EngageError as exc:
        out.write(f"error: {exc}\n")
        return 2
    except OSError as exc:
        out.write(f"error: {exc}\n")
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
