"""Component-partitioned configuration (fleet-scale solving).

The GraphGen hypergraph of a fleet-sized partial specification is
naturally a union of independent *connected components* -- one per
application stack or machine group.  A hyperedge couples its source with
**every** alternative target (unchosen alternatives still share the
exactly-one constraint, so they must be solved together); inside-link
edges tie all co-located instances to their machine node, so a component
never splits a machine; peer edges merge the machine groups that share a
service.

Because the CNF encoding is purely edge-local (§4), the monolithic
formula is exactly the conjunction of the per-component formulas, and a
partial specification is satisfiable iff every component is.  The
partitioned pipeline therefore encodes, solves, decodes, propagates and
typechecks each component independently and merges the results:

* the merged model/deployed-set/choices equal the monolithic ones
  (canonical decoding -- see :func:`repro.config.engine.canonical_model`
  -- makes the per-component models solver-order independent);
* :func:`merge_component_specs` reproduces the monolithic install order
  *exactly*: the global topological sort breaks ties by smallest
  instance id among all ready instances, and since readiness is
  component-local, that order is precisely the k-way merge of the
  per-component orders by smallest next head (see
  docs/INTERNALS.md, "Partitioned configuration").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.instances import InstallSpec
from repro.config.hypergraph import HyperEdge, ResourceGraph


@dataclass
class ComponentStats:
    """Per-component sizes and phase timings, for benchmarks/tracing."""

    index: int
    nodes: int
    edges: int
    pinned: int
    encode_ms: float = 0.0
    solve_ms: float = 0.0
    propagate_ms: float = 0.0
    decisions: int = 0
    conflicts: int = 0
    #: Worker-process index that solved this component, or -1 when the
    #: component ran in-process (serial partitioned pipeline).
    worker: int = -1
    #: Parent-side model decode time (signed-literal array -> names ->
    #: selected nodes); 0 in-process, where decode is part of solve_ms.
    decode_ms: float = 0.0
    #: When this component's reply arrived, as an offset from dispatch
    #: start -- the streamed-collection timeline (0 in-process).
    recv_ms: float = 0.0


@dataclass
class PartitionInfo:
    """What the partitioned pipeline did, attached to results."""

    components: list[ComponentStats] = field(default_factory=list)
    partition_ms: float = 0.0
    #: Process-pool size when the components were solved in parallel;
    #: 0 means the serial in-process pipeline.
    workers: int = 0
    #: Wire accounting of the pool dispatch
    #: (:class:`repro.config.parallel.WireStats`); None in-process.
    wire: object = None

    @property
    def count(self) -> int:
        return len(self.components)

    @property
    def largest(self) -> int:
        return max((c.nodes for c in self.components), default=0)


@dataclass
class GraphComponent:
    """One connected component of the hypergraph, as its own graph.

    ``graph`` shares the parent graph's :class:`GraphNode` objects and
    :class:`HyperEdge` objects, with both node and edge sequences in the
    parent's insertion order -- so per-source edge *indexes* (the keys of
    the decoded choices) are identical to the monolithic ones.
    """

    index: int
    graph: ResourceGraph
    node_ids: tuple[str, ...]
    pinned: tuple[str, ...]

    @property
    def nodes(self) -> int:
        """Node count -- the size LPT assignment schedules by."""
        return len(self.node_ids)


class Partition:
    """A deterministic split of a :class:`ResourceGraph` into components."""

    def __init__(
        self,
        graph: ResourceGraph,
        components: list[GraphComponent],
        component_of: dict[str, int],
    ) -> None:
        self.graph = graph
        self.components = components
        self.component_of = component_of

    def __len__(self) -> int:
        return len(self.components)

    def __iter__(self):
        return iter(self.components)


def partition_graph(graph: ResourceGraph) -> Partition:
    """Split ``graph`` into connected components.

    Connectivity is taken over hyperedges (source to *every* target --
    environment, peer, and inside alike).  Components are numbered by
    first appearance in node insertion order; nodes and edges inside a
    component keep their global relative order.
    """
    parent: dict[str, str] = {
        node.instance_id: node.instance_id for node in graph.nodes()
    }

    def find(item: str) -> str:
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for edge in graph.edges():
        for target in edge.targets:
            union(edge.source_id, target)

    component_of: dict[str, int] = {}
    members: list[list[str]] = []
    root_index: dict[str, int] = {}
    for node in graph.nodes():
        root = find(node.instance_id)
        index = root_index.get(root)
        if index is None:
            index = len(members)
            root_index[root] = index
            members.append([])
        component_of[node.instance_id] = index
        members[index].append(node.instance_id)

    edges_by_component: list[list[HyperEdge]] = [[] for _ in members]
    for edge in graph.edges():
        edges_by_component[component_of[edge.source_id]].append(edge)

    components: list[GraphComponent] = []
    for index, node_ids in enumerate(members):
        subgraph = ResourceGraph()
        pinned: list[str] = []
        for node_id in node_ids:
            node = graph.node(node_id)
            subgraph.add_node(node)
            if node.from_partial:
                pinned.append(node_id)
        for edge in edges_by_component[index]:
            subgraph.add_edge(edge)
        components.append(
            GraphComponent(
                index=index,
                graph=subgraph,
                node_ids=tuple(node_ids),
                pinned=tuple(pinned),
            )
        )
    return Partition(graph, components, component_of)


def merge_component_specs(specs: list[InstallSpec]) -> InstallSpec:
    """Merge per-component full specifications into the monolithic order.

    :meth:`InstallSpec.topological_order` is Kahn's algorithm emitting
    the smallest ready instance id at every step.  Dependencies never
    cross components, so the global ready set is the disjoint union of
    the per-component ready sets and the global choice is always the
    smallest *next head* among the components -- a k-way merge.
    """
    iterators = [iter(tuple(spec)) for spec in specs]
    heap: list[tuple[str, int]] = []
    heads = []
    for index, iterator in enumerate(iterators):
        head = next(iterator, None)
        heads.append(head)
        if head is not None:
            heap.append((head.id, index))
    heapq.heapify(heap)
    merged = []
    while heap:
        _instance_id, index = heapq.heappop(heap)
        merged.append(heads[index])
        head = next(iterators[index], None)
        heads[index] = head
        if head is not None:
            heapq.heappush(heap, (head.id, index))
    return InstallSpec(merged)
