"""The configuration engine (S4).

Ties the pipeline together: partial installation specification ->
hypergraph (``GraphGen``) -> Boolean constraints (``Generate``) -> SAT
(the CDCL solver) -> port-value propagation -> full installation
specification.  Theorem 1 justifies raising
:class:`~repro.core.errors.UnsatisfiableError` when the solver says no.

Every result carries :class:`PhaseTimings` so callers (benchmarks, the
CLI, :class:`~repro.config.session.ConfigurationSession`) can see where
a query spent its time without re-instrumenting the pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import UnsatisfiableError
from repro.core.instances import InstallSpec, PartialInstallSpec
from repro.core.registry import ResourceTypeRegistry
from repro.core.wellformed import assert_well_formed
from repro.config.constraints import (
    ConstraintStats,
    generate_constraints,
    selected_nodes,
)
from repro.config.hypergraph import ResourceGraph, generate_graph
from repro.config.propagation import propagate
from repro.config.typecheck import check_spec
from repro.sat.cnf import CnfFormula
from repro.sat.encodings import ExactlyOneEncoding
from repro.sat.solver import CdclSolver, DpllSolver, SolverStats


@dataclass
class PhaseTimings:
    """Wall-clock milliseconds spent in each pipeline phase."""

    graph_ms: float = 0.0
    encode_ms: float = 0.0
    solve_ms: float = 0.0
    propagate_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (
            self.graph_ms + self.encode_ms + self.solve_ms
            + self.propagate_ms
        )


@dataclass
class SessionCacheInfo:
    """Per-call cache outcome, populated by ``ConfigurationSession``."""

    fingerprint: str = ""
    graph_hit: bool = False
    cnf_hit: bool = False
    solver_reused: bool = False
    typecheck_skipped: bool = False


@dataclass
class ConfigurationResult:
    """Everything the engine produced, for inspection and benchmarks."""

    spec: InstallSpec
    graph: ResourceGraph
    formula: CnfFormula
    model: dict[str, bool]
    constraint_stats: ConstraintStats
    solver_stats: SolverStats
    deployed_ids: set[str] = field(default_factory=set)
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    #: Cache outcome when the result came from a session; None otherwise.
    cache: Optional[SessionCacheInfo] = None


def raise_unsatisfiable(
    registry: ResourceTypeRegistry,
    partial: PartialInstallSpec,
    graph: ResourceGraph,
    *,
    explain: bool,
) -> None:
    """Raise the Theorem 1 :class:`UnsatisfiableError`, optionally with a
    minimal-conflict explanation (shared by engine and session)."""
    message = (
        "no full installation specification extends the partial "
        f"specification (over {len(graph)} candidate instances)"
    )
    if explain:
        from repro.config.explain import explain_unsat

        explanation = explain_unsat(registry, partial)
        if explanation is not None:
            message += "\n" + explanation.message(graph)
    raise UnsatisfiableError(message)


def emit_config_trace(tracer, timings, cache=None) -> None:
    """Emit one span per pipeline phase onto ``tracer``'s ``config`` lane.

    Wall-clock milliseconds are mapped onto the simulated timeline as
    seconds (ms -> s) so the spans are visible at trace scale; the real
    measurement is preserved in each span's ``wall_ms`` argument and in
    the ``config.<phase>_ms`` histograms.  Shared by the engine and the
    session so both produce the same event shape.
    """
    if tracer is None:
        return
    start = tracer.clock.now if tracer.clock is not None else 0.0
    for phase, wall_ms in (
        ("configure:graph", timings.graph_ms),
        ("configure:encode", timings.encode_ms),
        ("configure:solve", timings.solve_ms),
        ("configure:propagate", timings.propagate_ms),
    ):
        duration = wall_ms / 1000.0
        tracer.span(
            phase, category="config", start=start, duration=duration,
            lane="config", wall_ms=round(wall_ms, 3),
        )
        name = phase.split(":", 1)[1]
        tracer.metrics.histogram(f"config.{name}_ms").observe(wall_ms)
        start += duration
    if cache is not None:
        tracer.instant(
            "cache", category="config", timestamp=start, lane="config",
            fingerprint=cache.fingerprint, graph_hit=cache.graph_hit,
            cnf_hit=cache.cnf_hit, solver_reused=cache.solver_reused,
            typecheck_skipped=cache.typecheck_skipped,
        )


class ConfigurationEngine:
    """Expands partial installation specifications to full ones."""

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        *,
        encoding: ExactlyOneEncoding = ExactlyOneEncoding.PAIRWISE,
        solver: str = "cdcl",
        check_types: bool = True,
        verify_registry: bool = True,
        explain_unsat: bool = True,
        peer_policy: str = "colocate",
        tracer=None,
    ) -> None:
        self._registry = registry
        self._encoding = encoding
        self._solver = solver
        self._check_types = check_types
        self._explain_unsat = explain_unsat
        self._peer_policy = peer_policy
        self._tracer = tracer
        if verify_registry:
            # Memoized on the registry: many engines over one registry
            # pay the full well-formedness sweep once.
            assert_well_formed(registry)

    @property
    def registry(self) -> ResourceTypeRegistry:
        return self._registry

    def configure(self, partial: PartialInstallSpec) -> ConfigurationResult:
        """Compute a full installation specification extending ``partial``.

        Raises :class:`UnsatisfiableError` when no extension exists
        (Theorem 1), and surfaces any propagation or typechecking error.
        """
        timings = PhaseTimings()
        started = time.perf_counter()
        graph = generate_graph(
            self._registry, partial, peer_policy=self._peer_policy
        )
        ticked = time.perf_counter()
        timings.graph_ms = (ticked - started) * 1000.0
        formula, constraint_stats = generate_constraints(graph, self._encoding)
        started = time.perf_counter()
        timings.encode_ms = (started - ticked) * 1000.0

        engine: CdclSolver | DpllSolver
        if self._solver == "dpll":
            engine = DpllSolver(formula)
        else:
            engine = CdclSolver(formula)
        solved = engine.solve()
        ticked = time.perf_counter()
        timings.solve_ms = (ticked - started) * 1000.0
        if not solved:
            raise_unsatisfiable(
                self._registry, partial, graph, explain=self._explain_unsat
            )
        named_model = {
            str(name): value
            for name, value in formula.decode_model(engine.model()).items()
        }
        deployed, choices = selected_nodes(graph, named_model)
        spec = propagate(self._registry, graph, deployed, choices)
        if self._check_types:
            check_spec(self._registry, spec)
        timings.propagate_ms = (time.perf_counter() - ticked) * 1000.0
        emit_config_trace(self._tracer, timings)
        return ConfigurationResult(
            spec=spec,
            graph=graph,
            formula=formula,
            model=named_model,
            constraint_stats=constraint_stats,
            solver_stats=engine.stats,
            deployed_ids=deployed,
            timings=timings,
        )
