"""The configuration engine (S4).

Ties the pipeline together: partial installation specification ->
hypergraph (``GraphGen``) -> Boolean constraints (``Generate``) -> SAT
(the CDCL solver) -> port-value propagation -> full installation
specification.  Theorem 1 justifies raising
:class:`~repro.core.errors.UnsatisfiableError` when the solver says no.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import UnsatisfiableError
from repro.core.instances import InstallSpec, PartialInstallSpec
from repro.core.registry import ResourceTypeRegistry
from repro.core.wellformed import assert_well_formed
from repro.config.constraints import (
    ConstraintStats,
    generate_constraints,
    selected_nodes,
)
from repro.config.hypergraph import ResourceGraph, generate_graph
from repro.config.propagation import propagate
from repro.config.typecheck import check_spec
from repro.sat.cnf import CnfFormula
from repro.sat.encodings import ExactlyOneEncoding
from repro.sat.solver import CdclSolver, DpllSolver, SolverStats


@dataclass
class ConfigurationResult:
    """Everything the engine produced, for inspection and benchmarks."""

    spec: InstallSpec
    graph: ResourceGraph
    formula: CnfFormula
    model: dict[str, bool]
    constraint_stats: ConstraintStats
    solver_stats: SolverStats
    deployed_ids: set[str] = field(default_factory=set)


class ConfigurationEngine:
    """Expands partial installation specifications to full ones."""

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        *,
        encoding: ExactlyOneEncoding = ExactlyOneEncoding.PAIRWISE,
        solver: str = "cdcl",
        check_types: bool = True,
        verify_registry: bool = True,
        explain_unsat: bool = True,
        peer_policy: str = "colocate",
    ) -> None:
        self._registry = registry
        self._encoding = encoding
        self._solver = solver
        self._check_types = check_types
        self._explain_unsat = explain_unsat
        self._peer_policy = peer_policy
        if verify_registry:
            assert_well_formed(registry)

    @property
    def registry(self) -> ResourceTypeRegistry:
        return self._registry

    def configure(self, partial: PartialInstallSpec) -> ConfigurationResult:
        """Compute a full installation specification extending ``partial``.

        Raises :class:`UnsatisfiableError` when no extension exists
        (Theorem 1), and surfaces any propagation or typechecking error.
        """
        graph = generate_graph(
            self._registry, partial, peer_policy=self._peer_policy
        )
        formula, constraint_stats = generate_constraints(graph, self._encoding)

        engine: CdclSolver | DpllSolver
        if self._solver == "dpll":
            engine = DpllSolver(formula)
        else:
            engine = CdclSolver(formula)
        if not engine.solve():
            message = (
                "no full installation specification extends the partial "
                f"specification (over {len(graph)} candidate instances)"
            )
            if self._explain_unsat:
                from repro.config.explain import explain_unsat

                explanation = explain_unsat(self._registry, partial)
                if explanation is not None:
                    message += "\n" + explanation.message(graph)
            raise UnsatisfiableError(message)
        named_model = {
            str(name): value
            for name, value in formula.decode_model(engine.model()).items()
        }
        deployed, choices = selected_nodes(graph, named_model)
        spec = propagate(self._registry, graph, deployed, choices)
        if self._check_types:
            check_spec(self._registry, spec)
        return ConfigurationResult(
            spec=spec,
            graph=graph,
            formula=formula,
            model=named_model,
            constraint_stats=constraint_stats,
            solver_stats=engine.stats,
            deployed_ids=deployed,
        )
