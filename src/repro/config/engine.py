"""The configuration engine (S4).

Ties the pipeline together: partial installation specification ->
hypergraph (``GraphGen``) -> Boolean constraints (``Generate``) -> SAT
(the CDCL solver) -> port-value propagation -> full installation
specification.  Theorem 1 justifies raising
:class:`~repro.core.errors.UnsatisfiableError` when the solver says no.

Every result carries :class:`PhaseTimings` so callers (benchmarks, the
CLI, :class:`~repro.config.session.ConfigurationSession`) can see where
a query spent its time without re-instrumenting the pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import ConfigurationError, UnsatisfiableError
from repro.core.instances import InstallSpec, PartialInstallSpec
from repro.core.registry import ResourceTypeRegistry
from repro.core.wellformed import assert_well_formed
from repro.config.constraints import (
    ConstraintStats,
    generate_constraints,
    selected_nodes,
)
from repro.config.hypergraph import ResourceGraph, generate_graph
from repro.config.partition import (
    ComponentStats,
    Partition,
    PartitionInfo,
    merge_component_specs,
    partition_graph,
)
from repro.config.propagation import propagate
from repro.config.typecheck import check_spec
from repro.sat.cnf import CnfFormula
from repro.sat.encodings import ExactlyOneEncoding
from repro.sat.solver import CdclSolver, DpllSolver, SolverStats


@dataclass
class PhaseTimings:
    """Wall-clock milliseconds spent in each pipeline phase."""

    graph_ms: float = 0.0
    #: Connected-component split; 0 on the monolithic path.
    partition_ms: float = 0.0
    encode_ms: float = 0.0
    solve_ms: float = 0.0
    propagate_ms: float = 0.0
    #: Wall-clock time of the process-pool dispatch+collect, 0 when the
    #: components ran in-process.  Deliberately *not* part of
    #: :attr:`total_ms`: encode/solve/propagate already account the same
    #: work as per-component sums, so ``total_ms`` stays comparable
    #: across serial and parallel runs (CPU-time-like), while this field
    #: is what the wall clock actually saw.
    parallel_wall_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (
            self.graph_ms + self.partition_ms + self.encode_ms
            + self.solve_ms + self.propagate_ms
        )


@dataclass
class SessionCacheInfo:
    """Per-call cache outcome, populated by ``ConfigurationSession``."""

    fingerprint: str = ""
    graph_hit: bool = False
    cnf_hit: bool = False
    solver_reused: bool = False
    typecheck_skipped: bool = False


@dataclass
class ConfigurationResult:
    """Everything the engine produced, for inspection and benchmarks."""

    spec: InstallSpec
    graph: ResourceGraph
    #: The monolithic CNF encoding; None on the partitioned path, which
    #: builds one formula per component instead (their aggregated sizes
    #: are in :attr:`constraint_stats` and match the monolithic ones).
    formula: Optional[CnfFormula]
    model: dict[str, bool]
    constraint_stats: ConstraintStats
    solver_stats: SolverStats
    deployed_ids: set[str] = field(default_factory=set)
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    #: Cache outcome when the result came from a session; None otherwise.
    cache: Optional[SessionCacheInfo] = None
    #: Component sizes/timings when the partitioned pipeline ran.
    partition: Optional[PartitionInfo] = None


def canonical_model(
    formula: CnfFormula,
    solver: CdclSolver,
    assumptions=(),
) -> dict[int, bool]:
    """A decode model that does not depend on solver heuristics/history.

    The canonical model is the one found by static-order search: decide
    variables in index order, preferring False.  Because clauses never
    cross connected components, that search decomposes exactly over
    components -- which is what makes partitioned and monolithic decode
    bit-identical (see docs/INTERNALS.md).

    A CDCL run that never conflicted *is* that search: VSIDS ties break
    towards the lowest index while all activities are zero, and saved
    phases start False (a warm conflict-free solver replays its previous
    model under the same assumptions).  Only conflicted runs -- where
    activity bumps and backjump phase flips can reorder decisions -- pay
    a deterministic re-solve.
    """
    if solver.stats.conflicts == 0:
        return solver.model()
    deterministic = CdclSolver(formula, use_vsids=False, use_restarts=False)
    if not deterministic.solve(list(assumptions)):
        raise ConfigurationError(
            "canonical re-solve found no model for a satisfiable formula"
        )
    return deterministic.model()


def raise_unsatisfiable(
    registry: ResourceTypeRegistry,
    partial: PartialInstallSpec,
    graph: ResourceGraph,
    *,
    explain: bool,
    partition: bool = False,
) -> None:
    """Raise the Theorem 1 :class:`UnsatisfiableError`, optionally with a
    minimal-conflict explanation (shared by engine and session).

    ``partition`` selects the component-narrowed MUS computation in
    :mod:`repro.config.explain`; the resulting diagnosis is byte-identical
    to the monolithic one, just cheaper to compute.
    """
    message = (
        "no full installation specification extends the partial "
        f"specification (over {len(graph)} candidate instances)"
    )
    if explain:
        from repro.config.explain import explain_unsat

        explanation = explain_unsat(registry, partial, partition=partition)
        if explanation is not None:
            message += "\n" + explanation.message(graph)
    raise UnsatisfiableError(message)


def emit_config_trace(tracer, timings, cache=None, partition=None) -> None:
    """Emit one span per pipeline phase onto ``tracer``'s ``config`` lane.

    Wall-clock milliseconds are mapped onto the simulated timeline as
    seconds (ms -> s) so the spans are visible at trace scale; the real
    measurement is preserved in each span's ``wall_ms`` argument and in
    the ``config.<phase>_ms`` histograms.  Shared by the engine and the
    session so both produce the same event shape.
    """
    if tracer is None:
        return
    start = tracer.clock.now if tracer.clock is not None else 0.0
    phases = [
        ("configure:graph", timings.graph_ms),
        ("configure:partition", timings.partition_ms),
        ("configure:encode", timings.encode_ms),
        ("configure:solve", timings.solve_ms),
        ("configure:propagate", timings.propagate_ms),
    ]
    if partition is None:
        phases.pop(1)  # monolithic path: keep the original span shape
    for phase, wall_ms in phases:
        duration = wall_ms / 1000.0
        tracer.span(
            phase, category="config", start=start, duration=duration,
            lane="config", wall_ms=round(wall_ms, 3),
        )
        name = phase.split(":", 1)[1]
        tracer.metrics.histogram(f"config.{name}_ms").observe(wall_ms)
        start += duration
    if partition is not None:
        # One span per component on its own sub-lane, so a fleet-sized
        # configure shows where each machine group spent its time.  The
        # component index and node count ride along as args (the span
        # name alone is not machine-filterable in Perfetto), plus the
        # worker id when a process pool solved the component.
        if partition.workers and partition.wire is not None:
            component_end = _emit_streamed_component_spans(
                tracer, partition, start
            )
        else:
            component_end = _emit_serial_component_spans(
                tracer, partition, start
            )
        tracer.metrics.histogram("config.components").observe(partition.count)
        if partition.workers:
            tracer.metrics.counter("config.parallel_configures").inc()
        start = max(start, component_end)
    if cache is not None:
        tracer.instant(
            "cache", category="config", timestamp=start, lane="config",
            fingerprint=cache.fingerprint, graph_hit=cache.graph_hit,
            cnf_hit=cache.cnf_hit, solver_reused=cache.solver_reused,
            typecheck_skipped=cache.typecheck_skipped,
        )


def _emit_serial_component_spans(tracer, partition, start) -> float:
    """Per-component spans for the in-process pipeline: components ran
    one after another, so the spans are stacked sequentially."""
    component_start = start
    for component in partition.components:
        wall_ms = (
            component.encode_ms + component.solve_ms
            + component.propagate_ms
        )
        duration = wall_ms / 1000.0
        args = dict(
            wall_ms=round(wall_ms, 3), component=component.index,
            nodes=component.nodes, edges=component.edges,
            pinned=component.pinned, decisions=component.decisions,
            conflicts=component.conflicts,
        )
        if component.worker >= 0:
            args["worker"] = component.worker
        tracer.span(
            f"configure:component[{component.index}]",
            category="config", start=component_start, duration=duration,
            lane="config", **args,
        )
        tracer.metrics.histogram("config.component_ms").observe(wall_ms)
        component_start += duration
    return component_start


def _emit_streamed_component_spans(tracer, partition, start) -> float:
    """Per-component spans for the process-pool pipeline, laid out on
    the *real* dispatch-relative timeline.

    Each component's reply arrival (``recv_ms``) anchors its spans: the
    worker-measured encode/solve spans end at the arrival, the
    parent-side decode/propagate spans begin there.  Because the parent
    decodes streamed replies while other workers are still solving,
    decode/propagate spans of early components visibly *overlap* the
    solve spans of late ones -- the signature of streamed collection.
    Spans are emitted in component-index order (deterministic), not
    arrival order.
    """
    wire = partition.wire
    tracer.span(
        "configure:dispatch", category="config", start=start,
        duration=wire.dispatch_ms / 1000.0, lane="config",
        wall_ms=round(wire.dispatch_ms, 3),
        request_bytes=wire.request_bytes,
    )
    tracer.metrics.histogram("config.wire_reply_bytes").observe(
        wire.reply_bytes
    )
    tracer.metrics.histogram("config.wire_reply_frames").observe(
        wire.reply_frames
    )
    end = start + wire.dispatch_ms / 1000.0
    for component in partition.components:
        recv = start + component.recv_ms / 1000.0
        worker_ms = component.encode_ms + component.solve_ms
        worker_start = max(start, recv - worker_ms / 1000.0)
        parent_ms = component.decode_ms + component.propagate_ms
        wall_ms = worker_ms + parent_ms
        tracer.span(
            f"configure:component[{component.index}]",
            category="config", start=worker_start,
            duration=(recv - worker_start) + parent_ms / 1000.0,
            lane="config",
            wall_ms=round(wall_ms, 3), component=component.index,
            nodes=component.nodes, edges=component.edges,
            pinned=component.pinned, decisions=component.decisions,
            conflicts=component.conflicts, worker=component.worker,
        )
        phase_start = worker_start
        for phase_name, phase_ms in (
            ("encode", component.encode_ms),
            ("solve", component.solve_ms),
        ):
            if phase_ms <= 0.0:
                continue
            tracer.span(
                f"configure:component[{component.index}]:{phase_name}",
                category="config", start=phase_start,
                duration=phase_ms / 1000.0, lane="config",
                wall_ms=round(phase_ms, 3), component=component.index,
                nodes=component.nodes, worker=component.worker,
            )
            phase_start += phase_ms / 1000.0
        tracer.instant(
            f"configure:component[{component.index}]:recv",
            category="config", timestamp=recv, lane="config",
            recv_ms=round(component.recv_ms, 3),
            component=component.index, worker=component.worker,
        )
        phase_start = recv
        for phase_name, phase_ms in (
            ("decode", component.decode_ms),
            ("propagate", component.propagate_ms),
        ):
            if phase_ms <= 0.0:
                continue
            tracer.span(
                f"configure:component[{component.index}]:{phase_name}",
                category="config", start=phase_start,
                duration=phase_ms / 1000.0, lane="config",
                wall_ms=round(phase_ms, 3), component=component.index,
                nodes=component.nodes, worker=component.worker,
            )
            phase_start += phase_ms / 1000.0
        tracer.metrics.histogram("config.component_ms").observe(wall_ms)
        end = max(end, phase_start)
    return end


class ConfigurationEngine:
    """Expands partial installation specifications to full ones.

    With ``partition=True`` the pipeline splits the hypergraph into
    connected components after GraphGen and encodes/solves/propagates
    each component independently (:mod:`repro.config.partition`); the
    resulting specification is bit-identical to the monolithic one.
    With ``workers`` set, the partitioned components fan out across a
    persistent process pool (:mod:`repro.config.parallel`; 0 = one
    worker per core) -- still bit-identical, near-linear in cores on
    fleet-shaped graphs.  ``configure(..., partition=..., workers=...)``
    overrides either mode per call.  Engines holding a pool should be
    ``close()``d (or used as context managers); an un-closed pool is
    reaped by GC/daemon cleanup.
    """

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        *,
        encoding: ExactlyOneEncoding = ExactlyOneEncoding.PAIRWISE,
        solver: str = "cdcl",
        check_types: bool = True,
        verify_registry: bool = True,
        explain_unsat: bool = True,
        peer_policy: str = "colocate",
        partition: bool = False,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        tracer=None,
    ) -> None:
        if partition and solver == "dpll":
            raise ConfigurationError(
                "partitioned solving requires the cdcl solver (the DPLL "
                "ablation baseline has no canonical decomposition)"
            )
        if workers is not None and not partition:
            raise ConfigurationError(
                "parallel configuration (workers=...) requires "
                "partition=True"
            )
        self._registry = registry
        self._encoding = encoding
        self._solver = solver
        self._check_types = check_types
        self._explain_unsat = explain_unsat
        self._peer_policy = peer_policy
        self._partition = partition
        self._workers = workers
        self._start_method = start_method
        self._pool = None
        self._tracer = tracer
        if verify_registry:
            # Memoized on the registry: many engines over one registry
            # pay the full well-formedness sweep once.
            assert_well_formed(registry)

    @property
    def registry(self) -> ResourceTypeRegistry:
        return self._registry

    def close(self) -> None:
        """Shut down the worker pool, if one was spun up (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ConfigurationEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _ensure_pool(self, workers: int):
        """The persistent pool, recycled on size/registry changes."""
        from repro.config.parallel import WorkerPool, resolve_workers

        resolved = resolve_workers(workers)
        pool = self._pool
        if pool is not None and (
            pool.closed
            or pool.workers != resolved
            or pool.registry_version != self._registry.version
        ):
            pool.close()
            pool = None
        if pool is None:
            pool = WorkerPool(
                self._registry, workers=resolved, encoding=self._encoding,
                start_method=self._start_method,
            )
            self._pool = pool
        return pool

    def configure(
        self,
        partial: PartialInstallSpec,
        *,
        partition: Optional[bool] = None,
        workers: Optional[int] = None,
    ) -> ConfigurationResult:
        """Compute a full installation specification extending ``partial``.

        Raises :class:`UnsatisfiableError` when no extension exists
        (Theorem 1), and surfaces any propagation or typechecking error.
        ``partition`` and ``workers`` override the engine's configured
        modes for this call (``workers``: None = in-process, 0 = one
        worker per core, N = a pool of N processes).
        """
        use_partition = self._partition if partition is None else partition
        use_workers = self._workers if workers is None else workers
        if use_workers is not None and not use_partition:
            raise ConfigurationError(
                "parallel configuration (workers=...) requires "
                "partition=True"
            )
        if use_partition:
            if self._solver == "dpll":
                raise ConfigurationError(
                    "partitioned solving requires the cdcl solver (the "
                    "DPLL ablation baseline has no canonical "
                    "decomposition)"
                )
            if use_workers is not None:
                return self._configure_parallel(partial, use_workers)
            return self._configure_partitioned(partial)
        timings = PhaseTimings()
        started = time.perf_counter()
        graph = generate_graph(
            self._registry, partial, peer_policy=self._peer_policy
        )
        ticked = time.perf_counter()
        timings.graph_ms = (ticked - started) * 1000.0
        formula, constraint_stats = generate_constraints(graph, self._encoding)
        started = time.perf_counter()
        timings.encode_ms = (started - ticked) * 1000.0

        engine: CdclSolver | DpllSolver
        if self._solver == "dpll":
            engine = DpllSolver(formula)
        else:
            engine = CdclSolver(formula)
        solved = engine.solve()
        if not solved:
            timings.solve_ms = (time.perf_counter() - started) * 1000.0
            raise_unsatisfiable(
                self._registry, partial, graph, explain=self._explain_unsat
            )
        if isinstance(engine, CdclSolver):
            model = canonical_model(formula, engine)
        else:
            # The DPLL ablation keeps its own (True-first) model; it is
            # never compared bit-for-bit against the partitioned path.
            model = engine.model()
        ticked = time.perf_counter()
        timings.solve_ms = (ticked - started) * 1000.0
        named_model = {
            str(name): value
            for name, value in formula.decode_model(model).items()
        }
        deployed, choices = selected_nodes(graph, named_model)
        spec = propagate(self._registry, graph, deployed, choices)
        if self._check_types:
            check_spec(self._registry, spec)
        timings.propagate_ms = (time.perf_counter() - ticked) * 1000.0
        emit_config_trace(self._tracer, timings)
        return ConfigurationResult(
            spec=spec,
            graph=graph,
            formula=formula,
            model=named_model,
            constraint_stats=constraint_stats,
            solver_stats=engine.stats,
            deployed_ids=deployed,
            timings=timings,
        )

    def _configure_partitioned(
        self, partial: PartialInstallSpec
    ) -> ConfigurationResult:
        """The component-partitioned pipeline (bit-identical results)."""
        timings = PhaseTimings()
        started = time.perf_counter()
        graph = generate_graph(
            self._registry, partial, peer_policy=self._peer_policy
        )
        ticked = time.perf_counter()
        timings.graph_ms = (ticked - started) * 1000.0
        parts = partition_graph(graph)
        started = time.perf_counter()
        timings.partition_ms = (started - ticked) * 1000.0
        info = PartitionInfo(partition_ms=timings.partition_ms)

        aggregate_constraints = ConstraintStats(0, 0, 0, 0)
        aggregate_solver = SolverStats(components=len(parts.components))
        named_model: dict[str, bool] = {}
        deployed: set[str] = set()
        choices: dict[tuple[str, int], str] = {}
        specs: list[InstallSpec] = []

        for component in parts.components:
            tick = time.perf_counter()
            formula, constraint_stats = generate_constraints(
                component.graph, self._encoding
            )
            encode_done = time.perf_counter()
            solver = CdclSolver(formula)
            if not solver.solve():
                timings.encode_ms += (encode_done - tick) * 1000.0
                timings.solve_ms += (time.perf_counter() - encode_done) * 1000.0
                raise_unsatisfiable(
                    self._registry, partial, graph,
                    explain=self._explain_unsat, partition=True,
                )
            model = canonical_model(formula, solver)
            named = {
                str(name): value
                for name, value in formula.decode_model(model).items()
            }
            solve_done = time.perf_counter()
            component_deployed, component_choices = selected_nodes(
                component.graph, named
            )
            spec = propagate(
                self._registry, component.graph,
                component_deployed, component_choices,
            )
            if self._check_types:
                check_spec(self._registry, spec)
            propagate_done = time.perf_counter()

            named_model.update(named)
            deployed |= component_deployed
            choices.update(component_choices)
            specs.append(spec)
            _accumulate_constraint_stats(
                aggregate_constraints, constraint_stats
            )
            _accumulate_solver_stats(aggregate_solver, solver.stats)
            stats = ComponentStats(
                index=component.index,
                nodes=len(component.graph),
                edges=len(component.graph.edges()),
                pinned=len(component.pinned),
                encode_ms=(encode_done - tick) * 1000.0,
                solve_ms=(solve_done - encode_done) * 1000.0,
                propagate_ms=(propagate_done - solve_done) * 1000.0,
                decisions=solver.stats.decisions,
                conflicts=solver.stats.conflicts,
            )
            info.components.append(stats)
            timings.encode_ms += stats.encode_ms
            timings.solve_ms += stats.solve_ms
            timings.propagate_ms += stats.propagate_ms

        tick = time.perf_counter()
        spec = merge_component_specs(specs)
        timings.propagate_ms += (time.perf_counter() - tick) * 1000.0
        emit_config_trace(self._tracer, timings, partition=info)
        return ConfigurationResult(
            spec=spec,
            graph=graph,
            formula=None,
            model=named_model,
            constraint_stats=aggregate_constraints,
            solver_stats=aggregate_solver,
            deployed_ids=deployed,
            timings=timings,
            partition=info,
        )

    def _configure_parallel(
        self, partial: PartialInstallSpec, workers: int
    ) -> ConfigurationResult:
        """The partitioned pipeline fanned out over the process pool.

        Workers run the exact per-component encode/solve sequence of
        :meth:`_configure_partitioned` and stream back one compact
        reply per component (the canonical model as a signed-literal
        array); the parent decodes, propagates and typechecks each
        reply as it arrives -- overlapping with components still
        solving -- then merges outcomes in component-index order, so
        the result is bit-identical to the serial partitioned (and
        monolithic) pipeline.
        """
        from repro.config.parallel import (
            decode_component_model,
            raise_component_error,
            resolve_workers,
        )

        timings = PhaseTimings()
        started = time.perf_counter()
        graph = generate_graph(
            self._registry, partial, peer_policy=self._peer_policy
        )
        ticked = time.perf_counter()
        timings.graph_ms = (ticked - started) * 1000.0
        parts = partition_graph(graph)
        started = time.perf_counter()
        timings.partition_ms = (started - ticked) * 1000.0

        if not parts.components:
            info = PartitionInfo(
                partition_ms=timings.partition_ms,
                workers=resolve_workers(workers),
            )
            emit_config_trace(self._tracer, timings, partition=info)
            return ConfigurationResult(
                spec=merge_component_specs([]), graph=graph, formula=None,
                model={}, constraint_stats=ConstraintStats(0, 0, 0, 0),
                solver_stats=SolverStats(components=0), deployed_ids=set(),
                timings=timings, partition=info,
            )

        pool = self._ensure_pool(workers)
        info = PartitionInfo(
            partition_ms=timings.partition_ms, workers=pool.workers
        )
        components_by_index = {
            component.index: component for component in parts.components
        }

        def materialize(outcome) -> None:
            # Streamed parent-side half of the pipeline: decode the
            # signed-literal model against the component graph the
            # parent already holds, then propagate and typecheck --
            # all while other components are still solving.
            component = components_by_index[outcome.index]
            tick = time.perf_counter()
            named, comp_deployed, comp_choices = decode_component_model(
                component, outcome.model
            )
            decode_done = time.perf_counter()
            spec = propagate(
                self._registry, component.graph, comp_deployed, comp_choices
            )
            if self._check_types:
                check_spec(self._registry, spec)
            outcome.named_model = named
            outcome.deployed = frozenset(comp_deployed)
            outcome.choices = comp_choices
            outcome.instances = tuple(spec)
            outcome.decode_ms = (decode_done - tick) * 1000.0
            outcome.propagate_ms = (
                time.perf_counter() - decode_done
            ) * 1000.0

        tick = time.perf_counter()
        outcomes = pool.run_components(
            parts.components, on_outcome=materialize
        )
        timings.parallel_wall_ms = (time.perf_counter() - tick) * 1000.0
        info.wire = pool.last_wire

        failure = next(
            (o for o in outcomes if o.status != "sat"), None
        )  # outcomes are index-sorted: this is the serial first failure
        if failure is not None:
            timings.encode_ms += failure.encode_ms
            timings.solve_ms += failure.solve_ms
            if failure.status == "unsat":
                raise_unsatisfiable(
                    self._registry, partial, graph,
                    explain=self._explain_unsat, partition=True,
                )
            raise_component_error(failure)

        aggregate_constraints = ConstraintStats(0, 0, 0, 0)
        aggregate_solver = SolverStats(components=len(parts.components))
        named_model: dict[str, bool] = {}
        deployed: set[str] = set()
        specs: list[InstallSpec] = []
        for component, outcome in zip(parts.components, outcomes):
            named_model.update(outcome.named_model)
            deployed |= outcome.deployed
            specs.append(InstallSpec(outcome.instances))
            _accumulate_constraint_stats(
                aggregate_constraints, outcome.constraint_stats
            )
            _accumulate_solver_stats(aggregate_solver, outcome.solver_stats)
            info.components.append(
                ComponentStats(
                    index=component.index,
                    nodes=len(component.graph),
                    edges=len(component.graph.edges()),
                    pinned=len(component.pinned),
                    encode_ms=outcome.encode_ms,
                    solve_ms=outcome.solve_ms,
                    propagate_ms=outcome.propagate_ms,
                    decisions=outcome.solver_stats.decisions,
                    conflicts=outcome.solver_stats.conflicts,
                    worker=outcome.worker,
                    decode_ms=outcome.decode_ms,
                    recv_ms=outcome.recv_ms,
                )
            )
            timings.encode_ms += outcome.encode_ms
            timings.solve_ms += outcome.solve_ms
            # Parent-side decode folds into the propagate phase: the
            # serial pipelines account name decoding inside their own
            # windows, so the per-phase sums stay comparable.
            timings.propagate_ms += outcome.decode_ms + outcome.propagate_ms

        tick = time.perf_counter()
        spec = merge_component_specs(specs)
        timings.propagate_ms += (time.perf_counter() - tick) * 1000.0
        emit_config_trace(self._tracer, timings, partition=info)
        return ConfigurationResult(
            spec=spec,
            graph=graph,
            formula=None,
            model=named_model,
            constraint_stats=aggregate_constraints,
            solver_stats=aggregate_solver,
            deployed_ids=deployed,
            timings=timings,
            partition=info,
        )


def _accumulate_constraint_stats(
    total: ConstraintStats, part: ConstraintStats
) -> None:
    """Sum per-component encoding sizes.

    The encoding is edge-local, so the sums equal the monolithic
    formula's sizes exactly.
    """
    total.variables += part.variables
    total.clauses += part.clauses
    total.facts += part.facts
    total.hyperedges += part.hyperedges


def _accumulate_solver_stats(total: SolverStats, part: SolverStats) -> None:
    total.decisions += part.decisions
    total.propagations += part.propagations
    total.conflicts += part.conflicts
    total.learned_clauses += part.learned_clauses
    total.deleted_clauses += part.deleted_clauses
    total.restarts += part.restarts
    total.max_learned_length = max(
        total.max_learned_length, part.max_learned_length
    )
    total.solve_calls += part.solve_calls
