"""The configuration engine (S4): hypergraph generation, Boolean
constraint generation, SAT solving, port-value propagation, and static
checking of installation specifications."""

from repro.config.constraints import (
    ConstraintStats,
    generate_constraints,
    selected_nodes,
)
from repro.config.engine import ConfigurationEngine, ConfigurationResult
from repro.config.explain import (
    UnsatExplanation,
    explain_message,
    explain_unsat,
)
from repro.config.hypergraph import (
    GraphNode,
    HyperEdge,
    ResourceGraph,
    generate_graph,
    lower_alternatives,
)
from repro.config.propagation import propagate
from repro.config.typecheck import check_spec, spec_problems

__all__ = [
    "ConfigurationEngine",
    "ConfigurationResult",
    "ConstraintStats",
    "GraphNode",
    "HyperEdge",
    "ResourceGraph",
    "UnsatExplanation",
    "check_spec",
    "explain_message",
    "explain_unsat",
    "generate_constraints",
    "generate_graph",
    "lower_alternatives",
    "propagate",
    "selected_nodes",
    "spec_problems",
]
