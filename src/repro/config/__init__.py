"""The configuration engine (S4): hypergraph generation, Boolean
constraint generation, SAT solving, port-value propagation, and static
checking of installation specifications."""

from repro.config.constraints import (
    ConstraintStats,
    fact_literals,
    generate_constraints,
    selected_nodes,
)
from repro.config.engine import (
    ConfigurationEngine,
    ConfigurationResult,
    PhaseTimings,
    SessionCacheInfo,
)
from repro.config.explain import (
    UnsatExplanation,
    explain_message,
    explain_unsat,
)
from repro.config.hypergraph import (
    GraphNode,
    HyperEdge,
    ResourceGraph,
    generate_graph,
    lower_alternatives,
)
from repro.config.fingerprint import canonical_form, fingerprint_partial
from repro.config.parallel import (
    ComponentOutcome,
    RemoteTraceback,
    WireStats,
    WorkerPool,
    decode_component_model,
    lpt_assignment,
    resolve_workers,
)
from repro.config.propagation import propagate
from repro.config.session import ConfigurationSession, SessionStats
from repro.config.typecheck import check_spec, spec_problems

__all__ = [
    "ComponentOutcome",
    "ConfigurationEngine",
    "ConfigurationResult",
    "ConfigurationSession",
    "ConstraintStats",
    "RemoteTraceback",
    "WireStats",
    "WorkerPool",
    "GraphNode",
    "HyperEdge",
    "PhaseTimings",
    "ResourceGraph",
    "SessionCacheInfo",
    "SessionStats",
    "UnsatExplanation",
    "canonical_form",
    "check_spec",
    "decode_component_model",
    "explain_message",
    "explain_unsat",
    "fact_literals",
    "fingerprint_partial",
    "generate_constraints",
    "generate_graph",
    "lower_alternatives",
    "lpt_assignment",
    "propagate",
    "resolve_workers",
    "selected_nodes",
    "spec_problems",
]
