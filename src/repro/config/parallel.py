"""Parallel component configuration on a persistent process pool.

The component partition (:mod:`repro.config.partition`) makes fleet
configuration embarrassingly parallel: components share no variables, so
encode -> solve -> decode -> propagate -> typecheck for one component
never reads another's state.  This module fans those per-component
pipelines out across a pool of long-lived worker processes:

* the **pool** (:class:`WorkerPool`) forks one process per worker; each
  inherits (or, under spawn, is shipped) the resource-type registry and
  the engine options once, then serves any number of ``run`` requests
  over a private pipe;
* **assignment is static and deterministic**: component ``i`` always
  goes to worker ``i % workers``.  Results never depend on scheduling --
  the parent collects every outcome and merges them in component-index
  order, so the merged specification, model, and deployed set are
  bit-identical to the serial partitioned pipeline (and hence to the
  monolithic one);
* the **pickling boundary** is narrow and explicit: a request carries a
  :class:`~repro.config.partition.GraphComponent` (plain dataclasses
  over the shared ``GraphNode``/``HyperEdge`` shapes); a reply carries a
  :class:`ComponentOutcome` -- the propagated instances, the named
  model, the decoded outcome, and the worker-measured phase timings.
  Solvers, formulas, and learned clauses never cross the boundary;
* **warm worker caches** back configuration sessions: with
  ``keep=True`` a worker retains encoding + persistent incremental
  solver per ``(fingerprint, component index)``, so repeated session
  calls re-solve under assumptions without re-encoding or re-pickling
  the component, and skip re-propagation when the decoded outcome is
  unchanged (it always is for a fixed fingerprint -- the canonical
  decode is deterministic).  Caches are keyed by the partial-spec
  fingerprint, so distinct partial specs can never observe each other's
  state;
* **failures stay diagnosable**: an UNSAT verdict or a raised error is
  reported per component; the caller re-runs
  :func:`repro.config.explain.explain_unsat` in the parent so the
  Theorem 1 message is byte-identical to the serial one no matter which
  worker hit the conflict.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import weakref
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.core.errors import ConfigurationError
from repro.core.registry import ResourceTypeRegistry
from repro.config.constraints import (
    ConstraintStats,
    fact_literals,
    generate_constraints,
    selected_nodes,
)
from repro.config.engine import canonical_model
from repro.config.partition import GraphComponent
from repro.config.propagation import propagate
from repro.config.typecheck import check_spec
from repro.sat.encodings import ExactlyOneEncoding
from repro.sat.solver import CdclSolver, SolverStats


def resolve_workers(workers: int) -> int:
    """Resolve the ``workers`` knob: 0 means one per available core."""
    if workers < 0:
        raise ConfigurationError("workers must be >= 0 (0 = one per core)")
    if workers > 0:
        return workers
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without CPU affinity
        return max(1, os.cpu_count() or 1)


@dataclass
class ComponentOutcome:
    """Everything one worker computed for one component (picklable).

    ``status`` is ``"sat"``, ``"unsat"``, ``"need"`` (the worker was
    asked to reuse a cache entry it does not hold -- the pool reseeds
    transparently), or ``"error"`` (``error`` carries the exception).
    ``instances`` is None when the worker skipped re-propagation because
    the decoded outcome matched its previous call for this cache entry.
    """

    index: int
    status: str
    worker: int = -1
    named_model: dict[str, bool] = field(default_factory=dict)
    deployed: frozenset = frozenset()
    choices: dict = field(default_factory=dict)
    instances: Optional[tuple] = None
    constraint_stats: Optional[ConstraintStats] = None
    solver_stats: Optional[SolverStats] = None
    encode_ms: float = 0.0
    solve_ms: float = 0.0
    propagate_ms: float = 0.0
    #: True when this call built the encoding (a worker-side cache miss).
    encoded: bool = False
    #: True when a previously built persistent solver answered the call.
    solver_reused: bool = False
    error: Optional[BaseException] = None


class _WorkerEntry:
    """Warm per-(fingerprint, component) state held inside a worker."""

    __slots__ = (
        "component", "formula", "constraint_stats", "assumptions",
        "solver", "canonical", "prev_outcome",
    )

    def __init__(self, component, formula, constraint_stats, assumptions):
        self.component = component
        self.formula = formula
        self.constraint_stats = constraint_stats
        self.assumptions = assumptions
        self.solver: Optional[CdclSolver] = None
        self.canonical: Optional[dict[int, bool]] = None
        #: The (deployed, choices) pair of the previous call, so an
        #: unchanged outcome skips re-propagation and re-pickling.
        self.prev_outcome: Optional[tuple] = None


def _decode(formula, graph, model) -> tuple[dict[str, bool], set, dict]:
    named = {
        str(name): value
        for name, value in formula.decode_model(model).items()
    }
    deployed, choices = selected_nodes(graph, named)
    return named, deployed, choices


def _run_cached(
    entries: dict,
    index: int,
    component: Optional[GraphComponent],
    registry: ResourceTypeRegistry,
    encoding: ExactlyOneEncoding,
    check_types: bool,
    worker_index: int,
) -> ComponentOutcome:
    """The session path: assumption-style encoding, persistent solver."""
    entry = entries.get(index)
    encode_ms = 0.0
    encoded = False
    if entry is None:
        if component is None:
            return ComponentOutcome(
                index=index, status="need", worker=worker_index
            )
        tick = time.perf_counter()
        formula, constraint_stats = generate_constraints(
            component.graph, encoding, facts_as_assumptions=True
        )
        assumptions = sorted(fact_literals(component.graph, formula).values())
        entry = _WorkerEntry(component, formula, constraint_stats, assumptions)
        entries[index] = entry
        encode_ms = (time.perf_counter() - tick) * 1000.0
        encoded = True

    tick = time.perf_counter()
    solver_reused = entry.solver is not None
    if entry.solver is None:
        entry.solver = CdclSolver(entry.formula)
    if not entry.solver.solve(entry.assumptions):
        return ComponentOutcome(
            index=index, status="unsat", worker=worker_index,
            constraint_stats=entry.constraint_stats,
            solver_stats=replace(entry.solver.stats),
            encode_ms=encode_ms,
            solve_ms=(time.perf_counter() - tick) * 1000.0,
            encoded=encoded, solver_reused=solver_reused,
        )
    if entry.solver.stats.conflicts == 0:
        model = entry.solver.model()
    else:
        if entry.canonical is None:
            entry.canonical = canonical_model(
                entry.formula, entry.solver, entry.assumptions
            )
        model = entry.canonical
    named, deployed, choices = _decode(
        entry.formula, entry.component.graph, model
    )
    solve_ms = (time.perf_counter() - tick) * 1000.0

    outcome_key = (frozenset(deployed), tuple(sorted(choices.items())))
    if entry.prev_outcome == outcome_key:
        return ComponentOutcome(
            index=index, status="sat", worker=worker_index,
            named_model=named, deployed=frozenset(deployed), choices=choices,
            instances=None,
            constraint_stats=entry.constraint_stats,
            solver_stats=replace(entry.solver.stats),
            encode_ms=encode_ms, solve_ms=solve_ms,
            encoded=encoded, solver_reused=solver_reused,
        )
    tick = time.perf_counter()
    spec = propagate(registry, entry.component.graph, deployed, choices)
    if check_types:
        check_spec(registry, spec)
    entry.prev_outcome = outcome_key
    return ComponentOutcome(
        index=index, status="sat", worker=worker_index,
        named_model=named, deployed=frozenset(deployed), choices=choices,
        instances=tuple(spec),
        constraint_stats=entry.constraint_stats,
        solver_stats=replace(entry.solver.stats),
        encode_ms=encode_ms, solve_ms=solve_ms,
        propagate_ms=(time.perf_counter() - tick) * 1000.0,
        encoded=encoded, solver_reused=solver_reused,
    )


def _run_oneshot(
    index: int,
    component: GraphComponent,
    registry: ResourceTypeRegistry,
    encoding: ExactlyOneEncoding,
    check_types: bool,
    worker_index: int,
) -> ComponentOutcome:
    """The engine path: unit-fact encoding, throwaway solver -- the exact
    per-component sequence of the serial partitioned engine, so stats and
    models match it bit for bit."""
    tick = time.perf_counter()
    formula, constraint_stats = generate_constraints(
        component.graph, encoding
    )
    encode_done = time.perf_counter()
    solver = CdclSolver(formula)
    if not solver.solve():
        return ComponentOutcome(
            index=index, status="unsat", worker=worker_index,
            constraint_stats=constraint_stats,
            solver_stats=replace(solver.stats),
            encode_ms=(encode_done - tick) * 1000.0,
            solve_ms=(time.perf_counter() - encode_done) * 1000.0,
            encoded=True,
        )
    model = canonical_model(formula, solver)
    named, deployed, choices = _decode(formula, component.graph, model)
    solve_done = time.perf_counter()
    spec = propagate(registry, component.graph, deployed, choices)
    if check_types:
        check_spec(registry, spec)
    return ComponentOutcome(
        index=index, status="sat", worker=worker_index,
        named_model=named, deployed=frozenset(deployed), choices=choices,
        instances=tuple(spec),
        constraint_stats=constraint_stats,
        solver_stats=replace(solver.stats),
        encode_ms=(encode_done - tick) * 1000.0,
        solve_ms=(solve_done - encode_done) * 1000.0,
        propagate_ms=(time.perf_counter() - solve_done) * 1000.0,
        encoded=True,
    )


def _safe_send(conn, reply: tuple) -> None:
    """Send ``reply``; degrade unpicklable payloads to structured errors
    instead of hanging the parent on a never-arriving message."""
    try:
        conn.send(reply)
    except Exception as exc:  # pragma: no cover - defensive
        fallback = [
            ComponentOutcome(
                index=outcome.index, status="error", worker=outcome.worker,
                error=ConfigurationError(
                    f"unpicklable worker result: {exc!r}"
                ),
            )
            for outcome in reply[1]
        ] if reply[0] == "ok" else []
        conn.send(("ok", fallback))


def _worker_main(
    conn,
    worker_index: int,
    registry: ResourceTypeRegistry,
    encoding: ExactlyOneEncoding,
    check_types: bool,
) -> None:
    """One worker's request loop (runs in the child process)."""
    cache: dict[str, dict[int, _WorkerEntry]] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "flush":
            cache.clear()
            continue
        if kind == "evict":
            cache.pop(message[1], None)
            continue
        # ("run", fingerprint, keep, [(index, component-or-None), ...])
        _, fingerprint, keep, batch = message
        outcomes = []
        for index, component in batch:
            try:
                if keep:
                    outcome = _run_cached(
                        cache.setdefault(fingerprint, {}), index, component,
                        registry, encoding, check_types, worker_index,
                    )
                else:
                    outcome = _run_oneshot(
                        index, component, registry, encoding, check_types,
                        worker_index,
                    )
            except Exception as exc:
                outcome = ComponentOutcome(
                    index=index, status="error", worker=worker_index,
                    error=exc,
                )
            outcomes.append(outcome)
        _safe_send(conn, ("ok", outcomes))
    conn.close()


def _shutdown(processes, conns) -> None:
    """Best-effort pool teardown (also the GC finalizer)."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except Exception:
            pass
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    for process in processes:
        process.join(timeout=1.0)
    for process in processes:
        if process.is_alive():  # pragma: no cover - defensive
            process.terminate()
            process.join(timeout=1.0)


class WorkerPool:
    """A persistent pool of configuration worker processes.

    Prefers the ``fork`` start method (workers inherit the registry at
    no serialisation cost); falls back to the platform default, where
    the registry and options are pickled once per worker.  Workers are
    daemonic and additionally reaped by a GC finalizer, so an unclosed
    pool cannot outlive its owner.
    """

    def __init__(
        self,
        registry: ResourceTypeRegistry,
        *,
        workers: int = 0,
        encoding: ExactlyOneEncoding = ExactlyOneEncoding.PAIRWISE,
        check_types: bool = True,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        #: The registry mutation counter the workers were built from;
        #: owners recycle the pool when the parent registry moves on.
        self.registry_version = registry.version
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else None
        context = multiprocessing.get_context(start_method)
        self._conns = []
        self._processes = []
        for worker_index in range(self.workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, worker_index, registry, encoding,
                      check_types),
                daemon=True,
                name=f"engage-config-worker-{worker_index}",
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)
        #: Fingerprints whose components every worker has been sent.
        self._seeded: set[str] = set()
        self.closed = False
        self._finalizer = weakref.finalize(
            self, _shutdown, list(self._processes), list(self._conns)
        )

    # -- Dispatch --------------------------------------------------------

    def run_components(
        self,
        components: list[GraphComponent],
        *,
        fingerprint: str = "",
        keep: bool = False,
    ) -> list[ComponentOutcome]:
        """Run every component and return outcomes in index order.

        With ``keep`` the workers cache encoding + solver under
        ``fingerprint`` (the session path); already-seeded fingerprints
        send bare indexes instead of re-pickling the component graphs.
        """
        if self.closed:
            raise ConfigurationError("the worker pool is closed")
        if not components:
            return []
        reuse = keep and fingerprint in self._seeded
        outcomes = self._dispatch(components, fingerprint, keep, reuse)
        if keep and any(o.status == "need" for o in outcomes):
            # A worker lost its cache (cannot happen in the mirrored
            # parent/worker lifecycle, but self-heal rather than fail).
            self._seeded.discard(fingerprint)
            outcomes = self._dispatch(components, fingerprint, keep, False)
        if keep:
            self._seeded.add(fingerprint)
        return outcomes

    def _dispatch(self, components, fingerprint, keep, reuse):
        batches: list[list[tuple[int, Any]]] = [
            [] for _ in range(self.workers)
        ]
        for component in components:
            payload = None if reuse else component
            batches[component.index % self.workers].append(
                (component.index, payload)
            )
        pending = []
        for worker_index, batch in enumerate(batches):
            if not batch:
                continue
            self._send(worker_index, ("run", fingerprint, keep, batch))
            pending.append(worker_index)
        outcomes: list[ComponentOutcome] = []
        for worker_index in pending:
            try:
                reply = self._conns[worker_index].recv()
            except (EOFError, OSError):
                raise ConfigurationError(
                    f"configuration worker {worker_index} exited "
                    "unexpectedly"
                ) from None
            outcomes.extend(reply[1])
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes

    def _send(self, worker_index: int, message: tuple) -> None:
        try:
            self._conns[worker_index].send(message)
        except (BrokenPipeError, OSError):
            raise ConfigurationError(
                f"configuration worker {worker_index} is gone (broken pipe)"
            ) from None

    # -- Cache hygiene ---------------------------------------------------

    def seeded(self, fingerprint: str) -> bool:
        return fingerprint in self._seeded

    def evict(self, fingerprint: str) -> None:
        """Drop the workers' caches for one fingerprint (LRU eviction)."""
        if self.closed or fingerprint not in self._seeded:
            return
        self._seeded.discard(fingerprint)
        for worker_index in range(self.workers):
            self._send(worker_index, ("evict", fingerprint))

    def flush(self) -> None:
        """Drop every worker-side cache."""
        if self.closed:
            return
        self._seeded.clear()
        for worker_index in range(self.workers):
            self._send(worker_index, ("flush",))

    # -- Lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Stop and reap every worker (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self._finalizer.detach()
        _shutdown(self._processes, self._conns)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
